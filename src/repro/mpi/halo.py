"""Generic structured halo (ghost) exchange.

Every structured-grid code in the paper exchanges halo layers with its
face neighbors each step (AVF-LESLIE's flux stencils, Nyx's deposition and
gradients).  This is the reusable form: a :class:`HaloExchanger` built from
a rank's block in a regular 3-D decomposition, exchanging ``depth`` ghost
layers along every decomposed axis, with periodic or clamped boundaries.

The exchange posts one sendrecv per face per axis (the standard
dimension-by-dimension scheme); exchanging axis by axis also fills edge and
corner ghosts correctly, because later axes forward the ghost layers
received on earlier ones.
"""

from __future__ import annotations

import numpy as np

from repro import accel
from repro.mpi.communicator import Communicator
from repro.util.decomp import Extent, regular_decompose_3d


class HaloExchanger:
    """Exchanges ghost layers for one rank's block of a regular grid.

    Parameters
    ----------
    comm:
        The communicator the decomposition was built over.
    global_dims:
        Global point dimensions.
    depth:
        Ghost layers on each decomposed face.
    periodic:
        Per-axis periodicity.  Non-periodic domain edges are *clamped*:
        the ghost layer replicates the boundary plane, which is the
        convention the derived-field stencils expect.
    """

    def __init__(
        self,
        comm: Communicator,
        global_dims: tuple[int, int, int],
        depth: int = 1,
        periodic: tuple[bool, bool, bool] = (True, True, True),
    ) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.comm = comm
        self.depth = depth
        self.periodic = periodic
        self.global_dims = global_dims
        self.extent, self.proc_grid, self.proc_coord = regular_decompose_3d(
            global_dims, comm.size, comm.rank
        )
        for axis in range(3):
            # A periodic axis with a single block still exchanges: the rank
            # is its own neighbor through _neighbor()'s wrap, and the same
            # shape >= depth bound applies -- with fewer owned planes than
            # ghost depth, own_lo/own_hi extend into ghost planes and the
            # self-wrap fills ghosts with stale garbage instead of field
            # values.  Only a non-periodic undecomposed axis (pure clamp,
            # no exchange) is exempt.
            exchanges = self.proc_grid[axis] > 1 or periodic[axis]
            if exchanges and self.extent.shape[axis] < depth:
                raise ValueError(
                    f"axis {axis}: block has {self.extent.shape[axis]} planes, "
                    f"need >= depth ({depth}) for the exchange"
                    + (
                        " (periodic axis self-wraps even with a single block)"
                        if self.proc_grid[axis] == 1
                        else ""
                    )
                )

    # -- geometry ----------------------------------------------------------
    @property
    def ghosted_shape(self) -> tuple[int, int, int]:
        ni, nj, nk = self.extent.shape
        d = self.depth
        return (ni + 2 * d, nj + 2 * d, nk + 2 * d)

    def interior(self) -> tuple[slice, slice, slice]:
        """Slices selecting the owned region of a ghosted array."""
        d = self.depth
        return (slice(d, -d), slice(d, -d), slice(d, -d))

    def allocate_ghosted(self, dtype=np.float64) -> np.ndarray:
        return np.zeros(self.ghosted_shape, dtype=dtype)

    def _neighbor(self, axis: int, direction: int) -> int | None:
        """Rank of the face neighbor, or None at a non-periodic edge."""
        coord = list(self.proc_coord)
        coord[axis] += direction
        n = self.proc_grid[axis]
        if coord[axis] < 0 or coord[axis] >= n:
            if not self.periodic[axis]:
                return None
            coord[axis] %= n
        px, py = self.proc_grid[0], self.proc_grid[1]
        return coord[0] + coord[1] * px + coord[2] * px * py

    def _rank_of_coord(self) -> int:
        px, py = self.proc_grid[0], self.proc_grid[1]
        cx, cy, cz = self.proc_coord
        return cx + cy * px + cz * px * py

    # -- the exchange ----------------------------------------------------------
    def exchange(self, ghosted: np.ndarray) -> None:
        """Fill all ghost layers of ``ghosted`` (in place).

        ``ghosted`` must have :attr:`ghosted_shape`; its interior must hold
        the owned values.
        """
        if ghosted.shape[:3] != self.ghosted_shape:
            raise ValueError(
                f"ghosted array shape {ghosted.shape[:3]} != {self.ghosted_shape}"
            )
        d = self.depth
        for axis in range(3):
            lo_n = self._neighbor(axis, -1)
            hi_n = self._neighbor(axis, +1)

            def face(index_range) -> tuple:
                sl: list = [slice(None)] * ghosted.ndim
                sl[axis] = index_range
                return tuple(sl)

            own_lo = face(slice(d, 2 * d))
            own_hi = face(slice(-2 * d, -d))
            ghost_lo = face(slice(0, d))
            ghost_hi = face(slice(-d, None))

            # Low-direction pass: send my low owned planes to the low
            # neighbor; receive my high ghosts from the high neighbor.
            got_hi = self._sendrecv(lo_n, hi_n, ghosted[own_lo], tag=70 + axis)
            if got_hi is not None:
                ghosted[ghost_hi] = got_hi
            elif hi_n is None:
                ghosted[ghost_hi] = ghosted[face(slice(-d - 1, -d))]
            # High-direction pass.
            got_lo = self._sendrecv(hi_n, lo_n, ghosted[own_hi], tag=80 + axis)
            if got_lo is not None:
                ghosted[ghost_lo] = got_lo
            elif lo_n is None:
                ghosted[ghost_lo] = ghosted[face(slice(d, d + 1))]

    def _sendrecv(self, dest: int | None, source: int | None, payload, tag: int):
        """Sendrecv tolerating absent (non-periodic edge) partners.

        Face views are strided; they are packed contiguous before the send
        (:func:`repro.accel.pack_contiguous` -- the jitted gather when the
        numba tier is on, ``np.ascontiguousarray`` otherwise).
        """
        if dest is not None:
            self.comm.send(accel.pack_contiguous(payload), dest=dest, tag=tag)
        if source is not None:
            return self.comm.recv(source=source, tag=tag)
        return None

    # -- convenience -----------------------------------------------------------
    def scatter_field(self, ghosted: np.ndarray, owned: np.ndarray) -> None:
        """Place owned values into the interior and fill ghosts."""
        if owned.shape[:3] != self.extent.shape:
            raise ValueError("owned array does not match the local extent")
        ghosted[self.interior()] = owned
        self.exchange(ghosted)
