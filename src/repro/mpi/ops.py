"""Reduction operations for the simulated MPI collectives.

Each op knows how to combine two values, where a value may be a Python
scalar, a numpy scalar, or a numpy array (combined elementwise).  Reductions
are applied left-to-right in rank order for determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """A named, associative binary reduction operator.

    ``ufunc`` is the elementwise numpy ufunc equivalent to ``fn`` on array
    operands, when one exists.  It enables in-place array folds
    (``ufunc(acc, v, out=acc)``) that are bit-identical to the allocating
    ``fn(acc, v)`` pairwise fold -- the shared-memory collective transport
    accumulates directly out of peer segments this way.  Custom ops without
    a ufunc simply take the allocating path everywhere.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    ufunc: Any = field(default=None, compare=False)

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def reduce(self, values: list[Any]) -> Any:
        """Fold ``values`` in order; requires at least one value."""
        if not values:
            raise ValueError(f"cannot {self.name}-reduce zero values")
        acc = values[0]
        for v in values[1:]:
            acc = self.fn(acc, v)
        return acc


def _sum(a, b):
    return np.add(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a + b


def _prod(a, b):
    return (
        np.multiply(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
        else a * b
    )


def _min(a, b):
    return (
        np.minimum(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
        else min(a, b)
    )


def _max(a, b):
    return (
        np.maximum(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
        else max(a, b)
    )


SUM = ReduceOp("sum", _sum, np.add)
PROD = ReduceOp("prod", _prod, np.multiply)
MIN = ReduceOp("min", _min, np.minimum)
MAX = ReduceOp("max", _max, np.maximum)
