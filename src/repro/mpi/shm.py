"""Shared-memory transport for the process-backed SPMD runtime.

The process backend moves rank-to-rank traffic over pickled-envelope pipes
(:mod:`repro.mpi.process_backend`).  Pickling is fine for control messages
and small payloads, but simulation fields, halo faces, and framebuffers are
bulk numpy data -- shipping them through a pipe costs two serialization
copies plus pipe-buffer churn.  Two shared-memory paths avoid that:

**Consume-once segments** (point-to-point sends): the sender copies the
array once into a fresh named segment, the envelope carries only the
``(name, shape, dtype)`` descriptor, and the receiver materializes a
private copy out of the mapping -- preserving the runtime's "ranks never
alias each other's memory" contract (the zero-copy accounting experiments
depend on receives being owned buffers).  Lifecycle discipline (POSIX):
the *consumer* unlinks.

**Pooled segments** (collectives): a :class:`SegmentPool` gives each rank
a small ring of reusable segments per communicator.  A collective
contribution is packed *once* into the rank's pooled segment
(:func:`pool_pack`); every peer receives only a tiny header envelope and
reads the one segment directly through a bounded :class:`AttachCache` --
reductions fold in place straight out of the mappings
(:class:`ReductionPlan`), so large-array collectives serialize **zero**
array bytes through the pipes.  Reuse is generation-disciplined: the ring
holds two segments per communicator and collectives are blocking and in
program order, so by the time a rank reuses the slot from collective
``k`` at collective ``k + 2`` every peer has necessarily finished reading
it (a peer contributes to ``k + 1`` only after its call for ``k``
returned).  Pool segment names embed an incarnation counter, so a grown
(evicted) slot never aliases a stale peer attachment.

``SharedMemory`` registers every open with the ``multiprocessing``
resource tracker (a name-keyed set, so the double register from
create+attach is idempotent) and ``unlink`` unregisters, so a consumed or
retired segment leaves no tracker residue.  Envelopes that are never
consumed and pool slots of a crashed worker -- a job aborting mid-flight
-- are swept by the launcher via :func:`cleanup_segments` after every
worker has exited, so a crashed run cannot leak ``/dev/shm`` entries
either.

Segment names are deterministic (``repro-shm-<job>-<rank>-<counter>``):
fault-injection schedules and test assertions never see randomness from
the transport.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

#: Every segment this runtime creates carries this prefix, so leak checks
#: (the test-suite fixture and the CI sweep) can target exactly our names.
SHM_PREFIX = "repro-shm"

#: Arrays at or above this many bytes ride shared memory; smaller ones are
#: pickled inline with the envelope (a pipe write beats two syscalls plus a
#: page-granular mapping for small payloads).
DEFAULT_SHM_THRESHOLD = 1 << 16


def shm_threshold() -> int:
    """The inline/shared-memory cutover, overridable for tests/tuning."""
    raw = os.environ.get("REPRO_SPMD_SHM_THRESHOLD")
    if raw is None:
        return DEFAULT_SHM_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SHM_THRESHOLD


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def segment_name(job_tag: str, rank: int, counter: int) -> str:
    return f"{SHM_PREFIX}-{job_tag}-{rank}-{counter}"


def _snapshot(payload: Any) -> Any:
    """Copy numpy buffers at encode time (the send-buffer contract).

    ``mp.Queue`` pickles in a background feeder thread, so an inline array
    put by reference races with sender-side mutation after ``send()``
    returns -- e.g. a halo fold that zeroes the plane it just sent.  The
    thread backend copies at send time (``_copy_payload``); this is the
    same guarantee for the inline path (the shm path already copies
    eagerly into the segment).

    Payloads already living in a pooled segment need no defensive copy:
    the segment is transport-owned, the sender's program cannot mutate it,
    and its reuse discipline already guarantees stability until every
    consumer is done -- so :class:`PoolRef` descriptors (and the header
    tuples inside them) pass through untouched.
    """
    if isinstance(payload, PoolRef):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_snapshot(p) for p in payload)
    if isinstance(payload, list):
        return [_snapshot(p) for p in payload]
    if isinstance(payload, dict):
        return {k: _snapshot(v) for k, v in payload.items()}
    return payload


def encode_array(array: np.ndarray, name: str) -> tuple:
    """Copy ``array`` into a fresh segment; returns the envelope descriptor."""
    shared_memory = _shared_memory()
    data = np.ascontiguousarray(array)
    seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, data.nbytes))
    try:
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
        view[...] = data
    finally:
        seg.close()
    return ("shm", name, data.shape, str(data.dtype))


def decode_array(descriptor: tuple) -> np.ndarray:
    """Materialize a private copy from a segment descriptor and unlink it."""
    _, name, shape, dtype = descriptor
    shared_memory = _shared_memory()
    seg = shared_memory.SharedMemory(name=name)
    try:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        out = np.array(view, copy=True)
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass
    return out


class PayloadCodec:
    """Encodes envelope payloads, spilling large arrays to shared memory.

    One codec per worker process; names are drawn from a per-sender counter
    so they are unique and deterministic.  ``threshold <= 0`` (or a missing
    ``SharedMemory`` implementation) degrades to inline pickling -- the
    transport stays correct, only the bulk-copy path changes.
    """

    def __init__(self, job_tag: str, rank: int, threshold: int | None = None):
        self.job_tag = job_tag
        self.rank = rank
        self.threshold = shm_threshold() if threshold is None else threshold
        self._counter = 0
        #: Segments this codec created; the launcher sweeps any leftovers.
        self.created = 0

    def encode(self, payload: Any) -> tuple:
        """``("inline", payload)`` or a ``("shm", ...)`` descriptor."""
        if (
            self.threshold > 0
            and isinstance(payload, np.ndarray)
            and payload.nbytes >= self.threshold
        ):
            self._counter += 1
            self.created += 1
            name = segment_name(self.job_tag, self.rank, self._counter)
            try:
                return encode_array(payload, name)
            except (OSError, ValueError):  # pragma: no cover - shm exhausted
                return ("inline", payload.copy())
        return ("inline", _snapshot(payload))

    @staticmethod
    def decode(spec: tuple) -> Any:
        if spec[0] == "shm":
            return decode_array(spec)
        return spec[1]


# --------------------------------------------------------------------------
# Pooled segments: the collective transport
# --------------------------------------------------------------------------

#: Pooled array offsets are aligned to this many bytes (cache line).
_ALIGN = 64

#: Ring depth per (communicator) pool key.  Two is provably sufficient: a
#: rank reuses the slot of collective ``k`` at ``k + 2``, and every peer's
#: contribution to ``k + 1`` certifies it finished reading ``k``.
RING_DEPTH = 2


def _round_capacity(nbytes: int) -> int:
    """Grow-resistant slot capacity: next power of two, >= one page."""
    cap = 4096
    while cap < nbytes:
        cap <<= 1
    return cap


class PoolRef:
    """Lazy handle to one rank's pooled collective contribution.

    Crosses the pipe as a tiny header (the packed ``tree`` of descriptors);
    the receiving rank resolves it against an :class:`AttachCache` --
    either materializing a private copy (:meth:`materialize`) or handing
    out read-only views straight into the segment for in-place reduction
    (:meth:`view_tree`).
    """

    __slots__ = ("tree", "nbytes")

    def __init__(self, tree: tuple, nbytes: int) -> None:
        self.tree = tree
        self.nbytes = nbytes

    def __reduce__(self):
        return (PoolRef, (self.tree, self.nbytes))

    def materialize(self, cache: "AttachCache") -> Any:
        """A private (owned) copy of the packed payload."""
        return _unpack_tree(self.tree, cache, copy=True)

    def view_tree(self, cache: "AttachCache") -> Any:
        """The packed payload with read-only views into the segment.

        Views are transport-owned and only valid until the enclosing
        collective call returns; callers must not let them escape.
        """
        return _unpack_tree(self.tree, cache, copy=False)


def _pack_tree(
    payload: Any, sink: "Callable[[np.ndarray], tuple] | None", threshold: int
) -> tuple[Any, int]:
    """Walk ``payload``; route eligible ndarrays through ``sink``.

    With ``sink=None`` this is the measuring pass: returns the payload
    unchanged plus the total eligible bytes.  With a sink, eligible arrays
    are replaced by the descriptor tuples the sink returns, and *small*
    arrays are defensively copied -- the resulting tree is fully
    transport-owned, so it may cross the queue's feeder thread by
    reference (see :func:`_snapshot`).
    """
    if isinstance(payload, np.ndarray):
        if payload.nbytes >= threshold:
            if sink is None:
                # Alignment padding is accounted per array.
                return payload, payload.nbytes + _ALIGN
            return sink(payload), 0
        return (payload if sink is None else payload.copy()), 0
    if isinstance(payload, tuple):
        parts = [_pack_tree(p, sink, threshold) for p in payload]
        return tuple(p for p, _ in parts), sum(n for _, n in parts)
    if isinstance(payload, list):
        parts = [_pack_tree(p, sink, threshold) for p in payload]
        return [p for p, _ in parts], sum(n for _, n in parts)
    if isinstance(payload, dict):
        parts = {k: _pack_tree(v, sink, threshold) for k, v in payload.items()}
        return (
            {k: p for k, (p, _) in parts.items()},
            sum(n for _, n in parts.values()),
        )
    return payload, 0


def _unpack_tree(tree: Any, cache: "AttachCache", copy: bool) -> Any:
    if isinstance(tree, tuple):
        if len(tree) == 5 and tree[0] == "pslice":
            _, name, offset, shape, dtype = tree
            view = cache.view(name, offset, shape, dtype)
            return np.array(view, copy=True) if copy else view
        return tuple(_unpack_tree(t, cache, copy) for t in tree)
    if isinstance(tree, list):
        return [_unpack_tree(t, cache, copy) for t in tree]
    if isinstance(tree, dict):
        return {k: _unpack_tree(v, cache, copy) for k, v in tree.items()}
    return tree


class SegmentPool:
    """Ring allocator of reusable shared-memory segments, one ring per key.

    Keys are opaque (the process backend uses ``(communicator id, seq %
    RING_DEPTH)``).  ``acquire`` reuses the keyed slot when its capacity
    suffices (*hit*), creates it on first use (*miss*), and replaces it
    with a larger incarnation when the payload outgrew it (*evict*) --
    each incarnation gets a fresh deterministic name so a peer's stale
    cached attachment can never alias new data.  Counters feed the
    ``shm::pool::*`` trace gauges.
    """

    def __init__(self, job_tag: str, rank: int) -> None:
        self.job_tag = job_tag
        self.rank = rank
        self._slots: dict[Any, tuple[Any, str, int]] = {}  # key -> (seg, name, cap)
        self._incarnation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_packed = 0

    def acquire(self, key: Any, nbytes: int) -> "tuple[Any, str] | None":
        """The keyed segment with capacity >= ``nbytes``; None if shm fails."""
        slot = self._slots.get(key)
        if slot is not None and slot[2] >= nbytes:
            self.hits += 1
            return slot[0], slot[1]
        shared_memory = _shared_memory()
        if slot is not None:
            self.evictions += 1
            seg, _, _ = slot
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already swept
                pass
            del self._slots[key]
        else:
            self.misses += 1
        cap = _round_capacity(nbytes)
        self._incarnation += 1
        name = segment_name(self.job_tag, self.rank, f"pool{self._incarnation:x}")
        try:
            seg = shared_memory.SharedMemory(name=name, create=True, size=cap)
        except (OSError, ValueError):  # pragma: no cover - shm exhausted
            return None
        self._slots[key] = (seg, name, cap)
        return seg, name

    def pack(self, key: Any, payload: Any, threshold: int) -> "PoolRef | None":
        """Pack ``payload``'s large arrays into the keyed pooled segment.

        Returns a :class:`PoolRef` header (small arrays and non-array
        leaves stay inline inside it), or None when nothing is eligible or
        shared memory is unavailable -- callers fall back to the
        consume-once/inline codec path.
        """
        _, eligible = _pack_tree(payload, None, threshold)
        if eligible == 0:
            return None
        acquired = self.acquire(key, eligible)
        if acquired is None:  # pragma: no cover - shm exhausted
            return None
        seg, name = acquired
        cursor = 0
        exact = 0

        def sink(arr: np.ndarray) -> tuple:
            nonlocal cursor, exact
            offset = -(-cursor // _ALIGN) * _ALIGN
            data = np.ascontiguousarray(arr)
            dst = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf, offset=offset)
            dst[...] = data
            cursor = offset + data.nbytes
            exact += data.nbytes
            return ("pslice", name, offset, data.shape, str(data.dtype))

        tree, _ = _pack_tree(payload, sink, threshold)
        self.bytes_packed += exact
        return PoolRef(tree, exact)

    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_packed": self.bytes_packed,
        }

    def close(self) -> None:
        """Drop this process's mappings; ``/dev/shm`` entries stay.

        Workers call this at exit *instead of* unlinking: a peer may still
        be attaching this rank's last-collective segment after this rank's
        program returned, and an unlinked name would fail that attach.
        The launcher sweeps the names once every worker has exited.
        """
        for seg, _, _ in self._slots.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still live
                pass
        self._slots.clear()

    def release(self) -> None:
        """Unlink every owned slot (single-owner/test use; idempotent)."""
        for seg, _, _ in self._slots.values():
            try:
                seg.close()
                seg.unlink()
            except (FileNotFoundError, BufferError):  # pragma: no cover
                pass
        self._slots.clear()


class AttachCache:
    """Bounded LRU of peer-segment attachments, keyed by segment name.

    Attaching (mmap + resource-tracker round trip) per collective would
    dominate small-array costs; pooled segment names are stable across a
    ring's lifetime, so caching the attachment amortizes it to one mmap
    per (peer, communicator, incarnation).  Evicted and closed attachments
    only drop this process's mapping -- the owner's unlink governs the
    ``/dev/shm`` entry itself.
    """

    def __init__(self, limit: int = 64) -> None:
        self.limit = limit
        self._cache: "OrderedDict[str, Any]" = OrderedDict()

    def view(
        self, name: str, offset: int, shape: tuple, dtype: str
    ) -> np.ndarray:
        """Read-only ndarray view into the named segment."""
        seg = self._cache.get(name)
        if seg is None:
            shared_memory = _shared_memory()
            seg = shared_memory.SharedMemory(name=name)
            self._cache[name] = seg
            while len(self._cache) > self.limit:
                _, old = self._cache.popitem(last=False)
                try:
                    old.close()
                except BufferError:  # pragma: no cover - view still live
                    pass
        else:
            self._cache.move_to_end(name)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf, offset=offset)
        view.flags.writeable = False
        return view

    def close(self) -> None:
        for seg in self._cache.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still live
                pass
        self._cache.clear()


class ReductionPlan:
    """Per-communicator plan for folding pooled contributions in place.

    Bit-identity with the thread backend pins the *fold order*: every
    element must accumulate contributions in rank order ``0..N-1`` (float
    addition is not associative, and the cross-backend equivalence matrix
    asserts bit-identical results).  Under shared memory that still leaves
    the *schedule* free: each rank owns one segment every peer can read
    directly, so the classic ring/tree data movement degenerates to depth-1
    direct reads -- the plan's job is choosing the fold blocking and
    owning the preallocated accumulators.

    - ``flat``: one pass per peer over the whole array.  Best when the
      array fits in cache.
    - ``blocked``: the array is folded in ~256 KiB blocks, all ranks per
      block, so the accumulator block stays cache-resident across the
      whole rank sweep.  Element fold order is unchanged (still
      ``0..N-1``), so results stay bit-identical; only locality differs.

    Accumulators are preallocated per ``(op, shape, dtype)`` and reused
    across steps; they are transport-owned, so callers hand user code a
    private copy (the "ranks never alias" contract).
    """

    #: Arrays larger than this fold block-by-block.
    BLOCK_BYTES = 1 << 18

    def __init__(self) -> None:
        self._accumulators: dict[tuple, np.ndarray] = {}

    def strategy(self, nbytes: int) -> str:
        return "blocked" if nbytes > self.BLOCK_BYTES else "flat"

    def accumulator(self, op_name: str, shape: tuple, dtype) -> np.ndarray:
        key = (op_name, tuple(shape), np.dtype(dtype).str)
        acc = self._accumulators.get(key)
        if acc is None:
            acc = self._accumulators[key] = np.empty(shape, dtype=dtype)
        return acc

    def fold(self, ufunc, values: list[np.ndarray], op_name: str) -> np.ndarray:
        """Rank-order in-place fold; returns the transport-owned accumulator."""
        first = values[0]
        acc = self.accumulator(op_name, first.shape, first.dtype)
        if self.strategy(first.nbytes) == "flat" or first.ndim == 0:
            acc[...] = first
            for v in values[1:]:
                ufunc(acc, v, out=acc)
            return acc
        flat_acc = acc.reshape(-1)
        flats = [v.reshape(-1) for v in values]
        block = max(1, self.BLOCK_BYTES // max(1, first.itemsize))
        n = flat_acc.shape[0]
        for b0 in range(0, n, block):
            b1 = min(n, b0 + block)
            dst = flat_acc[b0:b1]
            dst[...] = flats[0][b0:b1]
            for v in flats[1:]:
                ufunc(dst, v[b0:b1], out=dst)
        return acc


def list_segments(job_tag: str | None = None) -> list[str]:
    """Live ``/dev/shm`` segments created by this runtime (Linux only)."""
    prefix = SHM_PREFIX if job_tag is None else f"{SHM_PREFIX}-{job_tag}-"
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def cleanup_segments(job_tag: str) -> list[str]:
    """Unlink any surviving segments of one job; returns what was swept.

    Called by the launcher after every worker has exited, so an aborted job
    (envelopes created but never consumed) cannot leak shared memory.
    """
    shared_memory = _shared_memory()
    swept = []
    for name in list_segments(job_tag):
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            continue
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            continue
        swept.append(name)
    return swept
