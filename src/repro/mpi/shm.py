"""Shared-memory payload mapping for the process-backed SPMD runtime.

The process backend moves rank-to-rank traffic over pickled-envelope pipes
(:mod:`repro.mpi.process_backend`).  Pickling is fine for control messages
and small payloads, but simulation fields, halo faces, and framebuffers are
bulk numpy data -- shipping them through a pipe costs two serialization
copies plus pipe-buffer churn.  This module maps such arrays through
:class:`multiprocessing.shared_memory.SharedMemory` instead: the sender
copies the array once into a named segment, the envelope carries only the
``(name, shape, dtype)`` descriptor, and the receiver materializes a
private copy out of the mapping -- preserving the runtime's "ranks never
alias each other's memory" contract (the zero-copy accounting experiments
depend on receives being owned buffers).

Lifecycle discipline (POSIX): the *consumer* unlinks.  The sender creates
the segment and gives up interest; the first receiver to decode the
envelope copies out, closes, and unlinks.  ``SharedMemory`` registers every
open with the ``multiprocessing`` resource tracker (a name-keyed set, so
the double register from create+attach is idempotent) and ``unlink``
unregisters, so a consumed segment leaves no tracker residue.  Envelopes
that are never consumed -- a job aborting mid-flight -- are swept by the
launcher via :func:`cleanup_segments` after every worker has exited, so a
crashed run cannot leak ``/dev/shm`` entries either.

Segment names are deterministic (``repro-shm-<job>-<rank>-<counter>``):
fault-injection schedules and test assertions never see randomness from
the transport.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

#: Every segment this runtime creates carries this prefix, so leak checks
#: (the test-suite fixture and the CI sweep) can target exactly our names.
SHM_PREFIX = "repro-shm"

#: Arrays at or above this many bytes ride shared memory; smaller ones are
#: pickled inline with the envelope (a pipe write beats two syscalls plus a
#: page-granular mapping for small payloads).
DEFAULT_SHM_THRESHOLD = 1 << 16


def shm_threshold() -> int:
    """The inline/shared-memory cutover, overridable for tests/tuning."""
    raw = os.environ.get("REPRO_SPMD_SHM_THRESHOLD")
    if raw is None:
        return DEFAULT_SHM_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SHM_THRESHOLD


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def segment_name(job_tag: str, rank: int, counter: int) -> str:
    return f"{SHM_PREFIX}-{job_tag}-{rank}-{counter}"


def _snapshot(payload: Any) -> Any:
    """Copy numpy buffers at encode time (the send-buffer contract).

    ``mp.Queue`` pickles in a background feeder thread, so an inline array
    put by reference races with sender-side mutation after ``send()``
    returns -- e.g. a halo fold that zeroes the plane it just sent.  The
    thread backend copies at send time (``_copy_payload``); this is the
    same guarantee for the inline path (the shm path already copies
    eagerly into the segment).
    """
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_snapshot(p) for p in payload)
    if isinstance(payload, list):
        return [_snapshot(p) for p in payload]
    if isinstance(payload, dict):
        return {k: _snapshot(v) for k, v in payload.items()}
    return payload


def encode_array(array: np.ndarray, name: str) -> tuple:
    """Copy ``array`` into a fresh segment; returns the envelope descriptor."""
    shared_memory = _shared_memory()
    data = np.ascontiguousarray(array)
    seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, data.nbytes))
    try:
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
        view[...] = data
    finally:
        seg.close()
    return ("shm", name, data.shape, str(data.dtype))


def decode_array(descriptor: tuple) -> np.ndarray:
    """Materialize a private copy from a segment descriptor and unlink it."""
    _, name, shape, dtype = descriptor
    shared_memory = _shared_memory()
    seg = shared_memory.SharedMemory(name=name)
    try:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        out = np.array(view, copy=True)
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass
    return out


class PayloadCodec:
    """Encodes envelope payloads, spilling large arrays to shared memory.

    One codec per worker process; names are drawn from a per-sender counter
    so they are unique and deterministic.  ``threshold <= 0`` (or a missing
    ``SharedMemory`` implementation) degrades to inline pickling -- the
    transport stays correct, only the bulk-copy path changes.
    """

    def __init__(self, job_tag: str, rank: int, threshold: int | None = None):
        self.job_tag = job_tag
        self.rank = rank
        self.threshold = shm_threshold() if threshold is None else threshold
        self._counter = 0
        #: Segments this codec created; the launcher sweeps any leftovers.
        self.created = 0

    def encode(self, payload: Any) -> tuple:
        """``("inline", payload)`` or a ``("shm", ...)`` descriptor."""
        if (
            self.threshold > 0
            and isinstance(payload, np.ndarray)
            and payload.nbytes >= self.threshold
        ):
            self._counter += 1
            self.created += 1
            name = segment_name(self.job_tag, self.rank, self._counter)
            try:
                return encode_array(payload, name)
            except (OSError, ValueError):  # pragma: no cover - shm exhausted
                return ("inline", payload.copy())
        return ("inline", _snapshot(payload))

    @staticmethod
    def decode(spec: tuple) -> Any:
        if spec[0] == "shm":
            return decode_array(spec)
        return spec[1]


def list_segments(job_tag: str | None = None) -> list[str]:
    """Live ``/dev/shm`` segments created by this runtime (Linux only)."""
    prefix = SHM_PREFIX if job_tag is None else f"{SHM_PREFIX}-{job_tag}-"
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def cleanup_segments(job_tag: str) -> list[str]:
    """Unlink any surviving segments of one job; returns what was swept.

    Called by the launcher after every worker has exited, so an aborted job
    (envelopes created but never consumed) cannot leak shared memory.
    """
    shared_memory = _shared_memory()
    swept = []
    for name in list_segments(job_tag):
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            continue
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            continue
        swept.append(name)
    return swept
