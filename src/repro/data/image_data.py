"""Uniform (image-data) grids: the miniapp's mesh type."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.util.decomp import Extent


class ImageData(Dataset):
    """A uniform axis-aligned grid described by origin, spacing, and extent.

    ``extent`` uses VTK's inclusive point-index convention and may be a
    sub-extent of a larger ``whole_extent``: each rank's block of the
    miniapp's global grid is one ``ImageData`` whose extent locates it in
    index space.
    """

    def __init__(
        self,
        extent: Extent,
        origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
        spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
        whole_extent: Extent | None = None,
    ) -> None:
        super().__init__()
        if any(s <= 0 for s in spacing):
            raise ValueError("spacing must be positive")
        self.extent = extent
        self.origin = tuple(float(o) for o in origin)
        self.spacing = tuple(float(s) for s in spacing)
        self.whole_extent = whole_extent if whole_extent is not None else extent

    @property
    def dims(self) -> tuple[int, int, int]:
        """Point dimensions of the local extent."""
        return self.extent.shape

    @property
    def num_points(self) -> int:
        return self.extent.num_points

    @property
    def num_cells(self) -> int:
        return self.extent.num_cells

    # -- geometry ---------------------------------------------------------------
    def point_coordinates_1d(self, axis: int) -> np.ndarray:
        """Physical coordinates of the points along one axis of the extent."""
        lo = (self.extent.i0, self.extent.j0, self.extent.k0)[axis]
        n = self.dims[axis]
        return self.origin[axis] + self.spacing[axis] * (lo + np.arange(n))

    def point_coordinates(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Meshgrid (ij-indexed) of physical point coordinates."""
        x = self.point_coordinates_1d(0)
        y = self.point_coordinates_1d(1)
        z = self.point_coordinates_1d(2)
        return np.meshgrid(x, y, z, indexing="ij")

    def bounds(self) -> tuple[float, float, float, float, float, float]:
        x = self.point_coordinates_1d(0)
        y = self.point_coordinates_1d(1)
        z = self.point_coordinates_1d(2)
        return (x[0], x[-1], y[0], y[-1], z[0], z[-1])

    # -- field views --------------------------------------------------------------
    def point_field_3d(self, name: str) -> np.ndarray:
        """A scalar point array reshaped to the extent's (ni, nj, nk) -- a view."""
        from repro.data.dataset import Association

        arr = self.get_array(Association.POINT, name)
        return arr.values.reshape(self.dims)

    def world_to_index(self, p: tuple[float, float, float]) -> tuple[float, float, float]:
        """Continuous index-space coordinates of a physical point."""
        return tuple(
            (p[a] - self.origin[a]) / self.spacing[a] for a in range(3)
        )  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ImageData(extent={self.extent}, spacing={self.spacing})"
