"""VTK-like data model with zero-copy array mapping.

The SENSEI interface (Sec. 3.2) "selected the VTK data model" and "enhanced
the VTK data model to support arbitrary layouts for multicomponent arrays
... structure-of-arrays and array-of-structures ... without additional
memory copying (zero-copy)".  This package is that data model, rebuilt on
NumPy:

- :class:`DataArray` wraps simulation memory as SoA or AoS without copying;
- :class:`ImageData`, :class:`RectilinearGrid`, :class:`UnstructuredGrid`
  are the mesh types the miniapp, Nyx, and PHASTA map onto;
- :class:`MultiBlockDataset` carries one block per rank, the way the paper's
  codes expose their local domains;
- ghost cells are marked with a ``vtkGhostLevels``-style byte array
  (Sec. 4.2.3, Nyx: "blanking out ghost cells ... by associating a
  vtkGhostLevels attribute -- a byte array of flags marking ghost cells");
- :class:`ParticleSet` is the ragged, variable-per-rank particle
  population (the paper's Nyx workload shape), with exact-integer
  deposit kernels that keep derived grids bit-identical across
  decompositions.
"""

from repro.data.array import AOS, SOA, DataArray, Layout
from repro.data.dataset import Association, Dataset, GHOST_ARRAY_NAME
from repro.data.image_data import ImageData
from repro.data.rectilinear import RectilinearGrid
from repro.data.unstructured import CellType, UnstructuredGrid
from repro.data.multiblock import MultiBlockDataset
from repro.data.ghost import ghost_levels_for_extent, interior_mask
from repro.data.particles import (
    DEPOSIT_SCALE,
    PARTICLE_ARRAYS,
    ParticleSet,
    cic_deposit_int,
    cic_deposit_int_2d,
    cic_gather,
)

__all__ = [
    "DataArray",
    "Layout",
    "SOA",
    "AOS",
    "Dataset",
    "Association",
    "GHOST_ARRAY_NAME",
    "ImageData",
    "RectilinearGrid",
    "UnstructuredGrid",
    "CellType",
    "MultiBlockDataset",
    "ghost_levels_for_extent",
    "interior_mask",
    "ParticleSet",
    "PARTICLE_ARRAYS",
    "DEPOSIT_SCALE",
    "cic_deposit_int",
    "cic_deposit_int_2d",
    "cic_gather",
]
