"""Multiblock datasets: one block per rank (or per BoxLib box)."""

from __future__ import annotations

from typing import Iterator

from repro.data.dataset import Dataset


class MultiBlockDataset:
    """An ordered collection of blocks, some possibly absent on this rank.

    In the paper's codes each MPI rank contributes its local block(s) to a
    global multiblock structure; remote blocks appear as ``None`` locally.
    ``num_blocks`` is the *global* count; iteration yields local blocks.
    """

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        self._blocks: dict[int, Dataset] = {}
        self.num_blocks = num_blocks

    def set_block(self, index: int, block: Dataset) -> None:
        if not 0 <= index < self.num_blocks:
            raise IndexError(f"block index {index} out of range")
        self._blocks[index] = block

    def get_block(self, index: int) -> Dataset | None:
        if not 0 <= index < self.num_blocks:
            raise IndexError(f"block index {index} out of range")
        return self._blocks.get(index)

    def local_blocks(self) -> Iterator[tuple[int, Dataset]]:
        """Yield ``(global_index, block)`` for blocks resident on this rank."""
        for idx in sorted(self._blocks):
            yield idx, self._blocks[idx]

    @property
    def num_local_blocks(self) -> int:
        return len(self._blocks)

    def local_num_points(self) -> int:
        return sum(b.num_points for _, b in self.local_blocks())

    def local_num_cells(self) -> int:
        return sum(b.num_cells for _, b in self.local_blocks())

    def __iter__(self) -> Iterator[Dataset]:
        for _, b in self.local_blocks():
            yield b

    def __len__(self) -> int:
        return self.num_blocks
