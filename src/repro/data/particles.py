"""Particle populations with variable per-rank counts.

Every other mesh in the data model is grid-shaped; a :class:`ParticleSet`
is the ragged counterpart the paper's Nyx use case needs: each rank owns
however many particles currently live in its domain slab, the count
changes every step as particles migrate, and a rank legitimately owning
*zero* particles must flow through adaptors, transports, and reductions
without special-casing.

The geometry (positions) doubles as a point attribute, VTK-vertex style:
``num_points`` is the particle count and the ``position`` / ``velocity`` /
``mass`` / ``id`` attributes are zero-copy :class:`DataArray` views of the
simulation's storage, so the sanitizer's write/retention guards apply to
particle data exactly as they do to grids.

The deposit/gather kernels at the bottom are the particle <-> grid bridge
(cloud-in-cell).  Deposit accumulates in *fixed-point int64*: per-particle
contributions are quantized once, and integer addition is exact and
order-independent, so a deposited grid -- and everything derived from it
(density projections, power spectra, forces) -- is bit-identical across
rank counts, SPMD backends, and migration-induced reorderings.  That is
what lets the equivalence tests assert byte-equal analysis artifacts for
1/2/4-rank runs instead of tolerance comparisons.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.array import DataArray
from repro.data.dataset import Association, Dataset

#: Fixed-point scale for integer deposits: contributions are quantized to
#: multiples of 2**-32 mass units.  Small enough to be invisible next to
#: float64 dynamics, large enough that ~1e7 particle-corner contributions
#: stay far from int64 overflow.
DEPOSIT_SCALE = 2**32

POSITION = "position"
VELOCITY = "velocity"
MASS = "mass"
PARTICLE_ID = "id"

#: Attribute names every ParticleSet exposes, in adaptor listing order.
PARTICLE_ARRAYS = (PARTICLE_ID, POSITION, VELOCITY, MASS)


class ParticleSet(Dataset):
    """One rank's particle population: ids, positions, velocities, masses.

    ``ids`` are persistent int64 labels assigned at initialization; they
    ride along through migration, which is what lets tests assert exact
    ownership replay after a checkpoint restore and lets the FoF analysis
    impose a canonical global order independent of the decomposition.

    The constructor wraps the given arrays by reference (zero-copy); use
    :meth:`copy` for an owning snapshot.
    """

    def __init__(
        self,
        ids: np.ndarray,
        positions: np.ndarray,
        velocities: np.ndarray,
        masses: np.ndarray,
    ) -> None:
        super().__init__()
        ids = np.asarray(ids, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.float64)
        velocities = np.asarray(velocities, dtype=np.float64)
        masses = np.asarray(masses, dtype=np.float64)
        n = ids.shape[0]
        if positions.shape != (n, 3) or velocities.shape != (n, 3):
            raise ValueError(
                f"positions/velocities must be ({n}, 3), got "
                f"{positions.shape} / {velocities.shape}"
            )
        if masses.shape != (n,):
            raise ValueError(f"masses must be ({n},), got {masses.shape}")
        self.ids = ids
        self.positions = positions
        self.velocities = velocities
        self.masses = masses
        self.add_point_array(DataArray.from_soa(PARTICLE_ID, [ids]))
        self.add_point_array(DataArray.from_aos(POSITION, positions))
        self.add_point_array(DataArray.from_aos(VELOCITY, velocities))
        self.add_point_array(DataArray.from_soa(MASS, [masses]))

    # -- construction ---------------------------------------------------------
    @classmethod
    def empty(cls) -> "ParticleSet":
        """A population of zero particles (a legitimate per-rank state)."""
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty((0, 3), dtype=np.float64),
            np.empty((0, 3), dtype=np.float64),
            np.empty(0, dtype=np.float64),
        )

    @classmethod
    def concatenate(cls, parts: Sequence["ParticleSet"]) -> "ParticleSet":
        """Owning concatenation in the given order (migration assembly)."""
        if not parts:
            return cls.empty()
        return cls(
            np.concatenate([p.ids for p in parts]),
            np.concatenate([p.positions for p in parts]),
            np.concatenate([p.velocities for p in parts]),
            np.concatenate([p.masses for p in parts]),
        )

    # -- Dataset geometry contract --------------------------------------------
    @property
    def num_points(self) -> int:
        return int(self.ids.shape[0])

    @property
    def num_cells(self) -> int:
        return 0

    @property
    def num_particles(self) -> int:
        return self.num_points

    # -- ragged views ---------------------------------------------------------
    def slice_view(self, start: int, stop: int) -> "ParticleSet":
        """A zero-copy sub-population over ``[start, stop)``.

        Every attribute of the view shares memory with this set's storage
        (``DataArray.is_zero_copy_of`` holds), which is what the
        sanitizer's write guard needs to police per-rank slices.
        """
        start, stop, _ = slice(start, stop).indices(self.num_points)
        return ParticleSet(
            self.ids[start:stop],
            self.positions[start:stop],
            self.velocities[start:stop],
            self.masses[start:stop],
        )

    def select(self, mask: np.ndarray) -> "ParticleSet":
        """An owning subset (fancy indexing copies) -- migration outboxes."""
        mask = np.asarray(mask)
        return ParticleSet(
            self.ids[mask],
            np.ascontiguousarray(self.positions[mask]),
            np.ascontiguousarray(self.velocities[mask]),
            self.masses[mask],
        )

    def copy(self) -> "ParticleSet":
        """An owning deep copy (checkpoint snapshots)."""
        return ParticleSet(
            self.ids.copy(),
            self.positions.copy(),
            self.velocities.copy(),
            self.masses.copy(),
        )

    def sorted_by_id(self) -> "ParticleSet":
        """An owning copy in canonical (ascending id) order.

        Decomposition- and migration-independent: the canonical order in
        which a gathered global population must be compared or analyzed.
        """
        order = np.argsort(self.ids, kind="stable")
        return ParticleSet(
            self.ids[order],
            np.ascontiguousarray(self.positions[order]),
            np.ascontiguousarray(self.velocities[order]),
            self.masses[order],
        )

    # -- invariants the conservation tests assert ------------------------------
    def total_mass(self) -> float:
        return float(self.masses.sum())

    def momentum(self) -> np.ndarray:
        """Total momentum, a (3,) vector."""
        if self.num_points == 0:
            return np.zeros(3)
        return (self.masses[:, None] * self.velocities).sum(axis=0)

    def fingerprint(self) -> int:
        """Order-sensitive content fingerprint over all four attributes."""
        h = 0
        for name in PARTICLE_ARRAYS:
            h ^= self.get_array(Association.POINT, name).fingerprint()
        return h

    def state_tuple(self) -> tuple:
        """Canonically ordered bytes of the full state (equality checks)."""
        s = self.sorted_by_id()
        return (
            s.ids.tobytes(),
            s.positions.tobytes(),
            s.velocities.tobytes(),
            s.masses.tobytes(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParticleSet(n={self.num_points})"


# -- particle <-> grid kernels -------------------------------------------------


def _cic_corners(
    positions: np.ndarray, grid: int
) -> tuple[np.ndarray, np.ndarray]:
    """Base cell indices and fractional offsets for CIC on a periodic grid."""
    s = positions * grid
    i0 = np.floor(s).astype(np.int64)
    frac = s - i0
    return i0, frac


def cic_deposit_int(
    positions: np.ndarray,
    masses: np.ndarray,
    grid: int,
    scale: int = DEPOSIT_SCALE,
) -> np.ndarray:
    """Cloud-in-cell mass deposit onto a periodic ``grid**3`` int64 field.

    Each particle spreads ``mass * wx * wy * wz`` to its eight enclosing
    cell corners; every contribution is rounded to an integer multiple of
    ``1/scale`` *before* accumulation, so the summed grid is exact in
    int64 and therefore independent of particle order, rank count, and
    reduction topology.  Callers allreduce the int64 grid and divide by
    ``scale`` once at the end.
    """
    out = np.zeros((grid, grid, grid), dtype=np.int64)
    n = positions.shape[0]
    if n == 0:
        return out
    i0, frac = _cic_corners(positions, grid)
    i1 = (i0 + 1) % grid
    w0 = 1.0 - frac
    for cx, wx in ((i0[:, 0], w0[:, 0]), (i1[:, 0], frac[:, 0])):
        for cy, wy in ((i0[:, 1], w0[:, 1]), (i1[:, 1], frac[:, 1])):
            for cz, wz in ((i0[:, 2], w0[:, 2]), (i1[:, 2], frac[:, 2])):
                contrib = np.rint(masses * wx * wy * wz * scale).astype(
                    np.int64
                )
                np.add.at(out, (cx, cy, cz), contrib)
    return out


def cic_deposit_int_2d(
    positions: np.ndarray,
    masses: np.ndarray,
    grid: int,
    axis: int = 0,
    scale: int = DEPOSIT_SCALE,
) -> np.ndarray:
    """CIC deposit of the projection along ``axis`` onto a ``grid**2``
    int64 plane -- the density-projection analysis kernel, with the same
    exact-integer accumulation guarantees as :func:`cic_deposit_int`."""
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0..2, got {axis}")
    out = np.zeros((grid, grid), dtype=np.int64)
    n = positions.shape[0]
    if n == 0:
        return out
    keep = [a for a in (0, 1, 2) if a != axis]
    plane = positions[:, keep]
    i0, frac = _cic_corners(plane, grid)
    i1 = (i0 + 1) % grid
    w0 = 1.0 - frac
    for cu, wu in ((i0[:, 0], w0[:, 0]), (i1[:, 0], frac[:, 0])):
        for cv, wv in ((i0[:, 1], w0[:, 1]), (i1[:, 1], frac[:, 1])):
            contrib = np.rint(masses * wu * wv * scale).astype(np.int64)
            np.add.at(out, (cu, cv), contrib)
    return out


def cic_gather(fields: Sequence[np.ndarray], positions: np.ndarray) -> np.ndarray:
    """Trilinear (CIC) interpolation of grid fields at particle positions.

    ``fields`` is a sequence of ``(g, g, g)`` arrays sampled on the same
    periodic grid; returns ``(n, len(fields))``.  Pure per-particle
    arithmetic: no accumulation, hence deterministic regardless of order.
    """
    first = fields[0]
    grid = first.shape[0]
    n = positions.shape[0]
    out = np.empty((n, len(fields)), dtype=np.float64)
    if n == 0:
        return out
    i0, frac = _cic_corners(positions, grid)
    i1 = (i0 + 1) % grid
    w0 = 1.0 - frac
    for fi, field in enumerate(fields):
        acc = np.zeros(n, dtype=np.float64)
        for cx, wx in ((i0[:, 0], w0[:, 0]), (i1[:, 0], frac[:, 0])):
            for cy, wy in ((i0[:, 1], w0[:, 1]), (i1[:, 1], frac[:, 1])):
                for cz, wz in ((i0[:, 2], w0[:, 2]), (i1[:, 2], frac[:, 2])):
                    acc += field[cx, cy, cz] * wx * wy * wz
        out[:, fi] = acc
    return out
