"""Dataset base type: attribute arrays over points and cells, plus ghosts."""

from __future__ import annotations

import enum

import numpy as np

from repro.data.array import DataArray

#: Name of the ghost byte array, mirroring VTK's ``vtkGhostLevels``.
GHOST_ARRAY_NAME = "vtkGhostLevels"


class Association(enum.Enum):
    """Where an attribute array lives on the mesh."""

    POINT = "point"
    CELL = "cell"


class Dataset:
    """Base mesh type: a container of point/cell :class:`DataArray` attributes.

    Subclasses define geometry/topology (:class:`~repro.data.image_data.ImageData`,
    :class:`~repro.data.unstructured.UnstructuredGrid`, ...) and report
    ``num_points`` / ``num_cells`` so attribute sizes can be validated.
    """

    def __init__(self) -> None:
        self._arrays: dict[Association, dict[str, DataArray]] = {
            Association.POINT: {},
            Association.CELL: {},
        }

    # geometry interface supplied by subclasses -------------------------------
    @property
    def num_points(self) -> int:
        raise NotImplementedError

    @property
    def num_cells(self) -> int:
        raise NotImplementedError

    # attribute management -----------------------------------------------------
    def _expected(self, assoc: Association) -> int:
        return self.num_points if assoc is Association.POINT else self.num_cells

    def add_array(self, assoc: Association, array: DataArray) -> None:
        expected = self._expected(assoc)
        if array.num_tuples != expected:
            raise ValueError(
                f"array {array.name!r} has {array.num_tuples} tuples, "
                f"{assoc.value} data needs {expected}"
            )
        self._arrays[assoc][array.name] = array

    def add_point_array(self, array: DataArray) -> None:
        self.add_array(Association.POINT, array)

    def add_cell_array(self, array: DataArray) -> None:
        self.add_array(Association.CELL, array)

    def get_array(self, assoc: Association, name: str) -> DataArray:
        try:
            return self._arrays[assoc][name]
        except KeyError:
            raise KeyError(
                f"no {assoc.value} array named {name!r}; "
                f"have {sorted(self._arrays[assoc])}"
            ) from None

    def has_array(self, assoc: Association, name: str) -> bool:
        return name in self._arrays[assoc]

    def array_names(self, assoc: Association) -> list[str]:
        return sorted(self._arrays[assoc])

    def num_arrays(self, assoc: Association) -> int:
        return len(self._arrays[assoc])

    def remove_array(self, assoc: Association, name: str) -> None:
        self._arrays[assoc].pop(name, None)

    # ghost support -------------------------------------------------------------
    def set_ghost_levels(self, assoc: Association, levels: np.ndarray) -> None:
        """Attach a ``vtkGhostLevels`` byte array (0 = owned, >0 = ghost)."""
        levels = np.asarray(levels, dtype=np.uint8)
        self.add_array(assoc, DataArray.from_soa(GHOST_ARRAY_NAME, [levels]))

    def ghost_levels(self, assoc: Association) -> np.ndarray | None:
        if self.has_array(assoc, GHOST_ARRAY_NAME):
            return self.get_array(assoc, GHOST_ARRAY_NAME).values
        return None

    def owned_mask(self, assoc: Association) -> np.ndarray:
        """Boolean mask of non-ghost entries (all True without ghost array)."""
        g = self.ghost_levels(assoc)
        if g is None:
            return np.ones(self._expected(assoc), dtype=bool)
        return g == 0

    # accounting ------------------------------------------------------------------
    def attribute_nbytes(self) -> int:
        """Total bytes referenced by attribute arrays (owned or viewed)."""
        return sum(
            a.nbytes for arrays in self._arrays.values() for a in arrays.values()
        )
