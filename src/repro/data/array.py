"""Multicomponent data arrays with explicit memory layout.

The key enabler of the paper's "negligible overhead" result (Figs. 3-4) is
that the data model can describe simulation memory *in place*: a
structure-of-arrays (SoA) field is a list of per-component 1-D arrays (each
possibly a strided view into simulation storage), an array-of-structures
(AoS) field is one interleaved ``(n, ncomp)`` array.  :class:`DataArray`
records which layout it wraps and whether any copy was taken, so tests and
the memory tracker can verify the zero-copy invariant mechanically.
"""

from __future__ import annotations

import enum
import zlib
from typing import Sequence

import numpy as np


class Layout(enum.Enum):
    """Memory layout of a multicomponent array."""

    SOA = "structure_of_arrays"
    AOS = "array_of_structures"


SOA = Layout.SOA
AOS = Layout.AOS


class DataArray:
    """A named, possibly multicomponent array over points or cells.

    Construct via :meth:`from_soa`, :meth:`from_aos`, or :meth:`from_numpy`.
    The constructor never copies; conversion methods (:meth:`as_aos`,
    :meth:`as_soa`) copy only when the requested layout differs from the
    stored one, and say so.
    """

    def __init__(self, name: str, components: list[np.ndarray], layout: Layout):
        if not components:
            raise ValueError("DataArray requires at least one component")
        n = components[0].shape[0]
        for c in components:
            if c.ndim != 1:
                raise ValueError("components must be 1-D arrays (or views)")
            if c.shape[0] != n:
                raise ValueError("components must have equal length")
        self.name = name
        self._components = components
        self.layout = layout
        #: Original interleaved array when built via :meth:`from_aos`; lets
        #: :meth:`as_aos` hand back the simulation's buffer without a copy.
        self._aos_base: np.ndarray | None = None
        #: Bytes copied while *constructing* this array (0 for the zero-copy
        #: constructors; ``nbytes`` for :meth:`deep_copy` results).
        self._construction_copied: int = 0
        #: Bytes copied by layout conversions (:meth:`as_aos` on SoA data)
        #: since construction.
        self._conversion_copied: int = 0
        #: True for arrays produced by :meth:`readonly_view` -- the
        #: sanitizer's write-protected hand-off mode.
        self._guarded = False

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_soa(cls, name: str, components: Sequence[np.ndarray]) -> "DataArray":
        """Wrap per-component arrays (zero-copy; views allowed)."""
        return cls(name, [np.asarray(c) for c in components], SOA)

    @classmethod
    def from_aos(cls, name: str, interleaved: np.ndarray) -> "DataArray":
        """Wrap an interleaved ``(n, ncomp)`` array (zero-copy column views)."""
        a = np.asarray(interleaved)
        if a.ndim == 1:
            a = a[:, None]
        if a.ndim != 2:
            raise ValueError("AoS array must be 1-D or 2-D")
        arr = cls(name, [a[:, i] for i in range(a.shape[1])], AOS)
        arr._aos_base = a
        return arr

    @classmethod
    def from_numpy(cls, name: str, array: np.ndarray) -> "DataArray":
        """Wrap a scalar field of any shape as a flat single-component view.

        ``array`` is flattened with ``reshape(-1)``, which is a view for
        contiguous input -- the common case for simulation grids.
        """
        a = np.asarray(array)
        flat = a.reshape(-1)
        arr = cls(name, [flat], SOA)
        if a.size and not np.shares_memory(flat, a):
            # reshape of non-contiguous input copies; record it honestly so
            # is_zero_copy stays a mechanical truth, not an assumption.
            arr._construction_copied = flat.nbytes
        return arr

    # -- introspection --------------------------------------------------------
    @property
    def num_components(self) -> int:
        return len(self._components)

    @property
    def num_tuples(self) -> int:
        return self._components[0].shape[0]

    @property
    def dtype(self) -> np.dtype:
        return self._components[0].dtype

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._components)

    def is_zero_copy_of(self, owner: np.ndarray) -> bool:
        """True if every component shares memory with ``owner``."""
        return all(np.shares_memory(c, owner) for c in self._components)

    @property
    def is_zero_copy(self) -> bool:
        """True if constructing this array copied no simulation bytes.

        Constructors (:meth:`from_soa`, :meth:`from_aos`, :meth:`from_numpy`
        on contiguous input) never copy, so this is normally True;
        :meth:`deep_copy` results and :meth:`from_numpy` over non-contiguous
        input report False.  Conversion copies (:meth:`as_aos` on SoA data)
        are tracked separately in :attr:`nbytes_copied`.
        """
        return self._construction_copied == 0

    @property
    def nbytes_copied(self) -> int:
        """Total bytes this array has copied: at construction plus every
        layout-conversion copy performed so far.  The mechanical check
        behind the paper's zero-copy mapping claim (Sec. 3.2)."""
        return self._construction_copied + self._conversion_copied

    @property
    def writeable(self) -> bool:
        """True if every component accepts in-place writes."""
        return all(c.flags.writeable for c in self._components)

    @property
    def guarded(self) -> bool:
        """True for write-protected views produced by :meth:`readonly_view`."""
        return self._guarded

    def readonly_view(self, name: str | None = None) -> "DataArray":
        """A zero-copy, write-protected view of this array.

        The sanitizer hands these to analyses in debug mode: any in-place
        write through the view raises ``ValueError`` at the write site.
        NumPy cannot prevent a determined caller from re-enabling the
        writeable flag, which is why the sanitizer also fingerprints the
        underlying buffers (:meth:`fingerprint`) as a backstop.
        """
        comps = []
        for c in self._components:
            v = c.view()
            v.flags.writeable = False
            comps.append(v)
        out = DataArray(name or self.name, comps, self.layout)
        if self._aos_base is not None:
            base = self._aos_base.view()
            base.flags.writeable = False
            out._aos_base = base
        out._guarded = True
        return out

    def slice_tuples(self, start: int, stop: int) -> "DataArray":
        """A zero-copy view over the tuple range ``[start, stop)``.

        This is how per-rank slices of a ragged particle population are
        handed to analyses: every component (and the AoS base, when one
        exists) is a strided view of the parent's storage, so
        :attr:`is_zero_copy` stays True, :meth:`is_zero_copy_of` holds
        against the original simulation buffer, and the write-protected
        state of guarded parents survives slicing.  An empty range is
        valid -- a rank that owns zero particles slices ``[n, n)``.
        """
        start, stop, _ = slice(start, stop).indices(self.num_tuples)
        out = DataArray(
            self.name, [c[start:stop] for c in self._components], self.layout
        )
        if self._aos_base is not None:
            out._aos_base = self._aos_base[start:stop]
        # Slicing itself never copies, but a slice of a copied buffer is
        # still backed by copied bytes -- report that honestly.
        if self._construction_copied:
            out._construction_copied = out.nbytes
        out._guarded = self._guarded
        return out

    def fingerprint(self) -> int:
        """A content fingerprint (CRC-32 over components, shape, dtype).

        Cheap enough for debug-mode per-step checks; collisions are
        possible but vanishingly unlikely for accidental mutations.
        """
        h = 0
        for c in self._components:
            h = zlib.crc32(repr((c.shape, str(c.dtype))).encode(), h)
            h = zlib.crc32(c.tobytes(), h)
        return h

    @property
    def owns_data(self) -> bool:
        """True if any component owns its buffer.

        Caveat: wrapping a simulation's *owning* array by reference also
        reports True (numpy cannot distinguish shared references from
        copies); use :meth:`is_zero_copy_of` against the simulation buffer
        for a definitive zero-copy check.
        """
        return any(c.base is None and c.flags.owndata for c in self._components)

    # -- access ---------------------------------------------------------------
    def component(self, i: int) -> np.ndarray:
        return self._components[i]

    @property
    def values(self) -> np.ndarray:
        """The single component of a scalar array."""
        if self.num_components != 1:
            raise ValueError(
                f"{self.name!r} has {self.num_components} components; "
                "use component(i) or as_aos()"
            )
        return self._components[0]

    def as_aos(self) -> np.ndarray:
        """Interleaved ``(n, ncomp)`` array; copies iff stored as SoA."""
        if self._aos_base is not None:
            return self._aos_base
        out = np.column_stack(self._components)
        self._conversion_copied += out.nbytes
        return out

    def as_soa(self) -> list[np.ndarray]:
        """Per-component arrays; never copies (columns are views for AoS)."""
        return list(self._components)

    def magnitude(self) -> np.ndarray:
        """Euclidean norm across components (e.g. velocity magnitude)."""
        if self.num_components == 1:
            return np.abs(self._components[0])
        sq = self._components[0].astype(np.float64) ** 2
        for c in self._components[1:]:
            sq += c.astype(np.float64) ** 2
        return np.sqrt(sq)

    def deep_copy(self, name: str | None = None) -> "DataArray":
        """An owning copy (the ablation counterpart to zero-copy mapping)."""
        out = DataArray(
            name or self.name, [c.copy() for c in self._components], self.layout
        )
        out._construction_copied = out.nbytes
        return out

    def min(self) -> float:
        """Smallest value across components; ``+inf`` when empty.

        The infinity sentinels mirror the empty-rank convention of the
        parallel reductions (a rank owning zero particles contributes the
        identity), so ragged views feed straight into min/max collectives.
        """
        if self.num_tuples == 0:
            return float("inf")
        return float(min(c.min() for c in self._components))

    def max(self) -> float:
        """Largest value across components; ``-inf`` when empty."""
        if self.num_tuples == 0:
            return float("-inf")
        return float(max(c.max() for c in self._components))

    def __len__(self) -> int:
        return self.num_tuples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataArray({self.name!r}, n={self.num_tuples}, "
            f"ncomp={self.num_components}, layout={self.layout.name}, "
            f"dtype={self.dtype})"
        )
