"""Rectilinear grids: Nyx's mesh type (axis-aligned boxes, per-axis coords)."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.util.decomp import Extent


class RectilinearGrid(Dataset):
    """Axis-aligned grid with explicit per-axis coordinate arrays.

    Coordinate arrays are held by reference (zero-copy).  Nyx represents its
    single-level domain "as ... axis-aligned rectilinear boxes" (Sec. 4.2.3);
    each box becomes one ``RectilinearGrid`` with an extent in global index
    space.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
        extent: Extent | None = None,
    ) -> None:
        super().__init__()
        self.x = np.asarray(x, dtype=np.float64)
        self.y = np.asarray(y, dtype=np.float64)
        self.z = np.asarray(z, dtype=np.float64)
        for name, c in (("x", self.x), ("y", self.y), ("z", self.z)):
            if c.ndim != 1 or c.size < 1:
                raise ValueError(f"{name} coordinates must be a non-empty 1-D array")
            if c.size > 1 and not np.all(np.diff(c) > 0):
                raise ValueError(f"{name} coordinates must be strictly increasing")
        if extent is None:
            extent = Extent(0, self.x.size - 1, 0, self.y.size - 1, 0, self.z.size - 1)
        if extent.shape != (self.x.size, self.y.size, self.z.size):
            raise ValueError("extent shape must match coordinate array lengths")
        self.extent = extent

    @property
    def dims(self) -> tuple[int, int, int]:
        return (self.x.size, self.y.size, self.z.size)

    @property
    def num_points(self) -> int:
        return self.x.size * self.y.size * self.z.size

    @property
    def num_cells(self) -> int:
        return (
            max(self.x.size - 1, 0)
            * max(self.y.size - 1, 0)
            * max(self.z.size - 1, 0)
        )

    def bounds(self) -> tuple[float, float, float, float, float, float]:
        return (
            float(self.x[0]),
            float(self.x[-1]),
            float(self.y[0]),
            float(self.y[-1]),
            float(self.z[0]),
            float(self.z[-1]),
        )

    def cell_field_3d(self, name: str) -> np.ndarray:
        """A scalar cell array reshaped to cell dims -- a view."""
        from repro.data.dataset import Association

        arr = self.get_array(Association.CELL, name)
        return arr.values.reshape(
            (self.x.size - 1, self.y.size - 1, self.z.size - 1)
        )

    def point_field_3d(self, name: str) -> np.ndarray:
        from repro.data.dataset import Association

        arr = self.get_array(Association.POINT, name)
        return arr.values.reshape(self.dims)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RectilinearGrid(dims={self.dims})"
