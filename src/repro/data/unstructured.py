"""Unstructured grids: PHASTA's mesh type.

PHASTA's SENSEI data adaptor "uses VTK's zero-copy ability to map the nodal
coordinates and field variables while the VTK grid connectivity is a full
copy" (Sec. 4.2.1).  This class supports exactly that split: points and
attributes are wrapped by reference; connectivity is validated (and therefore
owned) on construction.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.data.dataset import Dataset


class CellType(enum.IntEnum):
    """Subset of VTK cell types used by the proxies."""

    VERTEX = 1
    LINE = 3
    TRIANGLE = 5
    QUAD = 9
    TETRA = 10
    HEXAHEDRON = 12


#: Points per cell for the fixed-size cell types above.
CELL_NUM_POINTS = {
    CellType.VERTEX: 1,
    CellType.LINE: 2,
    CellType.TRIANGLE: 3,
    CellType.QUAD: 4,
    CellType.TETRA: 4,
    CellType.HEXAHEDRON: 8,
}


class UnstructuredGrid(Dataset):
    """Points + (connectivity, offsets, cell types) topology.

    ``points`` is ``(n, 3)`` and is stored by reference (zero-copy).
    ``connectivity`` is a flat point-index array; ``offsets`` has one entry
    per cell giving the *end* of its slice in ``connectivity`` (VTK 9 style:
    ``offsets[c-1]:offsets[c]`` with an implicit leading 0).
    """

    def __init__(
        self,
        points: np.ndarray,
        connectivity: np.ndarray,
        offsets: np.ndarray,
        cell_types: np.ndarray,
    ) -> None:
        super().__init__()
        points = np.asarray(points)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must be an (n, 3) array")
        connectivity = np.asarray(connectivity, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        cell_types = np.asarray(cell_types, dtype=np.uint8)
        if offsets.shape != cell_types.shape:
            raise ValueError("offsets and cell_types must have one entry per cell")
        if offsets.size and offsets[-1] != connectivity.size:
            raise ValueError("last offset must equal connectivity length")
        if offsets.size and (np.any(np.diff(offsets) <= 0) or offsets[0] <= 0):
            raise ValueError("offsets must be strictly increasing and positive")
        if connectivity.size and (
            connectivity.min() < 0 or connectivity.max() >= points.shape[0]
        ):
            raise ValueError("connectivity references out-of-range points")
        self.points = points
        self.connectivity = connectivity
        self.offsets = offsets
        self.cell_types = cell_types

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_cells(
        cls, points: np.ndarray, cell_type: CellType, cells: np.ndarray
    ) -> "UnstructuredGrid":
        """Build from a homogeneous ``(ncells, pts_per_cell)`` cell array."""
        cells = np.asarray(cells, dtype=np.int64)
        npts = CELL_NUM_POINTS[cell_type]
        if cells.ndim != 2 or cells.shape[1] != npts:
            raise ValueError(
                f"{cell_type.name} cells must be (ncells, {npts}); got {cells.shape}"
            )
        ncells = cells.shape[0]
        connectivity = cells.reshape(-1)
        offsets = np.arange(1, ncells + 1, dtype=np.int64) * npts
        cell_types = np.full(ncells, int(cell_type), dtype=np.uint8)
        return cls(points, connectivity, offsets, cell_types)

    # -- topology access -----------------------------------------------------------
    @property
    def num_points(self) -> int:
        return self.points.shape[0]

    @property
    def num_cells(self) -> int:
        return self.offsets.shape[0]

    def cell(self, c: int) -> np.ndarray:
        """Point indices of cell ``c``."""
        start = 0 if c == 0 else int(self.offsets[c - 1])
        return self.connectivity[start : int(self.offsets[c])]

    def cells_as_array(self, cell_type: CellType) -> np.ndarray:
        """All cells of one fixed-size type as ``(n, pts_per_cell)`` -- no copy
        if the grid is homogeneous in that type."""
        npts = CELL_NUM_POINTS[cell_type]
        if np.all(self.cell_types == int(cell_type)):
            return self.connectivity.reshape(-1, npts)
        mask = self.cell_types == int(cell_type)
        out = np.empty((int(mask.sum()), npts), dtype=np.int64)
        row = 0
        for c in np.nonzero(mask)[0]:
            out[row] = self.cell(int(c))
            row += 1
        return out

    def cell_centers(self) -> np.ndarray:
        """Mean of each cell's points; vectorized for homogeneous grids."""
        if self.num_cells == 0:
            return np.empty((0, 3))
        first = CellType(int(self.cell_types[0]))
        if np.all(self.cell_types == self.cell_types[0]) and first in CELL_NUM_POINTS:
            cells = self.connectivity.reshape(-1, CELL_NUM_POINTS[first])
            return self.points[cells].mean(axis=1)
        return np.array([self.points[self.cell(c)].mean(axis=0) for c in range(self.num_cells)])

    def bounds(self) -> tuple[float, float, float, float, float, float]:
        lo = self.points.min(axis=0)
        hi = self.points.max(axis=0)
        return (lo[0], hi[0], lo[1], hi[1], lo[2], hi[2])

    def topology_nbytes(self) -> int:
        """Bytes held by the (full-copy) connectivity structures."""
        return self.connectivity.nbytes + self.offsets.nbytes + self.cell_types.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnstructuredGrid(points={self.num_points}, cells={self.num_cells})"
