"""Ghost-level utilities.

AVF-LESLIE's adaptor "exposes data array slices (to remove ghost cells)"
(Sec. 4.2.2); Nyx instead blanks ghosts with a ``vtkGhostLevels`` byte array
(Sec. 4.2.3, at a cost of ~2 MB per rank).  Both styles are supported:
:func:`interior_mask` / slicing for the AVF style, and
:func:`ghost_levels_for_extent` for the Nyx style.
"""

from __future__ import annotations

import numpy as np

from repro.util.decomp import Extent


def ghost_levels_for_extent(local_with_ghosts: Extent, owned: Extent) -> np.ndarray:
    """Byte array over ``local_with_ghosts`` marking entries outside ``owned``.

    Value is the Chebyshev distance (in layers) from the owned region, so a
    two-deep ghost shell gets levels 1 and 2 -- matching VTK's ghost-level
    semantics.  Returned flat, in the same (i-fastest ``reshape``-compatible)
    order as field arrays.
    """
    ni, nj, nk = local_with_ghosts.shape
    i = local_with_ghosts.i0 + np.arange(ni)
    j = local_with_ghosts.j0 + np.arange(nj)
    k = local_with_ghosts.k0 + np.arange(nk)

    def axis_dist(coords: np.ndarray, lo: int, hi: int) -> np.ndarray:
        d = np.zeros(coords.shape, dtype=np.int64)
        below = coords < lo
        above = coords > hi
        d[below] = lo - coords[below]
        d[above] = coords[above] - hi
        return d

    di = axis_dist(i, owned.i0, owned.i1)[:, None, None]
    dj = axis_dist(j, owned.j0, owned.j1)[None, :, None]
    dk = axis_dist(k, owned.k0, owned.k1)[None, None, :]
    level = np.maximum(np.maximum(di, dj), dk)
    if level.max() > 255:
        raise ValueError("ghost level exceeds uint8 range")
    return level.astype(np.uint8).reshape(-1)


def interior_mask(local_with_ghosts: Extent, owned: Extent) -> tuple[slice, slice, slice]:
    """Slices selecting the owned region from a ghosted 3-D field array."""
    oi = owned.i0 - local_with_ghosts.i0
    oj = owned.j0 - local_with_ghosts.j0
    ok = owned.k0 - local_with_ghosts.k0
    if oi < 0 or oj < 0 or ok < 0:
        raise ValueError("owned extent must lie inside the ghosted extent")
    ni, nj, nk = owned.shape
    gi, gj, gk = local_with_ghosts.shape
    if oi + ni > gi or oj + nj > gj or ok + nk > gk:
        raise ValueError("owned extent must lie inside the ghosted extent")
    return (slice(oi, oi + ni), slice(oj, oj + nj), slice(ok, ok + nk))
