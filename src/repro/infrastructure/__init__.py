"""In situ infrastructure emulations (Sec. 2.2.3).

The paper studies four production infrastructures behind the SENSEI
interface; each is reproduced here as an :class:`~repro.core.AnalysisAdaptor`
with the cost structure the paper measures:

- :mod:`catalyst` -- ParaView Catalyst: filter pipelines + rendering with
  binary-swap compositing at 1920x1080, "Editions" that trade capability
  for footprint, serial PNG output on rank 0;
- :mod:`libsim` -- VisIt Libsim: session-file-driven visualization with a
  *per-rank* session parse at initialization (the Fig. 5 init overhead),
  direct-send compositing at 1600x1600, pseudocolor slices and isosurfaces;
- :mod:`adios` -- ADIOS with the FlexPath staging transport: a writer-side
  adaptor (``adios::advance`` / ``adios::analysis`` timings of Fig. 8) and
  an endpoint runner hosting any analysis adaptor in transit (Fig. 9),
  plus a BP-file mode;
- :mod:`glean` -- GLEAN-style aggregation: topology-aware many-to-few data
  staging for I/O acceleration, with optional asynchronous drain.
"""

from repro.infrastructure.catalyst import CatalystAdaptor, CatalystEdition, EDITIONS
from repro.infrastructure.libsim import LibsimAdaptor, write_session_file
from repro.infrastructure.adios import (
    AdiosBPAdaptor,
    AdiosFlexPathWriter,
    EndpointDataAdaptor,
    run_flexpath_job,
)
from repro.infrastructure.glean import GleanAdaptor

__all__ = [
    "CatalystAdaptor",
    "CatalystEdition",
    "EDITIONS",
    "LibsimAdaptor",
    "write_session_file",
    "AdiosBPAdaptor",
    "AdiosFlexPathWriter",
    "EndpointDataAdaptor",
    "run_flexpath_job",
    "GleanAdaptor",
]
