"""ParaView Catalyst emulation.

Catalyst "enables using ParaView's visualization capabilities in in situ
workflows" via analysis pipelines; "to minimize memory footprint, Catalyst
libraries are available in various flavors, called Editions" (Sec. 2.2.3).
The Catalyst-slice configuration renders a pseudocolored 2-D slice at
1920x1080, composites hierarchically (binary swap here), and writes the
image from rank 0 (Sec. 4.1.3) -- where the PNG's zlib compression is the
serial bottleneck Table 2 uncovers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.analysis.slice_ import SlicePlane, extract_axis_slice, _inplane_axes
from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association, ImageData, MultiBlockDataset
from repro.mpi import MAX, MIN
from repro.render import blank_image, composite_over_into, rasterize_slice
from repro.render.colormap import COOL_WARM, Colormap
from repro.render.compositing import FramebufferPool, binary_swap
from repro.render.png import encode_png
from repro.util.timers import timed


@dataclass(frozen=True)
class CatalystEdition:
    """A Catalyst Edition: capability subset <-> static footprint trade.

    Footprints follow the paper's numbers: the full statically linked
    Edition used with PHASTA was 153 MB (87 MB dynamic); slimmer Editions
    "only enable components of ParaView used in the analysis pipelines".
    """

    name: str
    static_bytes: int
    filters: frozenset[str]

    def supports(self, filter_name: str) -> bool:
        return filter_name in self.filters


EDITIONS: dict[str, CatalystEdition] = {
    "full": CatalystEdition(
        "full", 153 * 1024 * 1024, frozenset({"slice", "contour", "render", "writer"})
    ),
    "rendering": CatalystEdition(
        "rendering", 87 * 1024 * 1024, frozenset({"slice", "render"})
    ),
    "extract": CatalystEdition("extract", 24 * 1024 * 1024, frozenset({"slice", "writer"})),
}


@register_analysis("catalyst")
def _make_catalyst(config) -> "CatalystAdaptor":
    return CatalystAdaptor(
        plane=SlicePlane(config.get_int("axis", 2), config.get_int("index", 0)),
        array=config.get("array", "data"),
        resolution=(
            config.get_int("width", 1920),
            config.get_int("height", 1080),
        ),
        output_dir=config.get("output_dir"),
        edition=config.get("edition", "rendering"),
        compression_level=config.get_int("compression_level", 6),
        frequency=config.get_int("frequency", 1),
        png_workers=config.get_int("png_workers", 0),
        png_codec=config.get("png_codec", "auto"),
        framebuffer_pool=config.get_bool("framebuffer_pool", False),
    )


class CatalystAdaptor(AnalysisAdaptor):
    """The Catalyst-slice pipeline: slice -> pseudocolor -> binary-swap
    composite -> serial PNG on rank 0.

    Works with both single-block :class:`ImageData` meshes (the miniapp)
    and :class:`MultiBlockDataset` meshes (the ADIOS endpoint, Nyx).  PNGs
    are written to ``output_dir`` when given; otherwise the encoded bytes
    are kept on ``last_png`` so callers (and tests) can consume them.

    Two hot-path knobs ablate the paper's serial-rank-0 bottlenecks:
    ``png_workers > 0`` switches rank 0 to the parallel chunked PNG deflate
    (``png_codec`` picks the executor: ``auto``/``thread``/``process``/
    ``serial``, where ``process`` is the GIL-free persistent codec pool),
    and ``framebuffer_pool=True`` reuses framebuffers across steps instead
    of allocating fresh RGB/alpha triples every frame.
    """

    def __init__(
        self,
        plane: SlicePlane,
        array: str = "data",
        resolution: tuple[int, int] = (1920, 1080),
        colormap: Colormap = COOL_WARM,
        output_dir: str | None = None,
        edition: str = "rendering",
        compression_level: int = 6,
        frequency: int = 1,
        png_workers: int = 0,
        png_codec: str = "auto",
        framebuffer_pool: bool = False,
    ) -> None:
        super().__init__()
        if edition not in EDITIONS:
            raise ValueError(f"unknown Catalyst edition {edition!r}")
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.plane = plane
        self.array = array
        self.resolution = resolution
        self.colormap = colormap
        self.output_dir = output_dir
        self.edition = EDITIONS[edition]
        if not self.edition.supports("slice") or not self.edition.supports("render"):
            raise ValueError(
                f"edition {edition!r} lacks the filters the slice pipeline needs"
            )
        self.compression_level = compression_level
        self.frequency = frequency
        if png_workers < 0:
            raise ValueError("png_workers must be non-negative")
        self.png_workers = png_workers
        if png_codec not in ("auto", "thread", "process", "serial"):
            raise ValueError(f"unknown png_codec {png_codec!r}")
        self.png_codec = png_codec
        self._use_pool = framebuffer_pool
        self._pool: FramebufferPool | None = None
        self._comm = None
        self.images_written = 0
        self.last_png: bytes | None = None

    def initialize(self, comm) -> None:
        self._comm = comm
        if self.memory is not None:
            # The Edition's library footprint is a per-rank static cost.
            self.memory.add_static(self.edition.static_bytes, label="catalyst::edition")
        if self._use_pool and self._pool is None:
            # A pool created earlier by reconfigure() keeps its tuned depth.
            self._pool = FramebufferPool(
                memory=self.memory, label="catalyst::framebuffer_pool"
            )
        if self.output_dir and comm.rank == 0:
            os.makedirs(self.output_dir, exist_ok=True)

    def reconfigure(
        self,
        png_workers: int | None = None,
        png_codec: str | None = None,
        framebuffer_depth: int | None = None,
    ) -> dict:
        """Apply autotuning knob changes between steps.

        This is the actuator surface the online controller drives: PNG
        worker count and codec take effect at the next encode;
        ``framebuffer_depth`` retunes (or creates/drains) the framebuffer
        pool's free-list depth.  Only safe between ``execute()`` calls --
        the controller runs at step boundaries by construction.  Returns
        the knobs actually applied.
        """
        applied: dict = {}
        if png_workers is not None:
            if png_workers < 0:
                raise ValueError("png_workers must be non-negative")
            self.png_workers = int(png_workers)
            applied["png_workers"] = self.png_workers
        if png_codec is not None:
            if png_codec not in ("auto", "thread", "process", "serial"):
                raise ValueError(f"unknown png_codec {png_codec!r}")
            self.png_codec = png_codec
            applied["png_codec"] = png_codec
        if framebuffer_depth is not None:
            depth = int(framebuffer_depth)
            if depth < 0:
                raise ValueError("framebuffer_depth must be non-negative")
            if depth == 0:
                if self._pool is not None:
                    self._pool.drain()
                    self._pool = None
                self._use_pool = False
            elif self._pool is None:
                self._use_pool = True
                self._pool = FramebufferPool(
                    memory=self.memory,
                    label="catalyst::framebuffer_pool",
                    max_free=depth,
                )
            else:
                self._pool.max_free = depth
            applied["framebuffer_depth"] = depth
        return applied

    # -- pipeline stages ---------------------------------------------------
    def _local_fragments(
        self, data: DataAdaptor
    ) -> tuple[list, tuple[int, int, int, int]]:
        """Slice every local block; returns fragments + global 2-D extent."""
        mesh = data.get_mesh(structure_only=True)
        if isinstance(mesh, MultiBlockDataset):
            blocks = [b for _, b in mesh.local_blocks()]
            whole = None
            for b in blocks:
                if isinstance(b, ImageData):
                    whole = b.whole_extent
                    break
            if whole is None:
                raise TypeError("Catalyst slice requires ImageData blocks")
        elif isinstance(mesh, ImageData):
            blocks = [mesh]
            whole = mesh.whole_extent
        else:
            raise TypeError("Catalyst slice requires an ImageData mesh")
        u, v = _inplane_axes(self.plane.axis)
        wb = [(whole.i0, whole.i1), (whole.j0, whole.j1), (whole.k0, whole.k1)]
        global2d = (*wb[u], *wb[v])
        single_block = not isinstance(mesh, MultiBlockDataset)
        fragments = []
        for block in blocks:
            ext = block.extent
            lo = (ext.i0, ext.j0, ext.k0)[self.plane.axis]
            hi = (ext.i1, ext.j1, ext.k1)[self.plane.axis]
            if not lo <= self.plane.index <= hi:
                continue
            if single_block and not block.has_array(Association.POINT, self.array):
                # Lazily map simulation data only on intersecting ranks; a
                # multiblock mesh (ADIOS endpoint) arrives with per-block
                # arrays already attached.
                block.add_array(
                    Association.POINT, data.get_array(Association.POINT, self.array)
                )
            frag = extract_axis_slice(block, self.array, self.plane)
            if frag is not None:
                fragments.append(frag)
        return fragments, global2d

    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        if step % self.frequency != 0:
            return True
        width, height = self.resolution
        with timed(self.timers, "catalyst::slice"):
            fragments, global2d = self._local_fragments(data)
        # Consistent pseudocolor range needs the slice's global min/max.
        local_min = min((float(f.values.min()) for f in fragments), default=float("inf"))
        local_max = max((float(f.values.max()) for f in fragments), default=float("-inf"))
        vmin = self._comm.allreduce(local_min, MIN)
        vmax = self._comm.allreduce(local_max, MAX)
        with timed(self.timers, "catalyst::render"):
            if self._pool is not None:
                partial = self._pool.acquire(width, height)
            else:
                partial = blank_image(width, height)
            for frag in fragments:
                img = rasterize_slice(
                    frag.values,
                    frag.extent2d,
                    global2d,
                    width,
                    height,
                    colormap=self.colormap,
                    vmin=vmin,
                    vmax=vmax,
                )
                # Earlier fragments stay in front (rank-order convention);
                # in-place: no per-fragment framebuffer allocation.
                composite_over_into(partial, img, out=partial)
            if self.memory is not None and self._pool is None:
                # Framebuffer lives for the duration of the composite;
                # charge it into the high-water mark then release.  (With a
                # pool the buffer is charged persistently at first acquire.)
                self.memory.allocate(partial.nbytes, label="catalyst::framebuffer")
                self.memory.free(partial.nbytes, label="catalyst::framebuffer")
        with timed(self.timers, "catalyst::composite"):
            final = binary_swap(self._comm, partial, pool=self._pool)
        if self._pool is not None and final is not partial:
            # On a single rank binary_swap returns partial itself; releasing
            # both would hand the same buffer out twice.
            self._pool.release(partial)
        if final is not None:
            # PNG encode on rank 0 -- serial by default (the Table 2
            # bottleneck), parallel chunked deflate when png_workers > 0.
            with timed(self.timers, "catalyst::png"):
                blob = encode_png(
                    final.rgb,
                    self.compression_level,
                    workers=self.png_workers,
                    codec=self.png_codec,
                )
            self.last_png = blob
            rec = self.timers.trace if self.timers is not None else None
            if rec is not None:
                rec.count("catalyst::png_bytes", len(blob))
                if self._pool is not None:
                    self._pool.record_gauges(rec)
            if self._pool is not None:
                self._pool.release(final)
            if self.output_dir:
                path = os.path.join(self.output_dir, f"catalyst_{step:06d}.png")
                with open(path, "wb") as fh:
                    fh.write(blob)
            self.images_written += 1
        return True

    def finalize(self) -> dict | None:
        if self._comm is not None and self._comm.rank == 0:
            return {"images_written": self.images_written}
        return None
