"""VisIt Libsim emulation.

Libsim "can use VisIt session files, which are XML files saved from the
VisIt GUI, which can specify more complex visualizations" (Sec. 2.2.3).  Our
session files are JSON with the same role: a list of plots (pseudocolor
slices and isosurface contours).  Two measured behaviours are reproduced
deliberately:

- the session file is opened and parsed *on every rank* at initialization
  ("this overhead currently represents per-rank configuration file checks",
  Fig. 5's ~3.5 s Libsim-slice init at 45K);
- compositing is direct-send at 1600x1600 (vs Catalyst's binary swap at
  1920x1080), giving the two slice configurations their different scaling
  signatures in Fig. 6.

The AVF-LESLIE session (3 isosurfaces + 3 slice planes of vorticity
magnitude, run every 5th step) is expressible directly.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.analysis.slice_ import SlicePlane, extract_axis_slice, _inplane_axes
from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association, ImageData
from repro.mpi import MAX, MIN
from repro.render import blank_image, composite_over, rasterize_slice, splat_points
from repro.render.colormap import COOL_WARM, GRAY, VIRIDIS, Colormap
from repro.render.compositing import direct_send
from repro.render.isosurface import isosurface_points
from repro.render.png import encode_png
from repro.util.config import ConfigError, Configuration
from repro.util.timers import timed

_COLORMAPS: dict[str, Colormap] = {
    "viridis": VIRIDIS,
    "cool_warm": COOL_WARM,
    "gray": GRAY,
}


def write_session_file(path, plots: list[dict], resolution=(1600, 1600)) -> None:
    """Write a Libsim-style session file describing the visualization."""
    session = {"version": 1, "resolution": list(resolution), "plots": plots}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(session, fh, indent=2)


@register_analysis("libsim")
def _make_libsim(config) -> "LibsimAdaptor":
    session = config.get("session_file")
    if session is None:
        raise ConfigError("libsim analysis requires 'session_file'")
    return LibsimAdaptor(
        session_file=session,
        array=config.get("array", "data"),
        output_dir=config.get("output_dir"),
        frequency=config.get_int("frequency", 1),
    )


class LibsimAdaptor(AnalysisAdaptor):
    """Session-driven visualization: slices + isosurfaces, direct-send
    compositing, PNG on rank 0.

    ``frequency`` renders every Nth SENSEI invocation (AVF-LESLIE runs
    Libsim "every 5 time steps"), so 4/5 executes cost almost nothing and
    1/5 cost the full pipeline -- Fig. 16's sawtooth.
    """

    #: Static library footprint charged per rank (VisIt + OSMesa order).
    STATIC_BYTES = 120 * 1024 * 1024

    def __init__(
        self,
        session_file,
        array: str = "data",
        output_dir: str | None = None,
        frequency: int = 1,
    ) -> None:
        super().__init__()
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.session_file = session_file
        self.array = array
        self.output_dir = output_dir
        self.frequency = frequency
        self._comm = None
        self._session: Configuration | None = None
        self._plots: list[dict] = []
        self.resolution = (1600, 1600)
        self.images_written = 0
        self.last_png: bytes | None = None

    def initialize(self, comm) -> None:
        self._comm = comm
        # Per-rank session parse: every rank opens and parses the file.
        with timed(self.timers, "libsim::session_parse"):
            self._session = Configuration.from_file(self.session_file)
            self._plots = self._session.get_list("plots")
            res = self._session.get_list("resolution", [1600, 1600])
            self.resolution = (int(res[0]), int(res[1]))
        for plot in self._plots:
            if plot.get("type") not in ("pseudocolor_slice", "isosurface"):
                raise ConfigError(f"unknown Libsim plot type {plot.get('type')!r}")
        if self.memory is not None:
            self.memory.add_static(self.STATIC_BYTES, label="libsim::library")
        if self.output_dir and comm.rank == 0:
            os.makedirs(self.output_dir, exist_ok=True)

    # -- plot renderers ------------------------------------------------------
    def _render_slice_plot(self, plot: dict, mesh: ImageData, data: DataAdaptor):
        plane = SlicePlane(int(plot.get("axis", 2)), int(plot.get("index", 0)))
        width, height = self.resolution
        ext = mesh.extent
        lo = (ext.i0, ext.j0, ext.k0)[plane.axis]
        hi = (ext.i1, ext.j1, ext.k1)[plane.axis]
        frag = None
        if lo <= plane.index <= hi:
            if not mesh.has_array(Association.POINT, self.array):
                mesh.add_array(
                    Association.POINT, data.get_array(Association.POINT, self.array)
                )
            frag = extract_axis_slice(mesh, self.array, plane)
        local_min = float(frag.values.min()) if frag is not None else float("inf")
        local_max = float(frag.values.max()) if frag is not None else float("-inf")
        vmin = self._comm.allreduce(local_min, MIN)
        vmax = self._comm.allreduce(local_max, MAX)
        cmap = _COLORMAPS.get(plot.get("colormap", "viridis"), VIRIDIS)
        if frag is None:
            return blank_image(width, height)
        u, v = _inplane_axes(plane.axis)
        whole = mesh.whole_extent
        wb = [(whole.i0, whole.i1), (whole.j0, whole.j1), (whole.k0, whole.k1)]
        return rasterize_slice(
            frag.values, frag.extent2d, (*wb[u], *wb[v]), width, height,
            colormap=cmap, vmin=vmin, vmax=vmax,
        )

    def _render_isosurface_plot(self, plot: dict, mesh: ImageData, data: DataAdaptor):
        width, height = self.resolution
        if not mesh.has_array(Association.POINT, self.array):
            mesh.add_array(
                Association.POINT, data.get_array(Association.POINT, self.array)
            )
        field = mesh.point_field_3d(self.array)
        origin = (
            mesh.origin[0] + mesh.spacing[0] * mesh.extent.i0,
            mesh.origin[1] + mesh.spacing[1] * mesh.extent.j0,
            mesh.origin[2] + mesh.spacing[2] * mesh.extent.k0,
        )
        cmap = _COLORMAPS.get(plot.get("colormap", "viridis"), VIRIDIS)
        isovalues = [float(v) for v in plot.get("isovalues", [0.5])]
        partial = blank_image(width, height, with_depth=True)
        whole = mesh.whole_extent
        x0 = mesh.origin[0] + mesh.spacing[0] * whole.i0
        x1 = mesh.origin[0] + mesh.spacing[0] * whole.i1
        y0 = mesh.origin[1] + mesh.spacing[1] * whole.j0
        y1 = mesh.origin[1] + mesh.spacing[1] * whole.j1
        lo, hi = min(isovalues), max(isovalues)
        span = (hi - lo) or 1.0
        for iso in isovalues:
            pts = isosurface_points(field, iso, origin=origin, spacing=mesh.spacing)
            if pts.shape[0] == 0:
                continue
            # Orthographic view down +z: screen = (x, y), depth = z.
            t = (iso - lo) / span
            color = cmap.map(np.full(pts.shape[0], t), vmin=0.0, vmax=1.0)
            layer = splat_points(
                pts[:, :2], pts[:, 2].astype(np.float32), color,
                width, height, (x0, x1, y0, y1), radius=1,
            )
            partial = composite_over(layer, partial)
        return partial

    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        with timed(self.timers, "libsim::execute"):
            if step % self.frequency != 0:
                return True
            mesh = data.get_mesh(structure_only=True)
            if not isinstance(mesh, ImageData):
                raise TypeError("Libsim emulation requires an ImageData mesh")
            with timed(self.timers, "libsim::render"):
                flat_partial = blank_image(*self.resolution)
                depth_partial = blank_image(*self.resolution, with_depth=True)
                have_depth = False
                for plot in self._plots:
                    if plot["type"] == "pseudocolor_slice":
                        img = self._render_slice_plot(plot, mesh, data)
                        flat_partial = composite_over(flat_partial, img)
                    else:
                        img = self._render_isosurface_plot(plot, mesh, data)
                        depth_partial = composite_over(img, depth_partial)
                        have_depth = True
            if self.memory is not None:
                # Framebuffers live for the render+composite span; charge
                # them into the high-water mark then release, mirroring the
                # Catalyst adaptor's accounting.
                fb = flat_partial.nbytes + (depth_partial.nbytes if have_depth else 0)
                self.memory.allocate(fb, label="libsim::framebuffer")
                self.memory.free(fb, label="libsim::framebuffer")
            with timed(self.timers, "libsim::composite"):
                flat_final = direct_send(self._comm, flat_partial)
                depth_final = (
                    direct_send(self._comm, depth_partial) if have_depth else None
                )
            if self._comm.rank == 0:
                final = flat_final
                if depth_final is not None:
                    nd = blank_image(*self.resolution)
                    nd.rgb[:] = depth_final.rgb
                    nd.alpha[:] = depth_final.alpha
                    final = composite_over(nd, final)
                with timed(self.timers, "libsim::save"):
                    blob = encode_png(final.rgb)
                self.last_png = blob
                rec = self.timers.trace if self.timers is not None else None
                if rec is not None:
                    rec.count("libsim::png_bytes", len(blob))
                if self.output_dir:
                    path = os.path.join(self.output_dir, f"libsim_{step:06d}.png")
                    with open(path, "wb") as fh:
                        fh.write(blob)
                self.images_written += 1
        return True

    def finalize(self) -> dict | None:
        if self._comm is not None and self._comm.rank == 0:
            return {"images_written": self.images_written}
        return None
