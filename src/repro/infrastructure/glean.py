"""GLEAN emulation: topology-aware aggregation + accelerated I/O.

GLEAN "takes application, analysis, and system characteristics into account
to facilitate simulation-time data analysis and I/O acceleration ...
providing a flexible interface to the fastest path for their data" with
"zero or minimal modifications to the existing application code base"
(Sec. 2.2.3).  The emulation implements GLEAN's signature mechanism:
many-to-few *aggregation* -- compute ranks forward their blocks to a small
set of aggregator ranks (one per simulated "node"), which write few large
files instead of many small ones, optionally on a background thread so the
simulation continues (asynchronous staging).
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association, ImageData
from repro.util.decomp import Extent
from repro.util.timers import timed


@register_analysis("glean")
def _make_glean(config) -> "GleanAdaptor":
    return GleanAdaptor(
        output_dir=config.require("output_dir"),
        array=config.get("array", "data"),
        ranks_per_aggregator=config.get_int("ranks_per_aggregator", 4),
        asynchronous=config.get_bool("asynchronous", False),
    )


class GleanAdaptor(AnalysisAdaptor):
    """Aggregated (many-to-few) staging writer.

    Every ``ranks_per_aggregator`` consecutive ranks share one aggregator
    (the lowest rank of the group, standing in for "one rank per node"
    topology awareness).  Compute ranks send their block to the aggregator;
    the aggregator appends all blocks to one file per step.  With
    ``asynchronous=True`` the aggregator's file write happens on a drain
    thread, so ``execute`` returns as soon as the data is staged --
    GLEAN's I/O acceleration mode.
    """

    def __init__(
        self,
        output_dir,
        array: str = "data",
        ranks_per_aggregator: int = 4,
        asynchronous: bool = False,
    ) -> None:
        super().__init__()
        if ranks_per_aggregator <= 0:
            raise ValueError("ranks_per_aggregator must be positive")
        self.output_dir = str(output_dir)
        self.array = array
        self.ranks_per_aggregator = ranks_per_aggregator
        self.asynchronous = asynchronous
        self._comm = None
        self._is_aggregator = False
        self._group: list[int] = []
        self._drain: threading.Thread | None = None
        self.steps_staged = 0

    def initialize(self, comm) -> None:
        self._comm = comm
        base = (comm.rank // self.ranks_per_aggregator) * self.ranks_per_aggregator
        self._is_aggregator = comm.rank == base
        self._group = [
            r
            for r in range(base, min(base + self.ranks_per_aggregator, comm.size))
        ]
        if comm.rank == 0:
            os.makedirs(self.output_dir, exist_ok=True)
        comm.barrier()

    @property
    def aggregator_rank(self) -> int:
        return self._group[0]

    def _write_aggregate(self, step: int, blocks: list[tuple[int, Extent, np.ndarray]]):
        path = os.path.join(
            self.output_dir, f"glean_step{step:06d}_agg{self.aggregator_rank:06d}.dat"
        )
        index = []
        with open(path, "wb") as fh:
            offset = 0
            payloads = []
            for rank, extent, data in blocks:
                raw = data.tobytes()
                index.append(
                    {
                        "rank": rank,
                        "extent": [extent.i0, extent.i1, extent.j0, extent.j1, extent.k0, extent.k1],
                        "dtype": str(data.dtype),
                        "offset": offset,
                        "nbytes": len(raw),
                    }
                )
                payloads.append(raw)
                offset += len(raw)
            header = json.dumps(index).encode()
            fh.write(len(header).to_bytes(8, "little"))
            fh.write(header)
            for raw in payloads:
                fh.write(raw)

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("GleanAdaptor requires an ImageData mesh")
        arr = data.get_array(Association.POINT, self.array)
        step = data.get_data_time_step()
        block = arr.values.reshape(mesh.dims)
        with timed(self.timers, "glean::stage"):
            if not self._is_aggregator:
                self._comm.send(
                    (self._comm.rank, mesh.extent, block), dest=self.aggregator_rank,
                    tag=2000 + step % 100,
                )
            else:
                blocks = [(self._comm.rank, mesh.extent, block.copy())]
                for _ in self._group[1:]:
                    blocks.append(
                        self._comm.recv(tag=2000 + step % 100)
                    )
                blocks.sort(key=lambda b: b[0])
                rec = self.timers.trace if self.timers is not None else None
                if rec is not None:
                    rec.count(
                        "glean::bytes_staged", sum(b[2].nbytes for b in blocks)
                    )
                if self.memory is not None:
                    # The aggregator holds every group member's block until
                    # the file write drains; charge the staging footprint
                    # into the high-water mark then release (Fig. 4 idiom).
                    staged = sum(b[2].nbytes for b in blocks)
                    self.memory.allocate(staged, label="glean::staged")
                    self.memory.free(staged, label="glean::staged")
                if self.asynchronous:
                    # Wait out any previous drain, then write in background.
                    if self._drain is not None:
                        with timed(self.timers, "glean::drain_wait"):
                            self._drain.join()
                    self._drain = threading.Thread(
                        target=self._write_aggregate, args=(step, blocks)
                    )
                    self._drain.start()
                else:
                    with timed(self.timers, "glean::write"):
                        self._write_aggregate(step, blocks)
        self.steps_staged += 1
        return True

    def finalize(self):
        if self._drain is not None:
            self._drain.join()
            self._drain = None
        return {"steps_staged": self.steps_staged, "aggregator": self._is_aggregator}


def read_glean_step(output_dir, step: int) -> dict[int, tuple[Extent, np.ndarray]]:
    """Read back every aggregator file of a step; keyed by source rank."""
    out: dict[int, tuple[Extent, np.ndarray]] = {}
    prefix = f"glean_step{step:06d}_agg"
    for name in sorted(os.listdir(output_dir)):
        if not name.startswith(prefix):
            continue
        path = os.path.join(output_dir, name)
        with open(path, "rb") as fh:
            hlen = int.from_bytes(fh.read(8), "little")
            index = json.loads(fh.read(hlen).decode())
            base = 8 + hlen
            for rec in index:
                fh.seek(base + rec["offset"])
                raw = fh.read(rec["nbytes"])
                extent = Extent(*rec["extent"])
                data = np.frombuffer(raw, dtype=np.dtype(rec["dtype"])).reshape(
                    extent.shape
                )
                out[rec["rank"]] = (extent, data)
    return out
