"""ADIOS emulation: BP-file output and the FlexPath staging transport.

"Unlike the other methods discussed so far, the ADIOS FlexPath approach
leads to having two different executables ... the writer/simulation, and
... the endpoint/analysis" (Sec. 4.1.4).  Here the two executables are two
groups of ranks inside one SPMD job (:func:`run_flexpath_job` splits the
world), matching the paper's co-scheduled deployment where the endpoint
shares the writer's nodes.

Writer-side timing mirrors Fig. 8: ``adios::advance`` covers the metadata
update between writer and reader; ``adios::analysis`` covers data
transmission *plus any blocking time if the reader is not yet ready* (flow
control is an explicit ready-token handshake).  "The current FlexPath
transport does not yet use zero-copy", so the writer stages an explicit
copy of every array it ships -- a measured cost, and the reason the in
transit Catalyst-slice carries the ~50% penalty the paper reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.data import Association, DataArray, ImageData, MultiBlockDataset
from repro.mpi import MIN, Communicator, MPIError, run_spmd
from repro.storage.bp import BPWriter
from repro.util.decomp import Extent
from repro.util.timers import TimerRegistry, timed

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import CircuitBreaker, FaultInjector, FaultPlan
    from repro.trace import TraceSession

# Message tags of the staging protocol.
_TAG_ADVANCE = 1001  # writer -> endpoint: step metadata
_TAG_READY = 1002  # endpoint -> writer: flow-control token
_TAG_DATA = 1003  # writer -> endpoint: array payload
_TAG_EOS = 1004  # writer -> endpoint: end of stream
_TAG_SKIP = 1005  # writer -> endpoint: degraded step, no data this round


def endpoint_for_writer(writer: int, n_writers: int, n_endpoints: int) -> int:
    """Static writer->endpoint assignment (contiguous blocks)."""
    if not 0 <= writer < n_writers:
        raise ValueError("writer rank out of range")
    return writer * n_endpoints // n_writers


def writers_for_endpoint(endpoint: int, n_writers: int, n_endpoints: int) -> list[int]:
    return [
        w
        for w in range(n_writers)
        if endpoint_for_writer(w, n_writers, n_endpoints) == endpoint
    ]


class AdiosBPAdaptor(AnalysisAdaptor):
    """File-mode ADIOS: every execute writes the step into a BP container.

    ``retry`` (a :class:`~repro.faults.RetryPolicy`) retries each rank's
    block write under exponential backoff with full jitter; only the write
    itself is retried (it is idempotent -- see
    :meth:`~repro.storage.bp.BPWriter._consult_injector`), never the
    collective ``begin_step``/``end_step`` boundaries.
    """

    def __init__(self, path, array: str = "data", retry=None) -> None:
        super().__init__()
        self.path = path
        self.array = array
        self.retry = retry
        self._writer: BPWriter | None = None
        self._comm = None
        self.steps_written = 0

    def initialize(self, comm) -> None:
        self._comm = comm

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("AdiosBPAdaptor requires an ImageData mesh")
        if self._writer is None:
            w = mesh.whole_extent
            self._writer = BPWriter(
                self._comm, self.path, (w.shape[0], w.shape[1], w.shape[2])
            )
        arr = data.get_array(Association.POINT, self.array)
        block = arr.values.reshape(mesh.dims)
        with timed(self.timers, "adios::write"):
            self._writer.begin_step()
            if self.retry is not None:
                from repro.faults.policies import retry_call

                retry_call(
                    lambda: self._writer.write(self.array, block, mesh.extent),
                    self.retry,
                    key=f"bp:{self._comm.rank}:{self.steps_written}",
                    trace=self.timers.trace if self.timers is not None else None,
                )
            else:
                self._writer.write(self.array, block, mesh.extent)
            self._writer.end_step()
        self.steps_written += 1
        return True

    def finalize(self):
        if self._writer is not None:
            self._writer.close()
        return {"steps_written": self.steps_written}


class StagingResilience:
    """Config + accounting for a resilient staging writer group.

    One instance per writer rank (they cannot share mutable state across
    simulated address spaces), all built with identical parameters so the
    collective degrade decisions stay uniform.  ``fallback`` is an optional
    in-line analysis adaptor executed on the *writer* group whenever the
    in-transit path is degraded -- the paper's in-line Catalyst
    configuration standing in for the lost endpoint.  With no fallback,
    degraded steps are skipped but still accounted.

    ``controller`` optionally replaces the circuit breaker as the
    attempt/skip policy: an online autotuning
    :class:`~repro.control.Controller` whose ``wants_in_transit()`` gates
    each step's staging attempt (its seeded probes standing in for the
    breaker's HALF_OPEN probes) and which observes every step's consensus
    outcome.  Its decisions run their own writer-group consensus, so the
    one-degrades-all invariant is preserved either way.
    """

    def __init__(
        self,
        group: Communicator,
        ready_timeout: float = 0.25,
        breaker: "CircuitBreaker | None" = None,
        fallback: AnalysisAdaptor | None = None,
        controller=None,
    ) -> None:
        if ready_timeout <= 0:
            raise ValueError("ready_timeout must be positive")
        self.group = group
        self.ready_timeout = ready_timeout
        if breaker is None:
            from repro.faults import CircuitBreaker as _Breaker

            breaker = _Breaker()
        self.breaker = breaker
        self.fallback = fallback
        self.controller = controller
        self._fallback_ready = False
        self.staged_steps = 0
        self.degraded_steps = 0
        self.skipped_steps = 0


class AdiosFlexPathWriter(AnalysisAdaptor):
    """Writer-side FlexPath adaptor: ships each step to its endpoint rank.

    ``world`` is the communicator spanning writers + endpoints; ``execute``
    runs on the writer group.  One endpoint world-rank is assigned per
    writer by :func:`endpoint_for_writer`.

    With ``resilience`` set (requires ``group``, the writer-group
    communicator), the per-step protocol changes from optimistic
    (ADVANCE, then block on READY, then DATA) to guarded: the writer first
    waits for the endpoint's READY token under a short timeout, the writer
    group reaches consensus on the outcome (an ``allreduce(MIN)``, so one
    straggling or disconnected endpoint degrades *every* writer in the same
    step and collective analyses stay aligned), and only then ships the
    step.  Degraded steps run the in-line ``fallback`` analysis -- or are
    skipped with accounting -- and a circuit breaker stops paying the READY
    timeout once the endpoint is presumed dead, probing periodically for
    recovery.  A degraded round sends a SKIP marker so a still-live
    endpoint's receive loop stays in phase.
    """

    def __init__(
        self,
        world: Communicator,
        writer_rank: int,
        n_writers: int,
        n_endpoints: int,
        array: str = "data",
        group: Communicator | None = None,
        resilience: StagingResilience | None = None,
    ) -> None:
        super().__init__()
        if resilience is not None and group is None:
            raise ValueError("resilience mode requires the writer-group communicator")
        self.world = world
        self.writer_rank = writer_rank
        self.n_writers = n_writers
        self.n_endpoints = n_endpoints
        self.array = array
        self.group = group
        self.resilience = resilience
        # Endpoint world ranks sit after the writers.
        self.endpoint_world_rank = n_writers + endpoint_for_writer(
            writer_rank, n_writers, n_endpoints
        )
        self.steps_sent = 0

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("FlexPath writer requires an ImageData mesh")
        if self.resilience is not None:
            return self._execute_resilient(data, mesh)
        arr = data.get_array(Association.POINT, self.array)
        with timed(self.timers, "adios::advance"):
            self.world.send(
                self._step_meta(data, mesh),
                dest=self.endpoint_world_rank,
                tag=_TAG_ADVANCE,
            )
        with timed(self.timers, "adios::analysis"):
            # Flow control: block until the endpoint is ready for this step.
            self.world.recv(source=self.endpoint_world_rank, tag=_TAG_READY)
            self._ship(arr, mesh)
        self.steps_sent += 1
        return True

    def _step_meta(self, data: DataAdaptor, mesh: ImageData) -> dict:
        return {
            "writer": self.writer_rank,
            "step": data.get_data_time_step(),
            "time": data.get_data_time(),
            "extent": mesh.extent,
            "whole_extent": mesh.whole_extent,
            "array": self.array,
        }

    def _ship(self, arr: DataArray, mesh: ImageData) -> None:
        # FlexPath is not zero-copy: stage an explicit buffer copy.
        staged = np.array(arr.values.reshape(mesh.dims), copy=True)
        rec = self.timers.trace if self.timers is not None else None
        if rec is not None:
            rec.count("adios::bytes_copied", staged.nbytes)
        if self.memory is not None:
            self.memory.allocate(staged.nbytes, label="adios::staging")
        self.world.send(staged, dest=self.endpoint_world_rank, tag=_TAG_DATA)
        if self.memory is not None:
            self.memory.free(staged.nbytes, label="adios::staging")

    def _execute_resilient(self, data: DataAdaptor, mesh: ImageData) -> bool:
        res = self.resilience
        rec = self.timers.trace if self.timers is not None else None
        # The attempt gate is consulted exactly once per step on every
        # writer; breaker state is a pure function of the (uniform)
        # consensus history, and controller placement is adopted under
        # group consensus, so the answer is identical on every rank.
        if res.controller is not None:
            ok = 1 if res.controller.wants_in_transit() else 0
        else:
            ok = 1 if res.breaker.allow() else 0
        inj = getattr(self.world, "fault_injector", None)
        if ok and inj is not None:
            # Writer-side bounded staging queue: an overflow refuses the
            # step locally; consensus below degrades the whole group.
            action = inj.draw(
                "staging.queue",
                self.world._draw_rank(),
                step=data.get_data_time_step(),
                trace=rec,
            )
            if action is not None and action.kind == "queue_full":
                ok = 0
        if ok:
            try:
                with timed(self.timers, "adios::ready_wait"):
                    self.world.recv(
                        source=self.endpoint_world_rank,
                        tag=_TAG_READY,
                        timeout=res.ready_timeout,
                    )
            except MPIError:
                ok = 0
        # Consensus: one degraded writer degrades all, keeping the fallback
        # analysis' collectives aligned across the writer group.  (A writer
        # whose READY arrived anyway keeps the token for the next attempt.)
        consensus = res.group.allreduce(ok, MIN)
        if consensus:
            res.breaker.record_success()
            with timed(self.timers, "adios::advance"):
                self.world.send(
                    self._step_meta(data, mesh),
                    dest=self.endpoint_world_rank,
                    tag=_TAG_ADVANCE,
                )
            with timed(self.timers, "adios::analysis"):
                self._ship(data.get_array(Association.POINT, self.array), mesh)
            res.staged_steps += 1
            self.steps_sent += 1
        else:
            res.breaker.record_failure()
            # Keep a still-live endpoint's receive loop in phase.
            self.world.send(None, dest=self.endpoint_world_rank, tag=_TAG_SKIP)
            if res.fallback is not None:
                if not res._fallback_ready:
                    res.fallback.set_instrumentation(self.timers, self.memory)
                    res.fallback.initialize(res.group)
                    res._fallback_ready = True
                with timed(self.timers, "adios::fallback_analysis"):
                    res.fallback.execute(data)
                res.degraded_steps += 1
                if rec is not None:
                    rec.count("resilience::degraded_steps", 1)
            else:
                res.skipped_steps += 1
                if rec is not None:
                    rec.count("resilience::skipped_steps", 1)
        if res.controller is not None:
            # The verify/act leg: the controller sees the group's outcome
            # (its own consensus keeps every writer's journal identical)
            # and may re-plan the configuration for the next step.
            res.controller.observe_outcome(
                data.get_data_time_step(), staged=bool(consensus)
            )
        return True

    def finalize(self):
        self.world.send(None, dest=self.endpoint_world_rank, tag=_TAG_EOS)
        out = {"steps_sent": self.steps_sent}
        res = self.resilience
        if res is not None:
            fallback_result = (
                res.fallback.finalize() if res._fallback_ready else None
            )
            out.update(
                {
                    "staged_steps": res.staged_steps,
                    "degraded_steps": res.degraded_steps,
                    "skipped_steps": res.skipped_steps,
                    "breaker": res.breaker.snapshot(),
                    "fallback_result": fallback_result,
                }
            )
            if res.controller is not None:
                out["controller"] = {
                    "final_config": res.controller.config.as_dict(),
                    "journal": res.controller.journal.to_dict(),
                }
        return out


class EndpointDataAdaptor(DataAdaptor):
    """The endpoint's SENSEI data adaptor over received blocks.

    ``get_mesh`` exposes a :class:`MultiBlockDataset` (one block per
    *global* writer; local blocks are the ones this endpoint received) and
    ``get_array`` a concatenation of the local blocks' values in writer
    order -- sufficient for histogram/autocorrelation, while Catalyst
    consumes the per-block arrays through the multiblock mesh.
    """

    def __init__(self, comm, n_writers: int) -> None:
        super().__init__(comm)
        self.n_writers = n_writers
        self._blocks: dict[int, tuple[ImageData, np.ndarray, str]] = {}

    def ingest(
        self,
        writer: int,
        extent: Extent,
        whole_extent: Extent,
        array_name: str,
        values: np.ndarray,
    ) -> None:
        img = ImageData(extent, whole_extent=whole_extent)
        img.add_point_array(DataArray.from_numpy(array_name, values))
        self._blocks[writer] = (img, values, array_name)

    def get_mesh(self, structure_only: bool = False) -> MultiBlockDataset:
        mb = MultiBlockDataset(self.n_writers)
        for writer, (img, _, _) in self._blocks.items():
            mb.set_block(writer, img)
        return mb

    def get_array(self, association: Association, name: str) -> DataArray:
        if association is not Association.POINT:
            raise KeyError("endpoint adaptor exposes point data only")
        values = [
            v.reshape(-1)
            for w, (_, v, n) in sorted(self._blocks.items())
            if n == name
        ]
        if not values:
            raise KeyError(f"no received array named {name!r}")
        return DataArray.from_numpy(name, np.concatenate(values))

    def get_number_of_arrays(self, association: Association) -> int:
        if association is not Association.POINT:
            return 0
        return len({n for (_, _, n) in self._blocks.values()})

    def get_array_name(self, association: Association, index: int) -> str:
        names = sorted({n for (_, _, n) in self._blocks.values()})
        return names[index]

    def release_data(self) -> None:
        self._blocks.clear()


@dataclass
class FlexPathJobResult:
    """Per-rank results of a staged job: writer returns + endpoint returns."""

    writer_results: list[Any]
    endpoint_results: list[Any]


def run_endpoint(
    world: Communicator,
    endpoint_comm: Communicator,
    endpoint_rank: int,
    n_writers: int,
    n_endpoints: int,
    analysis: AnalysisAdaptor,
    timers: TimerRegistry | None = None,
    sanitize: bool = False,
) -> Any:
    """The endpoint executable's main loop.

    Receives steps from the assigned writers until every one signals EOS,
    driving ``analysis`` once per completed step.  The reader initialization
    (Fig. 9's expensive phase on Cori) is the analysis initialize plus the
    first-contact handshakes.  With ``sanitize=True`` the analysis sees the
    received blocks through a :class:`~repro.sanitize.GuardedDataAdaptor`,
    so the zero-copy write/retention contract is enforced on the endpoint
    side of the staging transport too.
    """
    timers = timers if timers is not None else TimerRegistry()
    if timers.trace is None:
        # Endpoint ranks trace too when the job runs under a TraceSession.
        timers.attach_trace(getattr(world, "trace_recorder", None))
    my_writers = writers_for_endpoint(endpoint_rank, n_writers, n_endpoints)
    with timed(timers, "endpoint::initialize"):
        analysis.set_instrumentation(timers, analysis.memory)
        analysis.initialize(endpoint_comm)
    adaptor = EndpointDataAdaptor(endpoint_comm, n_writers)
    guard = None
    if sanitize:
        from repro.sanitize import GuardedDataAdaptor

        guard = GuardedDataAdaptor(adaptor)
    open_writers = set(my_writers)
    # Issue one flow-control token per writer up front.
    for w in open_writers:
        world.send(None, dest=w, tag=_TAG_READY)
    inj = getattr(world, "fault_injector", None)
    loop_step = 0
    steps_analyzed = 0
    disconnected_at: int | None = None
    while open_writers:
        if inj is not None:
            # Reader-side fault site: a ``disconnect`` kills the endpoint
            # loop here, before this round's receives -- the writers' next
            # READY wait times out and the job degrades to in-line
            # analysis.  ``stale_step`` delays the reader, serving the
            # round late.
            action = inj.draw(
                "staging.endpoint", endpoint_rank, step=loop_step,
                trace=timers.trace,
            )
            if action is not None:
                if action.kind == "disconnect":
                    disconnected_at = loop_step
                    break
                if action.kind == "stale_step":
                    time.sleep(float(action.params.get("seconds", 0.002)))
        step_time = 0.0
        step_idx = 0
        with timed(timers, "endpoint::receive"):
            got_any = False
            for w in sorted(open_writers):
                payload, src, tag = world.recv_with_status(source=w)
                if tag == _TAG_EOS:
                    open_writers.discard(w)
                    continue
                if tag == _TAG_SKIP:
                    # The writer group degraded this round; nothing to
                    # ingest from anyone (the decision is collective).
                    continue
                assert tag == _TAG_ADVANCE, f"protocol violation: tag {tag}"
                meta = payload
                data = world.recv(source=w, tag=_TAG_DATA)
                adaptor.ingest(
                    meta["writer"], meta["extent"], meta["whole_extent"],
                    meta["array"], data,
                )
                step_time = meta["time"]
                step_idx = meta["step"]
                got_any = True
        if got_any:
            adaptor.set_data_time(step_time, step_idx)
            if guard is not None:
                guard.set_data_time(step_time, step_idx)
                guard.begin_analysis(analysis)
                with timed(timers, "endpoint::analysis"):
                    analysis.execute(guard)
                guard.verify_analysis(analysis)
                guard.release_and_check()
            else:
                with timed(timers, "endpoint::analysis"):
                    analysis.execute(adaptor)
                adaptor.release_data()
            steps_analyzed += 1
        # Release the next flow-control token to writers still streaming.
        # (An all-SKIP round still re-issues tokens: the endpoint remains
        # ready, and a recovering writer group finds a token waiting.)
        for w in sorted(open_writers):
            world.send(None, dest=w, tag=_TAG_READY)
        loop_step += 1
    with timed(timers, "endpoint::finalize"):
        result = analysis.finalize()
    return {
        "result": result,
        "timers": timers.as_dict(),
        "steps_analyzed": steps_analyzed,
        "disconnected_at_step": disconnected_at,
    }


def run_flexpath_job(
    n_writers: int,
    n_endpoints: int,
    writer_program: Callable[[Communicator, AdiosFlexPathWriter], Any],
    analysis_factory: Callable[[Communicator], AnalysisAdaptor],
    array: str = "data",
    timeout: float = 120.0,
    sanitize: bool = False,
    faults: "FaultPlan | FaultInjector | None" = None,
    resilience_factory: Callable[[Communicator], StagingResilience] | None = None,
    trace: "TraceSession | None" = None,
    backend: "str | None" = None,
) -> FlexPathJobResult:
    """Run a complete staged job: writers + endpoint in one SPMD world.

    ``writer_program(sim_comm, writer_adaptor)`` must drive the simulation
    and a bridge containing ``writer_adaptor`` (and call the bridge's
    finalize, which sends EOS).  ``analysis_factory(endpoint_comm)`` builds
    the analysis the endpoint hosts.  ``sanitize`` enables the zero-copy
    write/retention guard around the endpoint's analysis (see
    :func:`run_endpoint`).

    ``faults`` threads a :class:`~repro.faults.FaultPlan` through the whole
    job (fabric, storage, staging sites).  ``backend`` selects the SPMD
    execution backend ("thread"/"process", see ``run_spmd``); the staged
    data path (per-rank BP subfiles, pipe/shared-memory fabric) is
    backend-agnostic.  ``resilience_factory(group)``
    builds each writer rank's :class:`StagingResilience`; it requires
    ``n_endpoints == 1`` -- with several endpoints a *partial* endpoint
    death would leave surviving endpoints blocked on writers that degraded,
    and the group-wide degrade consensus would be wrong for writers whose
    endpoint is fine.
    """
    if n_writers <= 0 or n_endpoints <= 0:
        raise ValueError("writer and endpoint counts must be positive")
    if n_endpoints > n_writers:
        # An endpoint with no writers would never execute its (collective)
        # analysis while its peers do, deadlocking the endpoint group.
        raise ValueError("n_endpoints must not exceed n_writers")
    if resilience_factory is not None and n_endpoints != 1:
        raise ValueError("staging resilience requires exactly one endpoint")

    total = n_writers + n_endpoints

    def job(world: Communicator):
        is_writer = world.rank < n_writers
        group = world.split(color=0 if is_writer else 1)
        if is_writer:
            writer = AdiosFlexPathWriter(
                world,
                group.rank,
                n_writers,
                n_endpoints,
                array=array,
                group=group,
                resilience=(
                    resilience_factory(group)
                    if resilience_factory is not None
                    else None
                ),
            )
            return ("writer", writer_program(group, writer))
        endpoint_rank = world.rank - n_writers
        analysis = analysis_factory(group)
        return (
            "endpoint",
            run_endpoint(
                world,
                group,
                endpoint_rank,
                n_writers,
                n_endpoints,
                analysis,
                sanitize=sanitize,
            ),
        )

    results = run_spmd(
        total, job, timeout=timeout, faults=faults, trace=trace, backend=backend
    )
    return FlexPathJobResult(
        writer_results=[r for kind, r in results if kind == "writer"],
        endpoint_results=[r for kind, r in results if kind == "endpoint"],
    )
