"""ADIOS emulation: BP-file output and the FlexPath staging transport.

"Unlike the other methods discussed so far, the ADIOS FlexPath approach
leads to having two different executables ... the writer/simulation, and
... the endpoint/analysis" (Sec. 4.1.4).  Here the two executables are two
groups of ranks inside one SPMD job (:func:`run_flexpath_job` splits the
world), matching the paper's co-scheduled deployment where the endpoint
shares the writer's nodes.

Writer-side timing mirrors Fig. 8: ``adios::advance`` covers the metadata
update between writer and reader; ``adios::analysis`` covers data
transmission *plus any blocking time if the reader is not yet ready* (flow
control is an explicit ready-token handshake).  "The current FlexPath
transport does not yet use zero-copy", so the writer stages an explicit
copy of every array it ships -- a measured cost, and the reason the in
transit Catalyst-slice carries the ~50% penalty the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.data import Association, DataArray, ImageData, MultiBlockDataset
from repro.mpi import Communicator, run_spmd
from repro.storage.bp import BPWriter
from repro.util.decomp import Extent
from repro.util.timers import TimerRegistry, timed

# Message tags of the staging protocol.
_TAG_ADVANCE = 1001  # writer -> endpoint: step metadata
_TAG_READY = 1002  # endpoint -> writer: flow-control token
_TAG_DATA = 1003  # writer -> endpoint: array payload
_TAG_EOS = 1004  # writer -> endpoint: end of stream


def endpoint_for_writer(writer: int, n_writers: int, n_endpoints: int) -> int:
    """Static writer->endpoint assignment (contiguous blocks)."""
    if not 0 <= writer < n_writers:
        raise ValueError("writer rank out of range")
    return writer * n_endpoints // n_writers


def writers_for_endpoint(endpoint: int, n_writers: int, n_endpoints: int) -> list[int]:
    return [
        w
        for w in range(n_writers)
        if endpoint_for_writer(w, n_writers, n_endpoints) == endpoint
    ]


class AdiosBPAdaptor(AnalysisAdaptor):
    """File-mode ADIOS: every execute writes the step into a BP container."""

    def __init__(self, path, array: str = "data") -> None:
        super().__init__()
        self.path = path
        self.array = array
        self._writer: BPWriter | None = None
        self._comm = None
        self.steps_written = 0

    def initialize(self, comm) -> None:
        self._comm = comm

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("AdiosBPAdaptor requires an ImageData mesh")
        if self._writer is None:
            w = mesh.whole_extent
            self._writer = BPWriter(
                self._comm, self.path, (w.shape[0], w.shape[1], w.shape[2])
            )
        arr = data.get_array(Association.POINT, self.array)
        with timed(self.timers, "adios::write"):
            self._writer.begin_step()
            self._writer.write(self.array, arr.values.reshape(mesh.dims), mesh.extent)
            self._writer.end_step()
        self.steps_written += 1
        return True

    def finalize(self):
        if self._writer is not None:
            self._writer.close()
        return {"steps_written": self.steps_written}


class AdiosFlexPathWriter(AnalysisAdaptor):
    """Writer-side FlexPath adaptor: ships each step to its endpoint rank.

    ``world`` is the communicator spanning writers + endpoints; ``execute``
    runs on the writer group.  One endpoint world-rank is assigned per
    writer by :func:`endpoint_for_writer`.
    """

    def __init__(
        self,
        world: Communicator,
        writer_rank: int,
        n_writers: int,
        n_endpoints: int,
        array: str = "data",
    ) -> None:
        super().__init__()
        self.world = world
        self.writer_rank = writer_rank
        self.n_writers = n_writers
        self.n_endpoints = n_endpoints
        self.array = array
        # Endpoint world ranks sit after the writers.
        self.endpoint_world_rank = n_writers + endpoint_for_writer(
            writer_rank, n_writers, n_endpoints
        )
        self.steps_sent = 0

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("FlexPath writer requires an ImageData mesh")
        arr = data.get_array(Association.POINT, self.array)
        with timed(self.timers, "adios::advance"):
            meta = {
                "writer": self.writer_rank,
                "step": data.get_data_time_step(),
                "time": data.get_data_time(),
                "extent": mesh.extent,
                "whole_extent": mesh.whole_extent,
                "array": self.array,
            }
            self.world.send(meta, dest=self.endpoint_world_rank, tag=_TAG_ADVANCE)
        with timed(self.timers, "adios::analysis"):
            # Flow control: block until the endpoint is ready for this step.
            self.world.recv(source=self.endpoint_world_rank, tag=_TAG_READY)
            # FlexPath is not zero-copy: stage an explicit buffer copy.
            staged = np.array(arr.values.reshape(mesh.dims), copy=True)
            rec = self.timers.trace if self.timers is not None else None
            if rec is not None:
                rec.count("adios::bytes_copied", staged.nbytes)
            if self.memory is not None:
                self.memory.allocate(staged.nbytes, label="adios::staging")
            self.world.send(staged, dest=self.endpoint_world_rank, tag=_TAG_DATA)
            if self.memory is not None:
                self.memory.free(staged.nbytes, label="adios::staging")
        self.steps_sent += 1
        return True

    def finalize(self):
        self.world.send(None, dest=self.endpoint_world_rank, tag=_TAG_EOS)
        return {"steps_sent": self.steps_sent}


class EndpointDataAdaptor(DataAdaptor):
    """The endpoint's SENSEI data adaptor over received blocks.

    ``get_mesh`` exposes a :class:`MultiBlockDataset` (one block per
    *global* writer; local blocks are the ones this endpoint received) and
    ``get_array`` a concatenation of the local blocks' values in writer
    order -- sufficient for histogram/autocorrelation, while Catalyst
    consumes the per-block arrays through the multiblock mesh.
    """

    def __init__(self, comm, n_writers: int) -> None:
        super().__init__(comm)
        self.n_writers = n_writers
        self._blocks: dict[int, tuple[ImageData, np.ndarray, str]] = {}

    def ingest(
        self,
        writer: int,
        extent: Extent,
        whole_extent: Extent,
        array_name: str,
        values: np.ndarray,
    ) -> None:
        img = ImageData(extent, whole_extent=whole_extent)
        img.add_point_array(DataArray.from_numpy(array_name, values))
        self._blocks[writer] = (img, values, array_name)

    def get_mesh(self, structure_only: bool = False) -> MultiBlockDataset:
        mb = MultiBlockDataset(self.n_writers)
        for writer, (img, _, _) in self._blocks.items():
            mb.set_block(writer, img)
        return mb

    def get_array(self, association: Association, name: str) -> DataArray:
        if association is not Association.POINT:
            raise KeyError("endpoint adaptor exposes point data only")
        values = [
            v.reshape(-1)
            for w, (_, v, n) in sorted(self._blocks.items())
            if n == name
        ]
        if not values:
            raise KeyError(f"no received array named {name!r}")
        return DataArray.from_numpy(name, np.concatenate(values))

    def get_number_of_arrays(self, association: Association) -> int:
        if association is not Association.POINT:
            return 0
        return len({n for (_, _, n) in self._blocks.values()})

    def get_array_name(self, association: Association, index: int) -> str:
        names = sorted({n for (_, _, n) in self._blocks.values()})
        return names[index]

    def release_data(self) -> None:
        self._blocks.clear()


@dataclass
class FlexPathJobResult:
    """Per-rank results of a staged job: writer returns + endpoint returns."""

    writer_results: list[Any]
    endpoint_results: list[Any]


def run_endpoint(
    world: Communicator,
    endpoint_comm: Communicator,
    endpoint_rank: int,
    n_writers: int,
    n_endpoints: int,
    analysis: AnalysisAdaptor,
    timers: TimerRegistry | None = None,
    sanitize: bool = False,
) -> Any:
    """The endpoint executable's main loop.

    Receives steps from the assigned writers until every one signals EOS,
    driving ``analysis`` once per completed step.  The reader initialization
    (Fig. 9's expensive phase on Cori) is the analysis initialize plus the
    first-contact handshakes.  With ``sanitize=True`` the analysis sees the
    received blocks through a :class:`~repro.sanitize.GuardedDataAdaptor`,
    so the zero-copy write/retention contract is enforced on the endpoint
    side of the staging transport too.
    """
    timers = timers if timers is not None else TimerRegistry()
    if timers.trace is None:
        # Endpoint ranks trace too when the job runs under a TraceSession.
        timers.attach_trace(getattr(world, "trace_recorder", None))
    my_writers = writers_for_endpoint(endpoint_rank, n_writers, n_endpoints)
    with timed(timers, "endpoint::initialize"):
        analysis.set_instrumentation(timers, analysis.memory)
        analysis.initialize(endpoint_comm)
    adaptor = EndpointDataAdaptor(endpoint_comm, n_writers)
    guard = None
    if sanitize:
        from repro.sanitize import GuardedDataAdaptor

        guard = GuardedDataAdaptor(adaptor)
    open_writers = set(my_writers)
    # Issue one flow-control token per writer up front.
    for w in open_writers:
        world.send(None, dest=w, tag=_TAG_READY)
    while open_writers:
        step_time = 0.0
        step_idx = 0
        with timed(timers, "endpoint::receive"):
            got_any = False
            for w in sorted(open_writers):
                payload, src, tag = world.recv_with_status(source=w)
                if tag == _TAG_EOS:
                    open_writers.discard(w)
                    continue
                assert tag == _TAG_ADVANCE, f"protocol violation: tag {tag}"
                meta = payload
                data = world.recv(source=w, tag=_TAG_DATA)
                adaptor.ingest(
                    meta["writer"], meta["extent"], meta["whole_extent"],
                    meta["array"], data,
                )
                step_time = meta["time"]
                step_idx = meta["step"]
                got_any = True
        if not got_any:
            break
        adaptor.set_data_time(step_time, step_idx)
        if guard is not None:
            guard.set_data_time(step_time, step_idx)
            guard.begin_analysis(analysis)
            with timed(timers, "endpoint::analysis"):
                analysis.execute(guard)
            guard.verify_analysis(analysis)
            guard.release_and_check()
        else:
            with timed(timers, "endpoint::analysis"):
                analysis.execute(adaptor)
            adaptor.release_data()
        # Release the next flow-control token to writers still streaming.
        for w in sorted(open_writers):
            world.send(None, dest=w, tag=_TAG_READY)
    with timed(timers, "endpoint::finalize"):
        result = analysis.finalize()
    return {"result": result, "timers": timers.as_dict()}


def run_flexpath_job(
    n_writers: int,
    n_endpoints: int,
    writer_program: Callable[[Communicator, AdiosFlexPathWriter], Any],
    analysis_factory: Callable[[Communicator], AnalysisAdaptor],
    array: str = "data",
    timeout: float = 120.0,
    sanitize: bool = False,
) -> FlexPathJobResult:
    """Run a complete staged job: writers + endpoint in one SPMD world.

    ``writer_program(sim_comm, writer_adaptor)`` must drive the simulation
    and a bridge containing ``writer_adaptor`` (and call the bridge's
    finalize, which sends EOS).  ``analysis_factory(endpoint_comm)`` builds
    the analysis the endpoint hosts.  ``sanitize`` enables the zero-copy
    write/retention guard around the endpoint's analysis (see
    :func:`run_endpoint`).
    """
    if n_writers <= 0 or n_endpoints <= 0:
        raise ValueError("writer and endpoint counts must be positive")
    if n_endpoints > n_writers:
        # An endpoint with no writers would never execute its (collective)
        # analysis while its peers do, deadlocking the endpoint group.
        raise ValueError("n_endpoints must not exceed n_writers")

    total = n_writers + n_endpoints

    def job(world: Communicator):
        is_writer = world.rank < n_writers
        group = world.split(color=0 if is_writer else 1)
        if is_writer:
            writer = AdiosFlexPathWriter(
                world, group.rank, n_writers, n_endpoints, array=array
            )
            return ("writer", writer_program(group, writer))
        endpoint_rank = world.rank - n_writers
        analysis = analysis_factory(group)
        return (
            "endpoint",
            run_endpoint(
                world,
                group,
                endpoint_rank,
                n_writers,
                n_endpoints,
                analysis,
                sanitize=sanitize,
            ),
        )

    results = run_spmd(total, job, timeout=timeout)
    return FlexPathJobResult(
        writer_results=[r for kind, r in results if kind == "writer"],
        endpoint_results=[r for kind, r in results if kind == "endpoint"],
    )
