"""Repo-contract lint rules (moved to :mod:`repro.analyze.checkers.contracts`).

The five PR 2 rules now live in the analyzer's checker framework; this
module re-exports the public names (and the historically-importable
helpers) so existing imports keep working.  See
:mod:`repro.analyze.checkers.contracts` for the rule catalogue.
"""

from __future__ import annotations

from repro.analyze.checkers.contracts import (  # noqa: F401
    ALL_RULES,
    Rule,
    _COLLECTIVE_NAMES,
    _DECOUPLED_DIRS,
    _SIM_INTERNAL_PREFIXES,
    _is_collective_call,
    _is_memory_call,
    _memory_label,
    _mentions_rank,
    _receiver_name,
)

__all__ = ["Rule", "ALL_RULES"]
