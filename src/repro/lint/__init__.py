"""AST-based repo-contract linter: ``python -m repro.lint src/``.

Static counterpart of the runtime sanitizers.  Parses every Python file and
enforces the project invariants catalogued in :mod:`repro.lint.rules` --
contracts the paper's measurement methodology depends on but that Python
will not check for us.

Waivers: a violation is suppressed by a pragma comment on the flagged line
or the line directly above it::

    comm.gather(None, root=root)  # lint: allow(collective-in-rank-branch)

Exit status is 0 when the tree is clean, 1 when violations are reported,
2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "main",
]

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\(([a-z0-9_,\s-]+)\)")


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: [{self.rule_id}] {self.message}"


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/")


def _waivers(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids waived on that line (pragma comments)."""
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(text)
        if m:
            out[lineno] = frozenset(
                part.strip() for part in m.group(1).split(",") if part.strip()
            )
    return out


def _waived(waivers: dict[int, frozenset[str]], line: int, rule_id: str) -> bool:
    for probe in (line, line - 1):
        rules = waivers.get(probe)
        if rules and rule_id in rules:
            return True
    return False


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one module's source text; returns violations sorted by line."""
    norm = _normalize(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                norm,
                exc.lineno or 0,
                (exc.offset or 1) - 1,
                "syntax-error",
                f"cannot parse: {exc.msg}",
            )
        ]
    waivers = _waivers(source)
    found: list[Violation] = []
    for rule in ALL_RULES:
        if any(exempt in norm for exempt in rule.exempt_paths):
            continue
        for line, col, message in rule.check(tree, norm):
            if not _waived(waivers, line, rule.id):
                found.append(Violation(norm, line, col, rule.id, message))
    found.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return found


def lint_file(path: str) -> list[Violation]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def _iter_python_files(paths: Iterable[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def lint_paths(paths: Iterable[str]) -> list[Violation]:
    """Lint files and directory trees; returns all violations."""
    found: list[Violation] = []
    for path in _iter_python_files(paths):
        found.extend(lint_file(path))
    return found


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based repo-contract linter for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (default: src/)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}: {rule.description}")
        return 0

    paths = args.paths or ["src/"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    violations = lint_paths(paths)
    for v in violations:
        print(v)
    nfiles = sum(1 for _ in _iter_python_files(paths))
    if violations:
        print(f"{len(violations)} violation(s) in {nfiles} file(s)")
        return 1
    print(f"clean: {nfiles} file(s), {len(ALL_RULES)} rules")
    return 0
