"""Back-compat repo-contract linter: ``python -m repro.lint src/``.

As of the :mod:`repro.analyze` engine, this package is an **alias**: the
five historical contract rules live in
:mod:`repro.analyze.checkers.contracts` and run through the analyzer's
checker framework; this module keeps the old entry points
(:func:`lint_source`, :func:`lint_paths`, :func:`main`), the
:class:`Violation` type, the ``# lint: allow(rule-id)`` pragma syntax,
and the 0/1/2 exit-status contract exactly as before.

The full engine -- CFG path enumeration, collective matching, resource
typestate, fork safety -- is ``python -m repro.analyze``; use it for
anything beyond the legacy five rules.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analyze import _iter_python_files, analyze_source
from repro.analyze.checkers.contracts import ALL_RULES, CONTRACT_CHECKERS, Rule

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "main",
]


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: [{self.rule_id}] {self.message}"


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one module's source text; returns violations sorted by line."""
    return [
        Violation(f.path, f.line, f.col, f.rule_id, f.message)
        for f in analyze_source(source, path, checkers=CONTRACT_CHECKERS)
    ]


def lint_file(path: str) -> list[Violation]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def lint_paths(paths: Iterable[str]) -> list[Violation]:
    """Lint files and directory trees; returns all violations."""
    found: list[Violation] = []
    for path in _iter_python_files(paths):
        found.extend(lint_file(path))
    return found


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based repo-contract linter for the repro codebase "
            "(legacy alias of python -m repro.analyze)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (default: src/)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}: {rule.description}")
        return 0

    paths = args.paths or ["src/"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    violations = lint_paths(paths)
    for v in violations:
        print(v)
    nfiles = sum(1 for _ in _iter_python_files(paths))
    if violations:
        print(f"{len(violations)} violation(s) in {nfiles} file(s)")
        return 1
    print(f"clean: {nfiles} file(s), {len(ALL_RULES)} rules")
    return 0
