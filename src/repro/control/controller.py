"""The online autotuning controller: predict -> verify -> act, between steps.

The controller closes the loop the repository previously left open: the
perf package *predicts* per-configuration step costs, the trace package
*measures* them, and nothing acted on the gap.  :class:`Controller` holds a
user-declared :class:`SLO` against both, maintains a believed staging-fabric
derate from observations, and re-plans the running configuration between
simulation steps -- switching in-transit FlexPath <-> in-line Catalyst,
resizing aggregator fan-in, PNG workers/codec, and framebuffer pool depth.

Determinism contract
--------------------
Every decision is a pure function of (observed values, model state, the
seeded counter-hash RNG).  Wall-clock never enters: observations are either
modeled span seconds (the demo plant) or discrete staging outcomes (the
chaos transport), the probe schedule draws from
:func:`~repro.faults.plan.unit_draw`, and the candidate search is a strict
minimum over a canonical ordering.  Same seed => byte-identical decision
journal, across repeat runs and across thread/process SPMD backends.

Group lockstep
--------------
When constructed with a communicator ``group``, every decision point runs
``allreduce(proposal_index, MIN)`` over the canonical candidate list, whose
in-line block sorts first: any rank proposing the conservative in-line
placement pulls the whole writer group in-line together -- the same
one-degrades-all consensus the staging transport uses, so ranks never
straddle placements.

Probing (explore vs exploit)
----------------------------
The in-line path carries no staging signal, so once degraded the
controller would never learn the fabric recovered.  It therefore schedules
single-step staging probes on a seeded jittered interval; a successful
probe collapses the believed derate and re-opens the in-transit plan,
mirroring the circuit breaker's HALF_OPEN single-probe discipline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.control.journal import Decision, DecisionJournal, _jsonable
from repro.control.sensor import SpanSensor
from repro.faults.plan import unit_draw
from repro.mpi.ops import MAX, MIN
from repro.perf.control_model import ControlConfig, ControlModel

#: Imputed staging derate when an attempted staging step fails outright
#: (discrete outcome, no timing signal): pessimistic enough that two
#: consecutive failures under the fast-raise EWMA push the plan in-line.
OUTCOME_DERATE = 0.98

#: Asymmetric EWMA: believe bad news fast, good news cautiously.
ALPHA_RAISE = 0.9
ALPHA_DECAY = 0.5


@dataclass(frozen=True)
class SLO:
    """A user-declared per-step service-level objective.

    ``max_step_seconds`` bounds the writer-visible step total (the paper's
    "total time to solution" axis); ``max_overhead_fraction`` bounds
    (analysis + write) / simulation (the Sec. 4.1 overhead framing).
    Either may be ``inf`` (unbounded).
    """

    max_step_seconds: float = math.inf
    max_overhead_fraction: float = math.inf

    def violated_by(self, total: float, sim: float) -> bool:
        if total > self.max_step_seconds:
            return True
        if math.isfinite(self.max_overhead_fraction):
            overhead = math.inf if sim <= 0.0 else (total - sim) / sim
            if overhead > self.max_overhead_fraction:
                return True
        return False

    def as_dict(self) -> dict:
        return {
            "max_step_seconds": _jsonable(self.max_step_seconds),
            "max_overhead_fraction": _jsonable(self.max_overhead_fraction),
        }


class Controller:
    """Re-plans the in situ configuration between simulation steps.

    Parameters
    ----------
    model:
        Per-config cost oracle; defaults to the 6K-core miniapp model.
    slo:
        The objective to hold; defaults to the model's derived SLO (30%
        headroom over the untuned healthy staged step).
    seed:
        Seeds the probe-schedule jitter draws; part of the replay key.
    config:
        Starting configuration -- must be one of the model's canonical
        candidates (the consensus index space).
    group:
        Optional communicator for writer-group lockstep adoption.
    mode:
        Journal observation mode: ``"spans"`` or ``"outcomes"``.
    cooldown:
        Minimum steps between *elective* switches; SLO violations bypass
        it (bad news acts immediately).
    probe_interval / probe_jitter:
        A staging probe fires after ``probe_interval + U{0..probe_jitter}``
        consecutive in-line steps, jitter drawn from the seeded RNG.
    hysteresis:
        Elective switches need at least this fractional predicted
        improvement, so belief noise cannot make the plan oscillate.
    """

    def __init__(
        self,
        model: ControlModel | None = None,
        slo: SLO | None = None,
        seed: int = 0,
        config: ControlConfig | None = None,
        group=None,
        journal: DecisionJournal | None = None,
        mode: str = "spans",
        cooldown: int = 3,
        probe_interval: int = 5,
        probe_jitter: int = 3,
        hysteresis: float = 0.05,
    ) -> None:
        self.model = model if model is not None else ControlModel()
        if slo is None:
            max_step, max_over = self.model.default_slo()
            slo = SLO(max_step, max_over)
        self.slo = slo
        self.seed = int(seed)
        self.group = group
        self.cooldown = int(cooldown)
        self.probe_interval = int(probe_interval)
        self.probe_jitter = int(probe_jitter)
        self.hysteresis = float(hysteresis)
        self.candidates = self.model.candidate_configs()
        self.config = config if config is not None else self.model.default_config()
        try:
            self._current_index = self.candidates.index(self.config)
        except ValueError:
            raise ValueError(
                "starting config must be one of model.candidate_configs() "
                "(the group-consensus index space)"
            ) from None
        self.journal = (
            journal
            if journal is not None
            else DecisionJournal(seed=self.seed, slo=self.slo.as_dict(), mode=mode)
        )
        #: Believed staging-fabric derate in [0, 0.995] (0 = healthy).
        self.believed_derate = 0.0
        self._sensor: SpanSensor | None = None
        self._actuators: list = []
        self._probe_next = False
        self._probe_draws = 0
        self._steps_off_transit = 0
        self._last_switch_step = -(self.cooldown + 1)

    # -- wiring --------------------------------------------------------------
    def attach(self, recorder) -> SpanSensor:
        """Subscribe a span sensor to ``recorder`` (the verify feed)."""
        self._sensor = SpanSensor(recorder)
        return self._sensor

    def register_actuator(self, fn) -> None:
        """``fn(old_config, new_config)`` runs on every adopted switch --
        how reconfiguration reaches the live Catalyst/ADIOS components."""
        self._actuators.append(fn)

    # -- read-only views used *during* a step --------------------------------
    def wants_in_transit(self) -> bool:
        """Should this step attempt the staging transport?  True when the
        adopted placement is in-transit, or a probe is scheduled."""
        return self.config.placement == "in-transit" or self._probe_next

    def plant_config(self) -> ControlConfig:
        """The configuration actually in effect this step (probe-adjusted)."""
        if self._probe_next and self.config.placement == "in-line":
            return self.config.with_placement("in-transit")
        return self.config

    # -- observations --------------------------------------------------------
    def end_step(self, step: int) -> Decision:
        """Bridge hook: drain the span sensor through ``step`` and decide."""
        observed = self._sensor.drain(step) if self._sensor is not None else {}
        return self.observe_step(step, observed)

    def observe_step(self, step: int, observed: dict[str, float]) -> Decision:
        """Decide from per-step phase seconds (spans mode).

        ``observed`` maps phase -> seconds (``simulation``/``analysis``/
        ``write``, per :func:`~repro.trace.report.classify_span`).  When
        the effective placement was in-transit, the analysis seconds are
        inverted through the model for a staging-derate sample.
        """
        effective = self.plant_config()
        probe = self._probe_next
        self._probe_next = False
        d_sample = None
        if effective.placement == "in-transit" and "analysis" in observed:
            d_sample = self.model.estimate_staging_derate(
                effective, observed["analysis"]
            )
        violated = False
        if observed:
            total = sum(observed.values())
            sim = observed.get("simulation", 0.0)
            violated = self.slo.violated_by(total, sim)
        return self._decide(step, observed, probe, d_sample, violated)

    #: Canonical phase ordering for the group span reduction; any other
    #: classified phase folds into the trailing ``other`` bucket.
    _SENSE_PHASES = ("simulation", "analysis", "write")

    def _reduce_spans(self, spans: dict[str, float]) -> dict[str, float]:
        """Group-reduce per-rank phase seconds to one shared observation.

        Each writer drains its *own* recorder, but journals must stay
        byte-identical across the group, so the per-phase seconds are
        ``allreduce(MAX)``-ed over a fixed phase ordering -- the group's
        critical-path view, and (unlike a SUM) exact under floating point
        regardless of rank count.  Zero phases are dropped after the
        reduction, so every rank keeps the same key set.
        """
        vec = [spans.get(p, 0.0) for p in self._SENSE_PHASES]
        vec.append(
            sum(v for p, v in spans.items() if p not in self._SENSE_PHASES)
        )
        if self.group is not None:
            import numpy as np

            reduced = self.group.allreduce(
                np.asarray(vec, dtype=np.float64), MAX
            )
            vec = [float(x) for x in reduced]
        out = {
            p: v for p, v in zip(self._SENSE_PHASES, vec) if v > 0.0
        }
        if vec[-1] > 0.0:
            out["other"] = vec[-1]
        return out

    def observe_outcome(self, step: int, staged: bool) -> Decision:
        """Decide from a staging outcome, plus measured spans when sensed.

        The resilient transport reports only whether the group's staged
        step landed; a failed attempt imputes :data:`OUTCOME_DERATE`, a
        successful one samples a healthy fabric.  A step that never
        attempted staging (in-line, no probe) carries no signal.

        When a :class:`~repro.control.sensor.SpanSensor` is attached (see
        :meth:`attach`), the discrete outcome is enriched with the sensed
        per-phase seconds: they are group-reduced so every writer observes
        the same values, a *successful* staged step inverts the measured
        analysis seconds through the model for a continuous derate sample
        (instead of the flat healthy 0.0), and the SLO is checked against
        the measured totals -- the same verify leg ``observe_step`` runs,
        grafted onto the chaos transport's outcome feed.
        """
        attempted = self.config.placement == "in-transit" or self._probe_next
        effective = self.plant_config()
        probe = self._probe_next
        self._probe_next = False
        spans: dict[str, float] = {}
        if self._sensor is not None:
            spans = self._reduce_spans(self._sensor.drain(step))
        d_sample = None
        if attempted:
            if staged and spans.get("analysis", 0.0) > 0.0:
                d_sample = self.model.estimate_staging_derate(
                    effective, spans["analysis"]
                )
            else:
                d_sample = 0.0 if staged else OUTCOME_DERATE
        observed = {
            "attempted": 1.0 if attempted else 0.0,
            "staged": 1.0 if staged else 0.0,
        }
        violated = False
        if spans:
            observed.update(spans)
            total = sum(spans.values())
            violated = self.slo.violated_by(
                total, spans.get("simulation", 0.0)
            )
        return self._decide(step, observed, probe, d_sample, violated)

    # -- the decision core ----------------------------------------------------
    def _update_belief(self, d_sample: float | None) -> None:
        if d_sample is None:
            return
        alpha = ALPHA_RAISE if d_sample > self.believed_derate else ALPHA_DECAY
        believed = (1.0 - alpha) * self.believed_derate + alpha * d_sample
        self.believed_derate = min(max(believed, 0.0), 0.995)

    def _plan(self):
        """Cheapest SLO-feasible candidate at the believed derate; the
        outright cheapest if nothing is feasible.  Strict minima over the
        canonical ordering keep ties deterministic."""
        best_i, best = 0, None
        feas_i, feas = None, None
        for i, cand in enumerate(self.candidates):
            pred = self.model.predict(cand, self.believed_derate)
            if best is None or pred.total < best.total:
                best_i, best = i, pred
            if not self.slo.violated_by(pred.total, pred.sim):
                if feas is None or pred.total < feas.total:
                    feas_i, feas = i, pred
        if feas is not None:
            return feas_i, feas
        return best_i, best

    def _decide(
        self,
        step: int,
        observed: dict[str, float],
        probe: bool,
        d_sample: float | None,
        violated: bool,
    ) -> Decision:
        self._update_belief(d_sample)
        current_pred = self.model.predict(self.config, self.believed_derate)
        violated = violated or self.slo.violated_by(
            current_pred.total, current_pred.sim
        )
        planned_i, planned = self._plan()
        proposal = self._current_index
        if planned_i != self._current_index:
            if violated:
                proposal = planned_i
            elif (
                step - self._last_switch_step > self.cooldown
                and planned.total < current_pred.total * (1.0 - self.hysteresis)
            ):
                proposal = planned_i
        adopted = proposal
        if self.group is not None:
            adopted = int(self.group.allreduce(proposal, MIN))
        previous = None
        action = "hold"
        if adopted != self._current_index:
            old, new = self.config, self.candidates[adopted]
            if new.placement != old.placement:
                action = "degrade" if new.placement == "in-line" else "recover"
            else:
                action = "reconfigure"
            for fn in self._actuators:
                fn(old, new)
            previous = old.as_dict()
            self.config = new
            self._current_index = adopted
            self._last_switch_step = step
        draw = None
        if self.config.placement == "in-line":
            self._steps_off_transit += 1
            jitter_draw = unit_draw(
                self.seed, "control.probe", 0, self._probe_draws
            )
            jitter = int(jitter_draw * (self.probe_jitter + 1))
            if self._steps_off_transit >= self.probe_interval + jitter:
                self._probe_next = True
                self._probe_draws += 1
                self._steps_off_transit = 0
                draw = jitter_draw
        else:
            self._steps_off_transit = 0
        return self.journal.record(
            Decision(
                step=step,
                action=action,
                config=self.config.as_dict(),
                previous=previous,
                observed=observed,
                predicted=self.model.predict(
                    self.config, self.believed_derate
                ).as_dict(),
                believed_derate=self.believed_derate,
                slo_violated=violated,
                probe=probe,
                proposal=proposal,
                adopted=adopted,
                draw=draw,
            )
        )
