"""Closed-loop controller demonstration under an injected bandwidth outage.

``repro control`` runs this: an SPMD plant where every writer rank emits
*modeled* per-step spans -- the calibrated cost of the configuration the
controller actually chose, evaluated at the true (injected) staging-fabric
derate -- and feeds them back through the span sensor.  Mid-run the fabric
is derated hard enough that the staged pipeline blows the declared latency
SLO; the controller must degrade analysis to in-line Catalyst, hold the
SLO through the outage, keep probing the staging path on its seeded
schedule, and recover to in-transit once a probe comes back healthy.

Using modeled spans (pure floats) rather than wall-clock keeps the whole
loop deterministic: the demo asserts every rank's decision journal is
identical, and the CLI/CI replay the run twice and ``diff`` the journal
bytes.  The dynamics are real -- the controller has no access to the true
derate, only to the observations the plant emits and its own inversion of
them.
"""

from __future__ import annotations

import json
import os

from repro.control.controller import SLO, Controller
from repro.control.journal import DecisionJournal
from repro.mpi import run_spmd
from repro.perf.control_model import ControlModel
from repro.perf.miniapp_model import MiniappConfig
from repro.trace.recorder import TraceRecorder


def _plant(comm, seed, steps, slo_seconds, derate, window, scale):
    """One writer rank: modeled plant + controller, lockstep via ``comm``."""
    model = ControlModel(MiniappConfig.at_scale(scale))
    ctrl = Controller(
        model=model,
        slo=SLO(max_step_seconds=slo_seconds),
        seed=seed,
        group=comm,
        mode="spans",
    )
    rec = TraceRecorder(rank=comm.rank, epoch=0.0)
    ctrl.attach(rec)
    t = 0.0
    for step in range(steps):
        true_derate = derate if window[0] <= step < window[1] else 0.0
        truth = model.predict(ctrl.plant_config(), true_derate)
        rec.set_step(step)
        for name, cost in (
            ("simulation::advance", truth.sim),
            ("sensei::execute", truth.analysis),
            ("io::write", truth.write),
        ):
            rec.complete(name, t, t + cost, step=step)
            t += cost
        ctrl.end_step(step)
    return ctrl.journal.to_dict()


def _timeline(journal: dict, slo_seconds: float) -> list[str]:
    lines = [
        f"{'step':>4} {'placement':<11} {'observed':>9} {'believed':>9} "
        f"{'slo':>4} {'probe':>5}  action",
        "-" * 56,
    ]
    for d in journal["decisions"]:
        total = sum(d["observed"].values())
        lines.append(
            f"{d['step']:>4} {d['config']['placement']:<11} {total:>9.4f} "
            f"{d['believed_derate']:>9.4f} "
            f"{'VIOL' if d['slo_violated'] else ' ok ':>4} "
            f"{'yes' if d['probe'] else '':>5}  "
            f"{d['action'] if d['action'] != 'hold' else ''}"
        )
    return lines


def run_control_demo(
    seed: int = 7,
    steps: int = 36,
    writers: int = 3,
    slo_seconds: float = 0.65,
    derate: float = 0.98,
    derate_window: tuple[int, int] = (10, 25),
    scale: str = "6K",
    out_dir: str | None = None,
    backend: str | None = None,
) -> dict:
    """Run the demo; returns the journal, a text timeline, and a summary.

    Raises if the writers' decision journals ever diverge -- lockstep
    consensus plus deterministic observations must keep them identical.
    """
    results = run_spmd(
        writers,
        _plant,
        seed,
        steps,
        slo_seconds,
        derate,
        derate_window,
        scale,
        backend=backend,
    )
    texts = [
        json.dumps(r, indent=2, sort_keys=True) + "\n" for r in results
    ]
    for rank, text in enumerate(texts[1:], start=1):
        if text != texts[0]:
            raise RuntimeError(
                f"decision journals diverged between rank 0 and rank {rank}"
            )
    journal = results[0]
    decisions = journal["decisions"]
    actions = [
        (d["step"], d["action"]) for d in decisions if d["action"] != "hold"
    ]
    degraded = [s for s, a in actions if a == "degrade"]
    recovered = [s for s, a in actions if a == "recover"]
    outage = [
        d for d in decisions if derate_window[0] <= d["step"] < derate_window[1]
    ]
    # Steps where the plant actually blew the SLO -- the controller's score.
    over = [
        d["step"]
        for d in decisions
        if sum(d["observed"].values()) > slo_seconds
    ]
    summary = {
        "seed": seed,
        "steps": steps,
        "writers": writers,
        "slo_seconds": slo_seconds,
        "derate": derate,
        "derate_window": list(derate_window),
        "actions": actions,
        "degraded_at": degraded[0] if degraded else None,
        "recovered_at": recovered[0] if recovered else None,
        "steps_over_slo": over,
        "outage_steps": len(outage),
        "final_placement": decisions[-1]["config"]["placement"]
        if decisions
        else None,
    }
    timeline = _timeline(journal, slo_seconds)
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        with open(
            os.path.join(out_dir, "decision_journal.json"), "w", encoding="utf-8"
        ) as fh:
            fh.write(texts[0])
        with open(
            os.path.join(out_dir, "timeline.txt"), "w", encoding="utf-8"
        ) as fh:
            fh.write("\n".join(timeline) + "\n")
        with open(
            os.path.join(out_dir, "summary.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return {
        "journal": journal,
        "journal_text": texts[0],
        "summary": summary,
        "timeline": timeline,
    }


def journal_from_dict(doc: dict) -> DecisionJournal:
    """Rehydrate a journal's metadata (for tooling; decisions stay dicts)."""
    meta = doc.get("meta", {})
    return DecisionJournal(
        seed=int(meta.get("seed", 0)),
        slo=meta.get("slo"),
        mode=str(meta.get("mode", "spans")),
    )
