"""Online autotuning: the SIM-SITU predict->verify->act loop, closed.

The paper measures in situ costs (Secs. 4.1-4.2) and the perf package
predicts them; this package is the missing third leg -- an online
controller that *acts* on the gap between the two while the run is live:

- :mod:`sensor` -- subscribes to per-step trace spans
  (:meth:`~repro.trace.TraceRecorder.subscribe`) and reduces them to the
  Sec. 4.1.1 phase observation the controller consumes;
- :mod:`controller` -- holds a user-declared latency/overhead SLO against
  per-config predictions from
  :class:`~repro.perf.control_model.ControlModel`, maintains a believed
  staging-fabric derate, and re-plans between steps: switching in-transit
  FlexPath <-> in-line Catalyst, resizing aggregator fan-in, PNG
  workers/codec, and framebuffer pool depth.  Writer groups adopt
  configurations by the same ``allreduce(MIN)`` lockstep consensus the
  staging transport uses for degradation;
- :mod:`journal` -- every decision is a pure function of (observed spans,
  model state, seeded RNG) and is appended to a structured journal, so the
  same seed replays to a byte-identical decision log across runs and SPMD
  backends;
- :mod:`demo` -- a closed-loop demonstration under an injected mid-run
  bandwidth derating (``repro control``): the controller degrades staged
  analysis to in-line, holds the SLO through the outage, probes the
  staging path on a seeded schedule, and recovers.
"""

from repro.control.controller import SLO, Controller
from repro.control.demo import run_control_demo
from repro.control.journal import Decision, DecisionJournal
from repro.control.sensor import SpanSensor

__all__ = [
    "SLO",
    "Controller",
    "Decision",
    "DecisionJournal",
    "SpanSensor",
    "run_control_demo",
]
