"""Structured decision journal: the controller's replayable audit trail.

Every controller decision -- including "hold" -- is recorded as one
:class:`Decision` with the observation that triggered it, the belief state
it updated, the configuration adopted, and the consensus/probe metadata.
The journal serializes with sorted keys and fixed rounding so that two
runs with the same seed (or the same run on the thread vs process SPMD
backend) produce **byte-identical** JSON -- the property the determinism
tests and the CI chaos-smoke replay gate assert with a plain ``diff``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any


def _round6(value: float) -> float:
    """Journal-stable rounding; keeps float repr identical across runs."""
    return round(float(value), 6)


def _jsonable(value: float | None) -> float | None:
    """JSON has no inf; an unbounded SLO term serializes as ``None``."""
    if value is None:
        return None
    if math.isinf(value):
        return None
    return _round6(value)


@dataclass(frozen=True)
class Decision:
    """One controller decision at the end of one simulation step.

    ``action`` is one of ``hold`` (keep the configuration),
    ``reconfigure`` (same placement, different knobs), ``degrade``
    (in-transit -> in-line), or ``recover`` (in-line -> in-transit).
    ``proposal``/``adopted`` are candidate indices into
    :meth:`~repro.perf.control_model.ControlModel.candidate_configs`;
    they differ only when the writer-group consensus overruled this
    rank's local plan.  ``draw`` is the seeded unit draw consulted when a
    staging probe was scheduled, ``None`` otherwise.
    """

    step: int
    action: str
    config: dict[str, Any]
    previous: dict[str, Any] | None
    observed: dict[str, float]
    predicted: dict[str, float]
    believed_derate: float
    slo_violated: bool
    probe: bool
    proposal: int
    adopted: int
    draw: float | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "step": self.step,
            "action": self.action,
            "config": dict(self.config),
            "previous": None if self.previous is None else dict(self.previous),
            "observed": {k: _round6(v) for k, v in sorted(self.observed.items())},
            "predicted": dict(self.predicted),
            "believed_derate": _round6(self.believed_derate),
            "slo_violated": self.slo_violated,
            "probe": self.probe,
            "proposal": self.proposal,
            "adopted": self.adopted,
            "draw": None if self.draw is None else _round6(self.draw),
        }


@dataclass
class DecisionJournal:
    """Append-only decision log for one controller instance.

    ``mode`` records what the observations are: ``"spans"`` (per-step
    phase seconds from the trace sensor) or ``"outcomes"`` (discrete
    staging attempted/staged signals from the resilient transport).
    """

    seed: int
    slo: dict[str, float | None] | None = None
    mode: str = "spans"
    entries: list[Decision] = field(default_factory=list)

    def record(self, decision: Decision) -> Decision:
        self.entries.append(decision)
        return decision

    def __len__(self) -> int:
        return len(self.entries)

    def action_sequence(self) -> list[tuple[int, str]]:
        """The (step, action) pairs for every non-hold decision."""
        return [
            (d.step, d.action) for d in self.entries if d.action != "hold"
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "meta": {"seed": self.seed, "slo": self.slo, "mode": self.mode},
            "decisions": [d.as_dict() for d in self.entries],
        }

    def to_json(self) -> str:
        """Canonical serialization (sorted keys, 2-space indent, trailing
        newline) -- the byte-identical-replay contract."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def dump(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
