"""Span sensor: per-step phase observations from the live trace feed.

The *verify* leg of the loop.  A :class:`SpanSensor` subscribes to one
rank's :class:`~repro.trace.TraceRecorder` and folds every completed
**top-level** span into per-step phase buckets using the same
:func:`~repro.trace.report.classify_span` taxonomy the post-hoc phase
report uses -- so what the controller reacts to is exactly what
``repro report`` would later print for that step.  Nested spans are
skipped (their parents already account for them), as are spans with no
step tag (one-time phases).

The controller drains buckets *through* a step rather than exactly at it:
the ``simulation::advance`` span that produced step N is closed before
``set_step(N)`` runs, so it lands in the previous step's bucket and is
swept up by ``drain(N)``.
"""

from __future__ import annotations

from repro.trace.recorder import Span, TraceRecorder
from repro.trace.report import PER_STEP, classify_span


class SpanSensor:
    """Aggregates a recorder's live span feed into per-step observations."""

    def __init__(self, recorder: TraceRecorder) -> None:
        self._recorder = recorder
        #: step -> phase -> accumulated seconds.
        self._acc: dict[int, dict[str, float]] = {}
        recorder.subscribe(self._on_span)

    def close(self) -> None:
        """Detach from the recorder (idempotent)."""
        self._recorder.unsubscribe(self._on_span)

    def _on_span(self, span: Span) -> None:
        if span.parent is not None or span.step is None:
            return
        phase, kind = classify_span(span.name)
        if kind != PER_STEP:
            return
        bucket = self._acc.setdefault(span.step, {})
        bucket[phase] = bucket.get(phase, 0.0) + span.duration

    def pending_steps(self) -> list[int]:
        return sorted(self._acc)

    def drain(self, step: int) -> dict[str, float]:
        """Pop and merge every bucket for steps ``<= step``."""
        merged: dict[str, float] = {}
        for s in sorted(self._acc):
            if s > step:
                break
            for phase, seconds in self._acc.pop(s).items():
                merged[phase] = merged.get(phase, 0.0) + seconds
        return merged
