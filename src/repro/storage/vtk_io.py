"""File-per-process structured I/O with a parallel index.

Mirrors VTK's ``.vti`` piece + ``.pvti`` index pattern: every rank writes its
block (header + raw little-endian array) to its own file; rank 0 writes one
JSON index describing the whole extent and the pieces.  The reader side can
run on any number of ranks -- each reader claims a subset of pieces or a
sub-extent, which is how the post hoc study reads 45K-core data with 10% of
the cores.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.data import Association, DataArray, ImageData
from repro.util.decomp import Extent, block_decompose_1d

_MAGIC = b"RVI1"


@dataclass(frozen=True)
class VTKPiece:
    """One piece (rank block) recorded in an index."""

    filename: str
    extent: Extent


@dataclass
class VTKIndex:
    """The root-written index for one time step."""

    whole_extent: Extent
    field: str
    dtype: str
    spacing: tuple[float, float, float]
    origin: tuple[float, float, float]
    time: float
    step: int
    pieces: list[VTKPiece]


def _extent_to_list(e: Extent) -> list[int]:
    return [e.i0, e.i1, e.j0, e.j1, e.k0, e.k1]


def _extent_from_list(v: list[int]) -> Extent:
    return Extent(*v)


def write_block(path, image: ImageData, field: str) -> int:
    """Write one block file; returns bytes written.

    Layout: magic, 8-byte little-endian header length, JSON header, raw
    C-order array bytes.
    """
    arr = image.get_array(Association.POINT, field)
    data = np.ascontiguousarray(arr.values.reshape(image.dims))
    header = json.dumps(
        {
            "extent": _extent_to_list(image.extent),
            "whole_extent": _extent_to_list(image.whole_extent),
            "spacing": list(image.spacing),
            "origin": list(image.origin),
            "field": field,
            "dtype": str(data.dtype),
        }
    ).encode()
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(len(header).to_bytes(8, "little"))
        fh.write(header)
        fh.write(data.tobytes())
    return len(_MAGIC) + 8 + len(header) + data.nbytes


def read_piece(path) -> ImageData:
    """Read one block file back into an ImageData with its field attached."""
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a block file (bad magic)")
        hlen = int.from_bytes(fh.read(8), "little")
        header = json.loads(fh.read(hlen).decode())
        extent = _extent_from_list(header["extent"])
        dtype = np.dtype(header["dtype"])
        expected = extent.num_points * dtype.itemsize
        raw = fh.read(expected)
        if len(raw) != expected:
            raise ValueError(f"{path}: truncated data section")
    img = ImageData(
        extent,
        origin=tuple(header["origin"]),
        spacing=tuple(header["spacing"]),
        whole_extent=_extent_from_list(header["whole_extent"]),
    )
    data = np.frombuffer(raw, dtype=dtype).reshape(extent.shape)
    img.add_point_array(DataArray.from_numpy(header["field"], data))
    return img


def write_timestep(
    comm, directory, step: int, time: float, image: ImageData, field: str
) -> int:
    """File-per-process write of one time step; returns local bytes written.

    Rank 0 additionally writes ``step_<n>.index.json``.  The per-rank piece
    name encodes the rank, matching the file-per-core layout whose write
    cost Fig. 10 charges per time step.
    """
    os.makedirs(directory, exist_ok=True)
    piece_name = f"step_{step:06d}.rank_{comm.rank:06d}.rvi"
    nbytes = write_block(os.path.join(directory, piece_name), image, field)
    entries = comm.gather((piece_name, _extent_to_list(image.extent)), root=0)
    if comm.rank == 0:
        arr = image.get_array(Association.POINT, field)
        index = {
            "whole_extent": _extent_to_list(image.whole_extent),
            "field": field,
            "dtype": str(arr.dtype),
            "spacing": list(image.spacing),
            "origin": list(image.origin),
            "time": time,
            "step": step,
            "pieces": entries,
        }
        with open(
            os.path.join(directory, f"step_{step:06d}.index.json"), "w"
        ) as fh:
            json.dump(index, fh)
    return nbytes


def read_index(directory, step: int) -> VTKIndex:
    path = os.path.join(directory, f"step_{step:06d}.index.json")
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    return VTKIndex(
        whole_extent=_extent_from_list(raw["whole_extent"]),
        field=raw["field"],
        dtype=raw["dtype"],
        spacing=tuple(raw["spacing"]),
        origin=tuple(raw["origin"]),
        time=raw["time"],
        step=raw["step"],
        pieces=[
            VTKPiece(name, _extent_from_list(ext)) for name, ext in raw["pieces"]
        ],
    )


def read_global_field(directory, step: int) -> np.ndarray:
    """Assemble the full global field from all pieces (single reader)."""
    index = read_index(directory, step)
    out = np.zeros(index.whole_extent.shape, dtype=np.dtype(index.dtype))
    for piece in index.pieces:
        img = read_piece(os.path.join(directory, piece.filename))
        e = piece.extent
        out[e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1] = (
            img.point_field_3d(index.field)
        )
    return out


def read_subextent(directory, step: int, want: Extent) -> np.ndarray:
    """Read just the pieces overlapping ``want`` and assemble that region.

    This is the post hoc reader path: a reader rank owns a sub-extent of
    the global grid (typically much larger than any single writer's piece,
    since readers are ~10% of writers) and touches only the piece files
    that intersect it.
    """
    index = read_index(directory, step)
    out = np.zeros(want.shape, dtype=np.dtype(index.dtype))
    for piece in index.pieces:
        overlap = piece.extent.intersect(want)
        if overlap is None:
            continue
        img = read_piece(os.path.join(directory, piece.filename))
        f = img.point_field_3d(index.field)
        e = piece.extent
        src = f[
            overlap.i0 - e.i0 : overlap.i1 - e.i0 + 1,
            overlap.j0 - e.j0 : overlap.j1 - e.j0 + 1,
            overlap.k0 - e.k0 : overlap.k1 - e.k0 + 1,
        ]
        out[
            overlap.i0 - want.i0 : overlap.i1 - want.i0 + 1,
            overlap.j0 - want.j0 : overlap.j1 - want.j0 + 1,
            overlap.k0 - want.k0 : overlap.k1 - want.k0 + 1,
        ] = src
    return out


def reader_extent(whole: Extent, nreaders: int, reader: int) -> Extent:
    """Sub-extent assignment for post hoc readers (split along i)."""
    ni = whole.i1 - whole.i0 + 1
    lo, hi = block_decompose_1d(ni, nreaders, reader)
    return Extent(whole.i0 + lo, whole.i0 + hi - 1, whole.j0, whole.j1, whole.k0, whole.k1)
