"""An ADIOS-BP-style self-describing container.

ADIOS "marshals the memory and metadata to make such code self-describing"
(Sec. 2.2.3); its BP format stores per-writer data subfiles plus a global
metadata index.  :class:`BPWriter` reproduces that layout (a ``<name>.bp``
directory with ``data.<rank>`` subfiles and a root-written
``md.idx`` JSON index); :class:`BPReader` reads any variable's global or
sub-selected box back with any number of reader ranks.  The SENSEI ADIOS
analysis adaptor uses this for its "save the data out to an ADIOS BP file"
mode; the FlexPath staging transport shares the variable/metadata model but
moves buffers memory-to-memory instead.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.faults.injector import InjectedWriteError
from repro.util.decomp import Extent


@dataclass(frozen=True)
class BPBlockRecord:
    """Metadata for one writer's block of one variable at one step."""

    var: str
    step: int
    rank: int
    extent: Extent
    dtype: str
    offset: int  # byte offset in the writer's data subfile
    nbytes: int


class BPFile:
    """Path helpers for the on-disk BP layout."""

    def __init__(self, path) -> None:
        self.root = str(path)
        if not self.root.endswith(".bp"):
            self.root += ".bp"

    def subfile(self, rank: int) -> str:
        return os.path.join(self.root, f"data.{rank}")

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "md.idx")


class BPWriter:
    """Collective, step-oriented writer.

    Usage per step (mirrors the ADIOS write API): ``begin_step`` ...
    ``write(var, block, extent)`` ... ``end_step``; ``close`` writes the
    metadata index from rank 0.
    """

    def __init__(self, comm, path, global_dims: tuple[int, int, int]) -> None:
        self.comm = comm
        self.file = BPFile(path)
        self.global_dims = global_dims
        self._step: int | None = None
        self._next_step = 0
        self._local_records: list[BPBlockRecord] = []
        self._offset = 0
        if comm.rank == 0:
            os.makedirs(self.file.root, exist_ok=True)
        comm.barrier()
        self._fh = open(self.file.subfile(comm.rank), "wb")
        self._closed = False

    def begin_step(self) -> int:
        if self._step is not None:
            raise RuntimeError("begin_step inside an open step")
        self._step = self._next_step
        return self._step

    def write(self, var: str, block: np.ndarray, extent: Extent) -> int:
        """Write this rank's block of ``var``; returns bytes written."""
        if self._step is None:
            raise RuntimeError("write outside begin_step/end_step")
        data = np.ascontiguousarray(block)
        if data.shape != extent.shape:
            raise ValueError("block shape must match extent")
        raw = data.tobytes()
        inj = getattr(self.comm, "fault_injector", None)
        if inj is not None:
            self._consult_injector(inj, raw)
        self._fh.write(raw)
        self._local_records.append(
            BPBlockRecord(
                var=var,
                step=self._step,
                rank=self.comm.rank,
                extent=extent,
                dtype=str(data.dtype),
                offset=self._offset,
                nbytes=len(raw),
            )
        )
        self._offset += len(raw)
        return len(raw)

    def _consult_injector(self, inj, raw: bytes) -> None:
        """Resolve an injected filesystem fault for this write call.

        A partial write puts real bytes in the subfile before failing, then
        rewinds and truncates the handle back to the record's start offset
        -- so retrying the same ``write`` is idempotent (the block record
        and ``_offset`` only advance on success).
        """
        action = inj.draw(
            "storage.write",
            self.comm._draw_rank(),
            step=self._step,
            trace=getattr(self.comm, "trace_recorder", None),
        )
        if action is None:
            return
        if action.kind == "write_fail":
            raise InjectedWriteError(
                f"injected write failure (rank {self.comm.rank}, "
                f"step {self._step})"
            )
        if action.kind == "write_partial":
            fraction = float(action.params.get("fraction", 0.5))
            self._fh.write(raw[: int(len(raw) * fraction)])
            self._fh.flush()
            self._fh.seek(self._offset)
            self._fh.truncate()
            raise InjectedWriteError(
                f"injected partial write (rank {self.comm.rank}, "
                f"step {self._step})"
            )
        if action.kind == "write_slow":
            time.sleep(float(action.params.get("seconds", 0.002)))

    def end_step(self) -> None:
        """Advance: exchange metadata so the step is globally visible.

        This is the ``adios::advance`` boundary whose cost Fig. 8 reports.
        """
        if self._step is None:
            raise RuntimeError("end_step without begin_step")
        self._step = None
        self._next_step += 1
        self.comm.barrier()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        self._fh.close()
        all_records = self.comm.gather(
            [
                {
                    "var": r.var,
                    "step": r.step,
                    "rank": r.rank,
                    "extent": [r.extent.i0, r.extent.i1, r.extent.j0, r.extent.j1, r.extent.k0, r.extent.k1],
                    "dtype": r.dtype,
                    "offset": r.offset,
                    "nbytes": r.nbytes,
                }
                for r in self._local_records
            ],
            root=0,
        )
        if self.comm.rank == 0:
            index = {
                "global_dims": list(self.global_dims),
                "num_writers": self.comm.size,
                "num_steps": self._next_step,
                "blocks": [rec for per_rank in all_records for rec in per_rank],
            }
            with open(self.file.index_path, "w", encoding="utf-8") as fh:
                json.dump(index, fh)
        self.comm.barrier()


class BPReader:
    """Reads variables back, with sub-extent selection; works with any
    number of reader ranks (each reader opens only the subfiles it needs)."""

    def __init__(self, path) -> None:
        self.file = BPFile(path)
        with open(self.file.index_path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
        self.global_dims = tuple(raw["global_dims"])
        self.num_writers = raw["num_writers"]
        self.num_steps = raw["num_steps"]
        self._blocks = [
            BPBlockRecord(
                var=b["var"],
                step=b["step"],
                rank=b["rank"],
                extent=Extent(*b["extent"]),
                dtype=b["dtype"],
                offset=b["offset"],
                nbytes=b["nbytes"],
            )
            for b in raw["blocks"]
        ]

    def variables(self) -> list[str]:
        return sorted({b.var for b in self._blocks})

    def read(self, var: str, step: int, selection: Extent | None = None) -> np.ndarray:
        """Read ``var`` at ``step``, optionally restricted to ``selection``."""
        records = [b for b in self._blocks if b.var == var and b.step == step]
        if not records:
            raise KeyError(f"no blocks for var {var!r} at step {step}")
        if selection is None:
            nx, ny, nz = self.global_dims
            selection = Extent(0, nx - 1, 0, ny - 1, 0, nz - 1)
        out = np.zeros(selection.shape, dtype=np.dtype(records[0].dtype))
        for rec in records:
            overlap = rec.extent.intersect(selection)
            if overlap is None:
                continue
            with open(self.file.subfile(rec.rank), "rb") as fh:
                fh.seek(rec.offset)
                raw = fh.read(rec.nbytes)
            block = np.frombuffer(raw, dtype=np.dtype(rec.dtype)).reshape(
                rec.extent.shape
            )
            e = rec.extent
            src = block[
                overlap.i0 - e.i0 : overlap.i1 - e.i0 + 1,
                overlap.j0 - e.j0 : overlap.j1 - e.j0 + 1,
                overlap.k0 - e.k0 : overlap.k1 - e.k0 + 1,
            ]
            out[
                overlap.i0 - selection.i0 : overlap.i1 - selection.i0 + 1,
                overlap.j0 - selection.j0 : overlap.j1 - selection.j0 + 1,
                overlap.k0 - selection.k0 : overlap.k1 - selection.k0 + 1,
            ] = src
        return out
