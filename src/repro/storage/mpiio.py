"""Collective shared-file I/O in the MPI-IO style.

The paper's MPI-IO comparison point (Table 1) uses
``MPI_Type_create_subarray`` + ``MPI_File_set_view`` + ``MPI_File_write_all``
to store the global multi-dimensional array in canonical order in one shared
file.  We emulate that faithfully: every rank writes its block's rows into
the shared file at the offsets the subarray filetype would dictate.  Because
a 3-D block's data is *strided* in the canonical global layout, this incurs
one seek+write per (i, j) row -- the access pattern that makes shared-file
I/O slower than file-per-process in Table 1.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.injector import InjectedWriteError
from repro.util.decomp import Extent

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import RetryPolicy

_HEADER_BYTES = 512


def _header(global_dims: tuple[int, int, int], dtype: np.dtype) -> bytes:
    meta = json.dumps({"dims": list(global_dims), "dtype": str(dtype)}).encode()
    if len(meta) > _HEADER_BYTES - 8:
        raise ValueError("header too large")
    return len(meta).to_bytes(8, "little") + meta.ljust(_HEADER_BYTES - 8, b"\x00")


def mpiio_write_collective(
    comm,
    path,
    block: np.ndarray,
    extent: Extent,
    global_dims: tuple[int, int, int],
    retry: "RetryPolicy | None" = None,
) -> int:
    """Collectively write per-rank blocks into one canonical shared file.

    Returns the bytes this rank wrote.  Rank 0 pre-sizes the file and writes
    the header; all ranks then write their subarray rows at computed
    offsets.  A barrier separates the two phases, standing in for the
    synchronization inside ``MPI_File_write_all``.

    Injected storage faults (``storage.write`` site) hit the per-rank data
    phase only; because every row lands at an absolute offset, re-running
    the phase is idempotent.  ``retry`` retries *that phase* under the
    policy -- never the whole collective, whose barriers may not be
    re-entered by a single rank.
    """
    data = np.ascontiguousarray(block)
    if data.shape != extent.shape:
        raise ValueError("block shape must match extent")
    nx, ny, nz = global_dims
    itemsize = data.dtype.itemsize
    total = _HEADER_BYTES + nx * ny * nz * itemsize
    if comm.rank == 0:
        with open(path, "wb") as fh:
            fh.write(_header(global_dims, data.dtype))
            fh.truncate(total)
    comm.barrier()
    inj = getattr(comm, "fault_injector", None)

    def _data_phase() -> int:
        if inj is not None:
            _consult_injector(comm, inj)
        written = 0
        with open(path, "r+b") as fh:
            for li, gi in enumerate(range(extent.i0, extent.i1 + 1)):
                for lj, gj in enumerate(range(extent.j0, extent.j1 + 1)):
                    offset = _HEADER_BYTES + ((gi * ny + gj) * nz + extent.k0) * itemsize
                    fh.seek(offset)
                    row = data[li, lj].tobytes()
                    fh.write(row)
                    written += len(row)
        return written

    if retry is not None:
        from repro.faults.policies import retry_call

        written = retry_call(
            _data_phase,
            retry,
            key=f"mpiio:{comm.rank}",
            trace=getattr(comm, "trace_recorder", None),
        )
    else:
        written = _data_phase()
    comm.barrier()
    return written


def _consult_injector(comm, inj) -> None:
    """Resolve an injected fault before a rank's shared-file data phase."""
    action = inj.draw(
        "storage.write",
        comm._draw_rank(),
        trace=getattr(comm, "trace_recorder", None),
    )
    if action is None:
        return
    if action.kind in ("write_fail", "write_partial"):
        # Partial and failed writes are equivalent here: rows land at
        # absolute offsets, so any prefix is simply overwritten on retry.
        raise InjectedWriteError(
            f"injected {action.kind} in shared-file data phase (rank {comm.rank})"
        )
    if action.kind == "write_slow":
        time.sleep(float(action.params.get("seconds", 0.002)))


def mpiio_read_block(path, extent: Extent) -> np.ndarray:
    """Read one sub-block back from a canonical shared file."""
    with open(path, "rb") as fh:
        hlen = int.from_bytes(fh.read(8), "little")
        meta = json.loads(fh.read(hlen).decode())
        nx, ny, nz = meta["dims"]
        dtype = np.dtype(meta["dtype"])
        if not (
            0 <= extent.i0 <= extent.i1 < nx
            and 0 <= extent.j0 <= extent.j1 < ny
            and 0 <= extent.k0 <= extent.k1 < nz
        ):
            raise ValueError("requested extent outside the stored array")
        out = np.empty(extent.shape, dtype=dtype)
        nk = extent.k1 - extent.k0 + 1
        for li, gi in enumerate(range(extent.i0, extent.i1 + 1)):
            for lj, gj in enumerate(range(extent.j0, extent.j1 + 1)):
                offset = _HEADER_BYTES + ((gi * ny + gj) * nz + extent.k0) * dtype.itemsize
                fh.seek(offset)
                out[li, lj] = np.frombuffer(
                    fh.read(nk * dtype.itemsize), dtype=dtype
                )
    return out


def file_size_for(global_dims: tuple[int, int, int], dtype) -> int:
    nx, ny, nz = global_dims
    return _HEADER_BYTES + nx * ny * nz * np.dtype(dtype).itemsize
