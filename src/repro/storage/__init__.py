"""Persistent-storage paths: the *post hoc* side of the study.

The paper compares in situ against the traditional write-then-read workflow
(Sec. 4.1.5): "a file-per-core VTK I/O, which should be faster, than a more
traditional, but slower, MPI-IO approach (see Table 1)".  Both paths are
implemented for real here:

- :mod:`vtk_io` -- file-per-process block files plus a root-written index
  (the ``.vti``/``.pvti`` pattern), with a reader that lets *fewer* ranks
  read the data back (the 10%-of-cores post hoc configuration of Fig. 11);
- :mod:`mpiio` -- a collective shared-file writer that lays the global
  array out in canonical C order, which forces the strided row-at-a-time
  writes that make the shared-file path slower (Table 1);
- :mod:`bp` -- an ADIOS-BP-style self-describing container (per-rank data
  subfiles + root metadata index) used by the ADIOS analysis adaptor's
  "save to a BP file" mode.
"""

from repro.storage.vtk_io import (
    VTKIndex,
    VTKPiece,
    read_index,
    read_piece,
    read_global_field,
    read_subextent,
    write_block,
    write_timestep,
)
from repro.storage.mpiio import mpiio_read_block, mpiio_write_collective
from repro.storage.bp import BPFile, BPReader, BPWriter

__all__ = [
    "write_block",
    "write_timestep",
    "read_piece",
    "read_index",
    "read_global_field",
    "read_subextent",
    "VTKIndex",
    "VTKPiece",
    "mpiio_write_collective",
    "mpiio_read_block",
    "BPWriter",
    "BPReader",
    "BPFile",
]
