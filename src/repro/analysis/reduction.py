"""In situ data reduction: downsampling, quantization, subsetting.

The paper's SDMAV umbrella covers "data processing operations like
transformations, compression, subsetting, indexing" (Sec. 2.1), and its
related-work line of "explorable data products ... much smaller than the
full-resolution data" (Sec. 2.2.4) is exactly what these operators build:
bounded-error reduced extracts written in situ, reconstructable post hoc.

Operators:

- :func:`downsample_mean` -- block-mean coarsening by an integer factor;
- :func:`quantize` / :func:`dequantize` -- uniform scalar quantization to
  ``bits`` bits with a guaranteed worst-case error of half a quantum;
- :class:`ReducedExtractAnalysis` -- an analysis adaptor writing
  downsampled + quantized per-rank extracts each step, with an index;
- :func:`read_reduced_extract` -- post hoc reconstruction to the coarse
  grid.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association, ImageData
from repro.mpi import MAX, MIN
from repro.util.timers import timed


def downsample_mean(field: np.ndarray, factor: int) -> np.ndarray:
    """Block-mean downsample a 3-D field by ``factor`` along each axis.

    Trailing partial blocks (when a dimension is not divisible) are
    averaged over their actual extent, so no samples are dropped.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 3:
        raise ValueError("downsample_mean requires a 3-D field")
    if factor == 1:
        return f.copy()
    out_shape = tuple(-(-s // factor) for s in f.shape)
    out = np.zeros(out_shape)
    counts = np.zeros(out_shape)
    # Accumulate via strided slicing: factor^3 shifted sub-lattices.
    for di in range(factor):
        for dj in range(factor):
            for dk in range(factor):
                sub = f[di::factor, dj::factor, dk::factor]
                out[: sub.shape[0], : sub.shape[1], : sub.shape[2]] += sub
                counts[: sub.shape[0], : sub.shape[1], : sub.shape[2]] += 1.0
    return out / counts


def quantize(
    field: np.ndarray, bits: int, vmin: float, vmax: float
) -> np.ndarray:
    """Uniform quantization to ``bits`` bits over [vmin, vmax].

    Returns uint32 codes.  Round-tripping through :func:`dequantize` has
    worst-case absolute error ``(vmax - vmin) / (2 (2^bits - 1))``.
    """
    if not 1 <= bits <= 32:
        raise ValueError("bits must be in 1..32")
    f = np.asarray(field, dtype=np.float64)
    levels = (1 << bits) - 1
    if vmax <= vmin:
        return np.zeros(f.shape, dtype=np.uint32)
    t = np.clip((f - vmin) / (vmax - vmin), 0.0, 1.0)
    return (t * levels + 0.5).astype(np.uint32)


def dequantize(
    codes: np.ndarray, bits: int, vmin: float, vmax: float
) -> np.ndarray:
    if not 1 <= bits <= 32:
        raise ValueError("bits must be in 1..32")
    levels = (1 << bits) - 1
    if vmax <= vmin:
        return np.full(codes.shape, vmin, dtype=np.float64)
    return vmin + (np.asarray(codes, dtype=np.float64) / levels) * (vmax - vmin)


def quantization_error_bound(bits: int, vmin: float, vmax: float) -> float:
    """Worst-case |x - dequantize(quantize(x))| over [vmin, vmax]."""
    levels = (1 << bits) - 1
    return (vmax - vmin) / (2.0 * levels) if vmax > vmin else 0.0


def _pack_codes(codes: np.ndarray, bits: int) -> bytes:
    """Bit-pack codes; byte-aligned per value at ceil(bits/8) bytes."""
    nbytes = (bits + 7) // 8
    flat = codes.reshape(-1).astype(np.uint32)
    out = np.zeros((flat.size, nbytes), dtype=np.uint8)
    for b in range(nbytes):
        out[:, b] = (flat >> (8 * b)) & 0xFF
    return out.tobytes()


def _unpack_codes(raw: bytes, bits: int, count: int) -> np.ndarray:
    nbytes = (bits + 7) // 8
    arr = np.frombuffer(raw, dtype=np.uint8).reshape(count, nbytes)
    out = np.zeros(count, dtype=np.uint32)
    for b in range(nbytes):
        out |= arr[:, b].astype(np.uint32) << (8 * b)
    return out


@register_analysis("reduced_extract")
def _make_reduced_extract(config) -> "ReducedExtractAnalysis":
    return ReducedExtractAnalysis(
        output_dir=config.require("output_dir"),
        array=config.get("array", "data"),
        factor=config.get_int("factor", 2),
        bits=config.get_int("bits", 8),
    )


class ReducedExtractAnalysis(AnalysisAdaptor):
    """Writes downsampled + quantized per-rank extracts every step."""

    def __init__(self, output_dir, array: str = "data", factor: int = 2, bits: int = 8):
        super().__init__()
        if factor <= 0:
            raise ValueError("factor must be positive")
        if not 1 <= bits <= 32:
            raise ValueError("bits must be in 1..32")
        self.output_dir = str(output_dir)
        self.array = array
        self.factor = factor
        self.bits = bits
        self._comm = None
        self.bytes_raw = 0
        self.bytes_reduced = 0

    def initialize(self, comm) -> None:
        self._comm = comm
        if comm.rank == 0:
            os.makedirs(self.output_dir, exist_ok=True)
        comm.barrier()

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("ReducedExtractAnalysis requires an ImageData mesh")
        arr = data.get_array(Association.POINT, self.array)
        field = arr.values.reshape(mesh.dims)
        step = data.get_data_time_step()
        with timed(self.timers, "reduction::execute"):
            vmin = self._comm.allreduce(float(field.min()), MIN)
            vmax = self._comm.allreduce(float(field.max()), MAX)
            coarse = downsample_mean(field, self.factor)
            codes = quantize(coarse, self.bits, vmin, vmax)
            raw = _pack_codes(codes, self.bits)
            meta = {
                "step": step,
                "rank": self._comm.rank,
                "extent": [
                    mesh.extent.i0, mesh.extent.i1, mesh.extent.j0,
                    mesh.extent.j1, mesh.extent.k0, mesh.extent.k1,
                ],
                "coarse_shape": list(coarse.shape),
                "factor": self.factor,
                "bits": self.bits,
                "vmin": vmin,
                "vmax": vmax,
            }
            name = f"extract_step{step:06d}_rank{self._comm.rank:06d}"
            with open(os.path.join(self.output_dir, name + ".json"), "w") as fh:
                json.dump(meta, fh)
            with open(os.path.join(self.output_dir, name + ".bin"), "wb") as fh:
                fh.write(raw)
        self.bytes_raw += field.nbytes
        self.bytes_reduced += len(raw)
        return True

    def finalize(self) -> dict | None:
        return {
            "bytes_raw": self.bytes_raw,
            "bytes_reduced": self.bytes_reduced,
            "ratio": self.bytes_raw / max(self.bytes_reduced, 1),
        }


def read_reduced_extract(
    directory, step: int
) -> list[tuple[dict, np.ndarray]]:
    """Read back all of a step's extracts as ``(metadata, coarse_field)``."""
    out = []
    prefix = f"extract_step{step:06d}_rank"
    for name in sorted(os.listdir(directory)):
        if not (name.startswith(prefix) and name.endswith(".json")):
            continue
        with open(os.path.join(directory, name), "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        with open(
            os.path.join(directory, name.replace(".json", ".bin")), "rb"
        ) as fh:
            raw = fh.read()
        shape = tuple(meta["coarse_shape"])
        count = shape[0] * shape[1] * shape[2]
        codes = _unpack_codes(raw, meta["bits"], count).reshape(shape)
        field = dequantize(codes, meta["bits"], meta["vmin"], meta["vmax"])
        out.append((meta, field))
    return out
