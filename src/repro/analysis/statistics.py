"""In situ descriptive statistics.

The paper's SDMAV umbrella explicitly includes "a method for statistical
analysis" as the canonical in situ method class (Sec. 2.1).  This module
provides the standard one: single-pass distributed moments (count, mean,
variance, skewness proxy via third moment, min/max) merged across ranks
with Chan et al.'s pairwise update -- numerically stable and
decomposition-invariant -- plus histogram-backed quantile estimation.

Storage is O(1) per rank, the same only-extra-storage-is-constant property
the paper highlights for the histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association
from repro.mpi import ReduceOp
from repro.util.timers import timed


@dataclass
class Moments:
    """Running moments of a (distributed) sample."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0  # sum of squared deviations
    m3: float = 0.0  # sum of cubed deviations
    vmin: float = float("inf")
    vmax: float = float("-inf")

    @classmethod
    def from_values(cls, values: np.ndarray) -> "Moments":
        flat = np.asarray(values, dtype=np.float64).reshape(-1)
        if flat.size == 0:
            return cls()
        mean = float(flat.mean())
        d = flat - mean
        return cls(
            count=int(flat.size),
            mean=mean,
            m2=float((d * d).sum()),
            m3=float((d * d * d).sum()),
            vmin=float(flat.min()),
            vmax=float(flat.max()),
        )

    def merge(self, other: "Moments") -> "Moments":
        """Chan-style pairwise combination; exact for disjoint samples."""
        if other.count == 0:
            return Moments(**vars(self))
        if self.count == 0:
            return Moments(**vars(other))
        n1, n2 = self.count, other.count
        n = n1 + n2
        delta = other.mean - self.mean
        mean = self.mean + delta * n2 / n
        m2 = self.m2 + other.m2 + delta * delta * n1 * n2 / n
        m3 = (
            self.m3
            + other.m3
            + delta**3 * n1 * n2 * (n1 - n2) / (n * n)
            + 3.0 * delta * (n1 * other.m2 - n2 * self.m2) / n
        )
        return Moments(
            count=n,
            mean=mean,
            m2=m2,
            m3=m3,
            vmin=min(self.vmin, other.vmin),
            vmax=max(self.vmax, other.vmax),
        )

    @property
    def variance(self) -> float:
        """Population variance."""
        return self.m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def skewness(self) -> float:
        if self.count == 0 or self.m2 == 0:
            return 0.0
        return float(np.sqrt(self.count) * self.m3 / self.m2**1.5)


_MERGE = ReduceOp("moments_merge", lambda a, b: a.merge(b))


def parallel_moments(comm, values: np.ndarray) -> Moments:
    """Distributed moments of per-rank values; identical on every rank."""
    return comm.allreduce(Moments.from_values(values), _MERGE)


def quantiles_from_histogram(
    edges: np.ndarray, counts: np.ndarray, qs: list[float]
) -> list[float]:
    """Quantile estimates by linear interpolation within histogram bins."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        raise ValueError("histogram is empty")
    cum = np.concatenate([[0.0], np.cumsum(counts)]) / total
    out = []
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        idx = int(np.searchsorted(cum, q, side="right") - 1)
        idx = min(max(idx, 0), len(counts) - 1)
        lo, hi = cum[idx], cum[idx + 1]
        frac = 0.0 if hi == lo else (q - lo) / (hi - lo)
        out.append(float(edges[idx] + frac * (edges[idx + 1] - edges[idx])))
    return out


@register_analysis("statistics")
def _make_statistics(config) -> "StatisticsAnalysis":
    return StatisticsAnalysis(
        array=config.get("array", "data"),
        quantiles=[float(q) for q in config.get_list("quantiles", [0.25, 0.5, 0.75])],
        bins=config.get_int("bins", 128),
    )


class StatisticsAnalysis(AnalysisAdaptor):
    """Per-step distributed moments + histogram-backed quantiles."""

    def __init__(
        self,
        array: str = "data",
        quantiles: list[float] | None = None,
        bins: int = 128,
        association: Association = Association.POINT,
    ) -> None:
        super().__init__()
        if bins <= 0:
            raise ValueError("bins must be positive")
        self.array = array
        self.quantiles = quantiles if quantiles is not None else [0.25, 0.5, 0.75]
        self.bins = bins
        self.association = association
        self._comm = None
        self.history: list[dict] = []

    def initialize(self, comm) -> None:
        self._comm = comm

    def execute(self, data: DataAdaptor) -> bool:
        from repro.analysis.histogram import parallel_histogram
        from repro.data import GHOST_ARRAY_NAME

        values = data.get_array(self.association, self.array).values
        if GHOST_ARRAY_NAME in data.available_arrays(self.association):
            levels = data.get_array(self.association, GHOST_ARRAY_NAME).values
            values = values[levels == 0]
        with timed(self.timers, "statistics::execute"):
            moments = parallel_moments(self._comm, values)
            hist = parallel_histogram(self._comm, values, self.bins)
        if self._comm.rank == 0:
            qs = quantiles_from_histogram(hist.edges, hist.counts, self.quantiles)
            self.history.append(
                {
                    "step": data.get_data_time_step(),
                    "count": moments.count,
                    "mean": moments.mean,
                    "std": moments.std,
                    "skewness": moments.skewness,
                    "min": moments.vmin,
                    "max": moments.vmax,
                    "quantiles": dict(zip(self.quantiles, qs)),
                }
            )
        return True

    def finalize(self) -> list[dict] | None:
        return self.history or None
