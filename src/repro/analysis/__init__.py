"""In situ analysis methods (Sec. 3.3).

Each method exists in two forms, mirroring the paper's *Original* (direct
subroutine call) vs SENSEI-instrumented configurations:

- plain functions / classes operating on arrays + a communicator
  (:func:`parallel_histogram`, :class:`AutocorrelationState`), callable
  straight from a simulation loop; and
- :class:`~repro.core.adaptors.AnalysisAdaptor` wrappers
  (:class:`HistogramAnalysis`, :class:`AutocorrelationAnalysis`,
  :class:`SliceExtractAnalysis`) that consume a SENSEI data adaptor.

The pairing is what makes the Fig. 3/4 comparison (subroutine-called
autocorrelation vs SENSEI ``Autocorrelation``) an apples-to-apples test.
"""

from repro.analysis.histogram import (
    Histogram,
    HistogramAnalysis,
    local_histogram,
    parallel_histogram,
)
from repro.analysis.autocorrelation import (
    AutocorrelationAnalysis,
    AutocorrelationResult,
    AutocorrelationState,
)
from repro.analysis.slice_ import (
    SliceExtractAnalysis,
    SlicePlane,
    extract_axis_slice,
    gather_global_slice,
)
from repro.analysis.fields import (
    gradient_3d,
    gradient_magnitude,
    vorticity_magnitude,
)
from repro.analysis.statistics import (
    Moments,
    StatisticsAnalysis,
    parallel_moments,
    quantiles_from_histogram,
)
from repro.analysis.reduction import (
    ReducedExtractAnalysis,
    dequantize,
    downsample_mean,
    quantize,
    read_reduced_extract,
)
from repro.analysis.indexing import BitmapIndex, BitmapIndexAnalysis, query_step
from repro.analysis.hybrid import (
    HybridHistogramAnalysis,
    ThreadedAutocorrelationState,
)
from repro.analysis.probe import ObliqueSliceAnalysis, probe_points
from repro.analysis.particles import (
    DensityProjectionAnalysis,
    FriendsOfFriendsAnalysis,
    PowerSpectrumAnalysis,
    friends_of_friends,
    halo_sizes,
)

__all__ = [
    "Histogram",
    "HistogramAnalysis",
    "local_histogram",
    "parallel_histogram",
    "AutocorrelationState",
    "AutocorrelationAnalysis",
    "AutocorrelationResult",
    "SlicePlane",
    "extract_axis_slice",
    "gather_global_slice",
    "SliceExtractAnalysis",
    "gradient_3d",
    "gradient_magnitude",
    "vorticity_magnitude",
    "Moments",
    "StatisticsAnalysis",
    "parallel_moments",
    "quantiles_from_histogram",
    "ReducedExtractAnalysis",
    "downsample_mean",
    "quantize",
    "dequantize",
    "read_reduced_extract",
    "BitmapIndex",
    "BitmapIndexAnalysis",
    "query_step",
    "HybridHistogramAnalysis",
    "ThreadedAutocorrelationState",
    "ObliqueSliceAnalysis",
    "probe_points",
    "DensityProjectionAnalysis",
    "PowerSpectrumAnalysis",
    "FriendsOfFriendsAnalysis",
    "friends_of_friends",
    "halo_sizes",
]
