"""In situ bitmap indexing (the SDMAV "indexing" operation).

FastBit-style binned bitmap indexes, built in situ while the data is in
memory: for each value bin, a bitmap marks which cells fall in it.  Post
hoc, range queries over the *indexed* data answer in time proportional to
the bitmap size, never rescanning the raw field -- and edge bins give exact
lower/upper bounds on the count without raw data at all (candidate checks
tighten them when the raw values are available).

This is the index-acceleration half of the paper's SDMAV spectrum
("transformations, compression, subsetting, indexing", Sec. 2.1) built on
the same in situ machinery as everything else.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association
from repro.mpi import MAX, MIN
from repro.util.timers import timed


@dataclass
class RangeCount:
    """Result of a range query against a binned bitmap index."""

    lower: int  # cells certainly inside [lo, hi)
    upper: int  # lower + candidates in the partially covered edge bins
    exact: int | None = None  # set when raw values refined the candidates


class BitmapIndex:
    """A binned bitmap index over one block of values."""

    def __init__(self, edges: np.ndarray, bitmaps: np.ndarray, n: int) -> None:
        self.edges = np.asarray(edges, dtype=np.float64)
        self.bitmaps = np.asarray(bitmaps, dtype=np.uint8)  # (bins, packed)
        self.n = int(n)
        if self.bitmaps.shape[0] != self.edges.size - 1:
            raise ValueError("one bitmap per bin required")

    @classmethod
    def build(cls, values: np.ndarray, bins: int, vmin: float, vmax: float) -> "BitmapIndex":
        if bins <= 0:
            raise ValueError("bins must be positive")
        flat = np.asarray(values, dtype=np.float64).reshape(-1)
        if vmax > vmin:
            edges = np.linspace(vmin, vmax, bins + 1)
        else:
            # Degenerate range: bin 0's interval must still contain vmin.
            edges = vmin + np.linspace(0.0, 1.0, bins + 1)
        if flat.size == 0:
            packed = np.zeros((bins, 0), dtype=np.uint8)
            return cls(edges, packed, 0)
        # Bin membership must agree exactly with the stored edges
        # (searchsorted, not multiplication) or edge values would leak
        # between "fully covered" and candidate bins and break soundness.
        idx = np.searchsorted(edges, flat, side="right") - 1
        np.clip(idx, 0, bins - 1, out=idx)
        bitmaps = []
        for b in range(bins):
            bitmaps.append(np.packbits(idx == b))
        return cls(edges, np.stack(bitmaps), flat.size)

    @property
    def bins(self) -> int:
        return self.edges.size - 1

    def bin_count(self, b: int) -> int:
        return int(np.unpackbits(self.bitmaps[b], count=self.n).sum())

    def bin_mask(self, b: int) -> np.ndarray:
        return np.unpackbits(self.bitmaps[b], count=self.n).astype(bool)

    def nbytes(self) -> int:
        return self.bitmaps.nbytes + self.edges.nbytes

    def query(
        self, lo: float, hi: float, raw_values: np.ndarray | None = None
    ) -> RangeCount:
        """Count cells with ``lo <= value < hi``.

        Fully covered bins contribute exactly; edge bins contribute to the
        upper bound, and are refined to an exact count when ``raw_values``
        are supplied (the FastBit candidate-check step).
        """
        if hi < lo:
            raise ValueError("query range is empty (hi < lo)")
        lower = 0
        candidates_mask = np.zeros(self.n, dtype=bool)
        for b in range(self.bins):
            b_lo, b_hi = self.edges[b], self.edges[b + 1]
            last = b == self.bins - 1
            # Bin b holds [b_lo, b_hi), except the last, which also holds
            # values equal to b_hi (vmax is clipped in).
            bin_max_exclusive = b_hi if not last else np.nextafter(b_hi, np.inf)
            if b_lo >= hi or bin_max_exclusive <= lo:
                continue
            covers_low = lo <= b_lo
            covers_high = (b_hi <= hi) if not last else (b_hi < hi)
            if covers_low and covers_high:
                lower += self.bin_count(b)
            else:
                candidates_mask |= self.bin_mask(b)
        upper = lower + int(candidates_mask.sum())
        exact = None
        if raw_values is not None:
            flat = np.asarray(raw_values, dtype=np.float64).reshape(-1)
            if flat.size != self.n:
                raise ValueError("raw_values length does not match the index")
            cand = flat[candidates_mask]
            exact = lower + int(((cand >= lo) & (cand < hi)).sum())
        return RangeCount(lower=lower, upper=upper, exact=exact)


@register_analysis("bitmap_index")
def _make_bitmap_index(config) -> "BitmapIndexAnalysis":
    return BitmapIndexAnalysis(
        output_dir=config.require("output_dir"),
        array=config.get("array", "data"),
        bins=config.get_int("bins", 32),
    )


class BitmapIndexAnalysis(AnalysisAdaptor):
    """Builds and stores a per-rank bitmap index every step."""

    def __init__(self, output_dir, array: str = "data", bins: int = 32,
                 association: Association = Association.POINT) -> None:
        super().__init__()
        if bins <= 0:
            raise ValueError("bins must be positive")
        self.output_dir = str(output_dir)
        self.array = array
        self.bins = bins
        self.association = association
        self._comm = None
        self.bytes_indexed = 0
        self.bytes_index = 0

    def initialize(self, comm) -> None:
        self._comm = comm
        if comm.rank == 0:
            os.makedirs(self.output_dir, exist_ok=True)
        comm.barrier()

    def execute(self, data: DataAdaptor) -> bool:
        values = data.get_array(self.association, self.array).values
        step = data.get_data_time_step()
        with timed(self.timers, "bitmap_index::execute"):
            vmin = self._comm.allreduce(float(values.min()), MIN)
            vmax = self._comm.allreduce(float(values.max()), MAX)
            index = BitmapIndex.build(values, self.bins, vmin, vmax)
            name = f"index_step{step:06d}_rank{self._comm.rank:06d}"
            meta = {
                "step": step,
                "rank": self._comm.rank,
                "bins": self.bins,
                "n": index.n,
                "edges": index.edges.tolist(),
                "bitmap_shape": list(index.bitmaps.shape),
            }
            with open(os.path.join(self.output_dir, name + ".json"), "w") as fh:
                json.dump(meta, fh)
            with open(os.path.join(self.output_dir, name + ".bin"), "wb") as fh:
                fh.write(index.bitmaps.tobytes())
        self.bytes_indexed += values.nbytes
        self.bytes_index += index.nbytes()
        return True

    def finalize(self) -> dict | None:
        return {
            "bytes_indexed": self.bytes_indexed,
            "bytes_index": self.bytes_index,
        }


def load_index(directory, step: int, rank: int) -> BitmapIndex:
    name = f"index_step{step:06d}_rank{rank:06d}"
    with open(os.path.join(directory, name + ".json"), "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    with open(os.path.join(directory, name + ".bin"), "rb") as fh:
        raw = fh.read()
    bitmaps = np.frombuffer(raw, dtype=np.uint8).reshape(meta["bitmap_shape"])
    return BitmapIndex(np.array(meta["edges"]), bitmaps, meta["n"])


def query_step(
    directory, step: int, nranks: int, lo: float, hi: float
) -> RangeCount:
    """Aggregate a range query across every rank's stored index."""
    lower = upper = 0
    for rank in range(nranks):
        rc = load_index(directory, step, rank).query(lo, hi)
        lower += rc.lower
        upper += rc.upper
    return RangeCount(lower=lower, upper=upper)
