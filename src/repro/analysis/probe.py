"""Distributed probing and oblique slices.

The axis-aligned slice (:mod:`repro.analysis.slice_`) covers the paper's
measured configurations; production Catalyst/Libsim pipelines also slice
along arbitrary plane orientations.  This module adds that capability with
correct cross-block interpolation: a one-layer halo exchange makes each
cell's full corner set locally available, every probe point is owned by
exactly one rank (the one whose point block contains the containing cell's
lower corner), and trilinear samples are gathered to the root.

Because ownership is a pure function of the point position, the
decomposed probe is *exactly* equal to a serial probe -- the same
invariant the pixel-ownership rasterizer provides for axis slices.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association, ImageData
from repro.mpi import SUM
from repro.mpi.halo import HaloExchanger
from repro.render.colormap import VIRIDIS, Colormap
from repro.render.png import encode_png
from repro.util.timers import timed


def probe_points(
    comm,
    exchanger: HaloExchanger,
    owned_field: np.ndarray,
    points: np.ndarray,
    spacing: tuple[float, float, float],
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Trilinearly sample a decomposed field at arbitrary physical points.

    Parameters
    ----------
    exchanger:
        The :class:`HaloExchanger` describing this rank's block (depth >= 1).
    owned_field:
        The rank's owned values, shape ``exchanger.extent.shape``.
    points:
        ``(n, 3)`` physical query positions (identical on every rank).

    Returns
    -------
    (values, valid):
        On every rank, the complete ``(n,)`` sample array (allreduced) and
        a boolean mask of points inside the domain.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError("points must be (n, 3)")
    ghosted = exchanger.allocate_ghosted(dtype=np.float64)
    exchanger.scatter_field(ghosted, owned_field)
    d = exchanger.depth
    ext = exchanger.extent
    nx, ny, nz = exchanger.global_dims

    # Continuous index coordinates.
    c = np.empty_like(pts)
    for a in range(3):
        c[:, a] = (pts[:, a] - origin[a]) / spacing[a]
    inside = (
        (c[:, 0] >= 0) & (c[:, 0] <= nx - 1)
        & (c[:, 1] >= 0) & (c[:, 1] <= ny - 1)
        & (c[:, 2] >= 0) & (c[:, 2] <= nz - 1)
    )
    # Containing cell's lower corner, clipped so points exactly on the
    # domain's high face use the last cell.
    i0 = np.clip(np.floor(c[:, 0]).astype(np.int64), 0, nx - 2)
    j0 = np.clip(np.floor(c[:, 1]).astype(np.int64), 0, ny - 2)
    k0 = np.clip(np.floor(c[:, 2]).astype(np.int64), 0, nz - 2)
    # Ownership: the rank whose POINT block contains the lower corner.
    mine = (
        inside
        & (i0 >= ext.i0) & (i0 <= ext.i1)
        & (j0 >= ext.j0) & (j0 <= ext.j1)
        & (k0 >= ext.k0) & (k0 <= ext.k1)
    )
    values = np.zeros(pts.shape[0])
    if mine.any():
        li = i0[mine] - ext.i0 + d
        lj = j0[mine] - ext.j0 + d
        lk = k0[mine] - ext.k0 + d
        fx = (c[mine, 0] - i0[mine])[:, None]
        fy = (c[mine, 1] - j0[mine])[:, None]
        fz = c[mine, 2] - k0[mine]
        # Gather the 8 corners from the ghosted block.
        v = np.empty((int(mine.sum()), 8))
        for corner in range(8):
            oi, oj, ok = corner & 1, (corner >> 1) & 1, (corner >> 2) & 1
            v[:, corner] = ghosted[li + oi, lj + oj, lk + ok]
        wx = np.concatenate([1 - fx, fx], axis=1)  # (n, 2)
        fy1 = fy[:, 0]
        sample = (
            (v[:, 0] * wx[:, 0] + v[:, 1] * wx[:, 1]) * (1 - fy1)
            + (v[:, 2] * wx[:, 0] + v[:, 3] * wx[:, 1]) * fy1
        ) * (1 - fz) + (
            (v[:, 4] * wx[:, 0] + v[:, 5] * wx[:, 1]) * (1 - fy1)
            + (v[:, 6] * wx[:, 0] + v[:, 7] * wx[:, 1]) * fy1
        ) * fz
        values[mine] = sample
    # Each point has exactly one owner; a sum-allreduce assembles all.
    values = comm.allreduce(values, SUM)
    return values, inside


def plane_sample_points(
    origin: tuple[float, float, float],
    normal: tuple[float, float, float],
    width: int,
    height: int,
    extent: float,
) -> np.ndarray:
    """A (width x height) lattice of points on the plane through ``origin``.

    The in-plane axes are built from the normal via Gram-Schmidt against
    the least-aligned coordinate axis; samples span ``[-extent, extent]``
    in both plane directions.
    """
    n = np.asarray(normal, dtype=np.float64)
    norm = np.linalg.norm(n)
    if norm == 0:
        raise ValueError("normal must be non-zero")
    n = n / norm
    helper = np.zeros(3)
    helper[int(np.argmin(np.abs(n)))] = 1.0
    u = np.cross(n, helper)
    u /= np.linalg.norm(u)
    v = np.cross(n, u)
    us = np.linspace(-extent, extent, width)
    vs = np.linspace(-extent, extent, height)
    uu, vv = np.meshgrid(us, vs, indexing="xy")
    pts = (
        np.asarray(origin)[None, :]
        + uu.reshape(-1, 1) * u[None, :]
        + vv.reshape(-1, 1) * v[None, :]
    )
    return pts


@register_analysis("oblique_slice")
def _make_oblique(config) -> "ObliqueSliceAnalysis":
    return ObliqueSliceAnalysis(
        origin=tuple(config.get_list("origin", [0.5, 0.5, 0.5])),
        normal=tuple(config.get_list("normal", [1.0, 1.0, 0.0])),
        array=config.get("array", "data"),
        resolution=(config.get_int("width", 128), config.get_int("height", 128)),
        extent=config.get_float("extent", 0.5),
        output_dir=config.get("output_dir"),
    )


class ObliqueSliceAnalysis(AnalysisAdaptor):
    """Renders an arbitrarily oriented slice plane each step."""

    def __init__(
        self,
        origin: tuple[float, float, float],
        normal: tuple[float, float, float],
        array: str = "data",
        resolution: tuple[int, int] = (128, 128),
        extent: float = 0.5,
        colormap: Colormap = VIRIDIS,
        output_dir=None,
    ) -> None:
        super().__init__()
        self.origin = origin
        self.normal = normal
        self.array = array
        self.resolution = resolution
        self.extent = extent
        self.colormap = colormap
        self.output_dir = output_dir
        self._comm = None
        self._exchanger: HaloExchanger | None = None
        self.last_png: bytes | None = None
        self.images_written = 0

    def initialize(self, comm) -> None:
        self._comm = comm
        if self.output_dir is not None and comm.rank == 0:
            import os

            os.makedirs(self.output_dir, exist_ok=True)
        comm.barrier()

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("oblique slice requires an ImageData mesh")
        if self._exchanger is None:
            whole = mesh.whole_extent
            self._exchanger = HaloExchanger(
                self._comm,
                whole.shape,
                depth=1,
                periodic=(False, False, False),
            )
        field = data.get_array(Association.POINT, self.array).values.reshape(
            mesh.dims
        )
        w, h = self.resolution
        with timed(self.timers, "oblique::probe"):
            pts = plane_sample_points(self.origin, self.normal, w, h, self.extent)
            values, inside = probe_points(
                self._comm, self._exchanger, field, pts,
                spacing=mesh.spacing, origin=mesh.origin,
            )
        if self._comm.rank == 0:
            with timed(self.timers, "oblique::render"):
                grid = values.reshape(h, w)
                mask = inside.reshape(h, w)
                visible = grid[mask]
                vmin = float(visible.min()) if visible.size else 0.0
                vmax = float(visible.max()) if visible.size else 1.0
                rgb = self.colormap.map(grid, vmin=vmin, vmax=vmax)
                rgb[~mask] = 0
                blob = encode_png(rgb)
            self.last_png = blob
            if self.output_dir is not None:
                import os

                path = os.path.join(
                    self.output_dir,
                    f"oblique_{data.get_data_time_step():06d}.png",
                )
                with open(path, "wb") as fh:
                    fh.write(blob)
            self.images_written += 1
        return True

    def finalize(self) -> dict | None:
        if self._comm is not None and self._comm.rank == 0:
            return {"images_written": self.images_written}
        return None


@register_analysis("sensors")
def _make_sensors(config) -> "SensorProbeAnalysis":
    pts = config.get_list("points")
    return SensorProbeAnalysis(
        points=np.asarray(pts, dtype=np.float64),
        array=config.get("array", "data"),
    )


class SensorProbeAnalysis(AnalysisAdaptor):
    """Virtual sensors: fixed probe points sampled every step.

    The second temporal in situ method (after the autocorrelation the paper
    highlights as novel): per-step trilinear samples at fixed physical
    locations, accumulated into per-sensor time series -- the "point
    gauge" instrumentation experimental campaigns standardly place in
    simulations.  O(sensors) extra storage per step.
    """

    def __init__(self, points: np.ndarray, array: str = "data") -> None:
        super().__init__()
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, 3) array")
        self.points = pts
        self.array = array
        self._comm = None
        self._exchanger: HaloExchanger | None = None
        self.times: list[float] = []
        self.series: list[np.ndarray] = []  # one (n_sensors,) row per step
        self.inside: np.ndarray | None = None

    def initialize(self, comm) -> None:
        self._comm = comm

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("sensor probes require an ImageData mesh")
        if self._exchanger is None:
            self._exchanger = HaloExchanger(
                self._comm, mesh.whole_extent.shape, depth=1,
                periodic=(False, False, False),
            )
        field = data.get_array(Association.POINT, self.array).values.reshape(
            mesh.dims
        )
        with timed(self.timers, "sensors::probe"):
            values, inside = probe_points(
                self._comm, self._exchanger, field, self.points,
                spacing=mesh.spacing, origin=mesh.origin,
            )
        self.times.append(data.get_data_time())
        self.series.append(values)
        self.inside = inside
        return True

    def finalize(self) -> dict | None:
        if self._comm is None or self._comm.rank != 0 or not self.series:
            return None
        return {
            "times": np.array(self.times),
            "series": np.stack(self.series),  # (steps, sensors)
            "inside": self.inside,
        }
