"""Derived fields computed in situ.

The AVF-LESLIE adaptor "calculates vorticity magnitude" before handing data
to Libsim (Sec. 4.2.2); the proxies use these helpers for that and for
generic gradient-based quantities.  All operators use second-order central
differences in the interior and one-sided differences at block boundaries,
computed with vectorized ``np.gradient``-style slicing (no Python loops over
cells).
"""

from __future__ import annotations

import numpy as np


def gradient_3d(
    field: np.ndarray, spacing: tuple[float, float, float]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-axis partial derivatives of a 3-D scalar field."""
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 3:
        raise ValueError("gradient_3d requires a 3-D field")
    if any(s <= 0 for s in spacing):
        raise ValueError("spacing must be positive")
    # np.gradient handles interior central + boundary one-sided differences,
    # but degenerates on axes of length 1; guard those with zeros.
    grads: list[np.ndarray] = []
    for axis in range(3):
        if f.shape[axis] < 2:
            grads.append(np.zeros_like(f))
        else:
            grads.append(np.gradient(f, spacing[axis], axis=axis))
    return grads[0], grads[1], grads[2]


def gradient_magnitude(
    field: np.ndarray, spacing: tuple[float, float, float]
) -> np.ndarray:
    """|grad f| of a 3-D scalar field."""
    gx, gy, gz = gradient_3d(field, spacing)
    return np.sqrt(gx * gx + gy * gy + gz * gz)


def vorticity_magnitude(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    spacing: tuple[float, float, float],
) -> np.ndarray:
    """|curl (u, v, w)| on a uniform 3-D grid.

    curl = (dw/dy - dv/dz, du/dz - dw/dx, dv/dx - du/dy).
    """
    if not (u.shape == v.shape == w.shape):
        raise ValueError("velocity components must have identical shapes")
    _, du_dy, du_dz = gradient_3d(u, spacing)
    dv_dx, _, dv_dz = gradient_3d(v, spacing)
    dw_dx, dw_dy, _ = gradient_3d(w, spacing)
    wx = dw_dy - dv_dz
    wy = du_dz - dw_dx
    wz = dv_dx - du_dy
    return np.sqrt(wx * wx + wy * wy + wz * wz)
