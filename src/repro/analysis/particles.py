"""In situ analyses over ragged particle populations.

The three methods the ROADMAP names for the particle workload family,
each stressing a different reduction topology over variable-per-rank
data:

- :class:`DensityProjectionAnalysis` -- CIC mass deposit onto an axis
  projection plane, summed with an exact int64 ``allreduce`` and rendered
  through the same colormap + PNG encoder as the Catalyst/libsim slice
  path.  PNG bytes are identical across rank counts and SPMD backends.
- :class:`PowerSpectrumAnalysis` -- 3-D CIC deposit, int64 ``allreduce``,
  FFT of the (replicated, bit-identical) density contrast, radially
  binned ``P(k)``.
- :class:`FriendsOfFriendsAnalysis` -- ragged ``allgather`` of the global
  population, canonical id-order union-find clustering, and a min/max
  halo-count reduction that doubles as a cross-rank divergence check.

All three consume ``position`` / ``mass`` / ``id`` attributes from any
data adaptor exposing a :class:`~repro.data.ParticleSet`-shaped
population; none mutates adaptor data, so they run unmodified under the
sanitizer's write guard.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.data import Association
from repro.data.particles import (
    DEPOSIT_SCALE,
    MASS,
    PARTICLE_ID,
    POSITION,
    cic_deposit_int,
    cic_deposit_int_2d,
)
from repro.core.configurable import register_analysis
from repro.mpi import MAX, MIN, SUM
from repro.render import VIRIDIS, Colormap, encode_png
from repro.util.timers import timed


class ParticleAnalysisError(RuntimeError):
    """An analysis-level invariant broke (e.g. rank-divergent halo counts)."""


def _particle_inputs(data: DataAdaptor) -> tuple[np.ndarray, np.ndarray]:
    """(positions (n,3), masses (n,)) from the adaptor, possibly empty."""
    pos = data.get_array(Association.POINT, POSITION).as_aos()
    mass = data.get_array(Association.POINT, MASS).values
    return pos, mass


@register_analysis("density_projection")
def _make_density_projection(config) -> "DensityProjectionAnalysis":
    return DensityProjectionAnalysis(
        grid=config.get_int("grid", 32),
        axis=config.get_int("axis", 0),
        output_dir=config.get("output_dir"),
        frequency=config.get_int("frequency", 1),
    )


class DensityProjectionAnalysis(AnalysisAdaptor):
    """Project particle mass along one axis and render it as a PNG.

    The projection plane is deposited in fixed-point int64 and summed
    with one ``allreduce``, so every rank holds the identical plane and
    the encoded PNG bytes are a pure function of the global particle
    population -- the property the 1/2/4-rank equivalence tests assert.
    """

    def __init__(
        self,
        grid: int = 32,
        axis: int = 0,
        output_dir: str | None = None,
        colormap: Colormap = VIRIDIS,
        frequency: int = 1,
        compression_level: int = 6,
    ) -> None:
        super().__init__()
        if grid <= 0:
            raise ValueError("grid must be positive")
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.grid = grid
        self.axis = axis
        self.output_dir = output_dir
        self.colormap = colormap
        self.frequency = frequency
        self.compression_level = compression_level
        self._comm = None
        #: PNG bytes of the most recent projection (every rank).
        self.last_png: bytes | None = None
        #: Per-executed-step CRC-32 of the PNG bytes, in step order.
        self.png_crcs: list[int] = []
        self.images_written = 0

    def initialize(self, comm) -> None:
        self._comm = comm
        if self.output_dir is not None and comm.rank == 0:
            os.makedirs(self.output_dir, exist_ok=True)

    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        if step % self.frequency != 0:
            return True
        pos, mass = _particle_inputs(data)
        with timed(self.timers, "density_projection::deposit"):
            local = cic_deposit_int_2d(pos, mass, self.grid, axis=self.axis)
        with timed(self.timers, "density_projection::reduce"):
            total = self._comm.allreduce(local, SUM)
        with timed(self.timers, "density_projection::render"):
            plane = total.astype(np.float64) / DEPOSIT_SCALE
            rgb = self.colormap.map(plane)
            self.last_png = encode_png(
                rgb, compression_level=self.compression_level
            )
        self.png_crcs.append(zlib.crc32(self.last_png))
        if self.output_dir is not None and self._comm.rank == 0:
            path = os.path.join(
                self.output_dir, f"density_proj_{step:06d}.png"
            )
            with open(path, "wb") as fh:
                fh.write(self.last_png)
            self.images_written += 1
        return True

    def finalize(self) -> dict:
        return {"steps": len(self.png_crcs), "png_crcs": list(self.png_crcs)}


@register_analysis("power_spectrum")
def _make_power_spectrum(config) -> "PowerSpectrumAnalysis":
    return PowerSpectrumAnalysis(
        grid=config.get_int("grid", 32),
        output_dir=config.get("output_dir"),
        frequency=config.get_int("frequency", 1),
    )


class PowerSpectrumAnalysis(AnalysisAdaptor):
    """Radially binned density power spectrum ``P(k)``.

    Deposit (int64, exact) -> ``allreduce`` -> FFT of the density
    contrast on the replicated grid -> spherical-shell average over
    integer wavenumber bins.  Every rank computes the identical spectrum;
    the per-step spectra are kept and written as JSON at finalize.
    """

    def __init__(
        self,
        grid: int = 32,
        output_dir: str | None = None,
        frequency: int = 1,
    ) -> None:
        super().__init__()
        if grid <= 0:
            raise ValueError("grid must be positive")
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.grid = grid
        self.output_dir = output_dir
        self.frequency = frequency
        self._comm = None
        self._bin_index: np.ndarray | None = None
        self._bin_counts: np.ndarray | None = None
        #: Per-executed-step spectra: list of (step, P(k) list).
        self.history: list[tuple[int, list[float]]] = []

    def initialize(self, comm) -> None:
        self._comm = comm
        g = self.grid
        kx = np.fft.fftfreq(g, d=1.0 / g)
        kz = np.fft.rfftfreq(g, d=1.0 / g)
        kmag = np.sqrt(
            kx[:, None, None] ** 2 + kx[None, :, None] ** 2 + kz[None, None, :] ** 2
        )
        self._bin_index = np.floor(kmag).astype(np.int64).reshape(-1)
        self._bin_counts = np.bincount(
            self._bin_index, minlength=self.n_bins
        ).astype(np.float64)
        if self.output_dir is not None and comm.rank == 0:
            os.makedirs(self.output_dir, exist_ok=True)

    @property
    def n_bins(self) -> int:
        # Nyquist shell: |k| runs to grid/2 per axis.
        return self.grid // 2 + 1

    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        if step % self.frequency != 0:
            return True
        pos, mass = _particle_inputs(data)
        with timed(self.timers, "power_spectrum::deposit"):
            local = cic_deposit_int(pos, mass, self.grid)
        with timed(self.timers, "power_spectrum::reduce"):
            total = self._comm.allreduce(local, SUM)
        with timed(self.timers, "power_spectrum::fft"):
            rho = total.astype(np.float64) / DEPOSIT_SCALE
            mean = rho.mean()
            delta = rho / mean - 1.0 if mean > 0 else rho
            fk = np.fft.rfftn(delta)
            power = (fk.real**2 + fk.imag**2).reshape(-1)
            shell = np.bincount(
                self._bin_index, weights=power, minlength=self._bin_counts.size
            )
            spectrum = shell[: self.n_bins] / self._bin_counts[: self.n_bins]
        self.history.append((step, [float(v) for v in spectrum]))
        return True

    def finalize(self) -> dict:
        result = {
            "k": list(range(self.n_bins)),
            "steps": [s for s, _ in self.history],
            "power": [p for _, p in self.history],
        }
        if self.output_dir is not None and self._comm.rank == 0:
            path = os.path.join(self.output_dir, "power_spectrum.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
        return result


# -- friends-of-friends --------------------------------------------------------


def friends_of_friends(
    positions: np.ndarray, linking_length: float
) -> np.ndarray:
    """Periodic friends-of-friends labels over a unit box.

    Particles closer than ``linking_length`` (minimum-image metric) are
    linked; connected components are halos.  Returns an ``(n,)`` int64
    label array where each particle's label is the smallest input index
    in its halo -- a canonical labeling, so the result is independent of
    traversal order.  Brute-force pairwise distances in blocks: exact,
    and fast enough for the miniapp populations the tests use.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    parent = np.arange(n, dtype=np.int64)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]  # path halving
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri == rj:
            return
        # Union by smaller root: keeps labels canonical (min index wins).
        if ri < rj:
            parent[rj] = ri
        else:
            parent[ri] = rj

    ll2 = float(linking_length) ** 2
    block = 512
    for i0 in range(0, n, block):
        a = pos[i0 : i0 + block]
        for j0 in range(i0, n, block):
            b = pos[j0 : j0 + block]
            d = a[:, None, :] - b[None, :, :]
            d -= np.rint(d)  # minimum image on the periodic unit box
            close = (d * d).sum(axis=-1) <= ll2
            ii, jj = np.nonzero(close)
            for i, j in zip(ii + i0, jj + j0):
                if i < j:
                    union(int(i), int(j))
    return np.fromiter((find(int(i)) for i in range(n)), np.int64, count=n)


def halo_sizes(labels: np.ndarray, min_members: int = 2) -> list[int]:
    """Halo populations (descending) with at least ``min_members``."""
    if labels.size == 0:
        return []
    counts = np.bincount(labels)
    sizes = counts[counts >= min_members]
    return sorted((int(s) for s in sizes), reverse=True)


@register_analysis("fof")
def _make_fof(config) -> "FriendsOfFriendsAnalysis":
    return FriendsOfFriendsAnalysis(
        linking_length=config.get_float("linking_length", 0.05),
        min_members=config.get_int("min_members", 2),
        output_dir=config.get("output_dir"),
        frequency=config.get_int("frequency", 1),
    )


class FriendsOfFriendsAnalysis(AnalysisAdaptor):
    """Friends-of-friends halo finder over the gathered global population.

    The per-rank populations are ragged (and may be empty); an
    ``allgather`` assembles the global set, a stable sort by persistent
    particle id imposes the canonical order, and the union-find labels
    are decomposition-independent by construction.  The halo *count* is
    then pushed through min/max reductions -- a cheap cross-rank
    agreement check that turns any divergence into an immediate error
    instead of silently inconsistent artifacts.
    """

    def __init__(
        self,
        linking_length: float = 0.05,
        min_members: int = 2,
        output_dir: str | None = None,
        frequency: int = 1,
    ) -> None:
        super().__init__()
        if linking_length <= 0:
            raise ValueError("linking_length must be positive")
        if min_members < 1:
            raise ValueError("min_members must be >= 1")
        self.linking_length = linking_length
        self.min_members = min_members
        self.output_dir = output_dir
        self.frequency = frequency
        self._comm = None
        #: Per-executed-step (step, halo_count, sizes descending).
        self.history: list[tuple[int, int, list[int]]] = []

    def initialize(self, comm) -> None:
        self._comm = comm
        if self.output_dir is not None and comm.rank == 0:
            os.makedirs(self.output_dir, exist_ok=True)

    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        if step % self.frequency != 0:
            return True
        pos = data.get_array(Association.POINT, POSITION).as_aos()
        ids = data.get_array(Association.POINT, PARTICLE_ID).values
        with timed(self.timers, "fof::gather"):
            # Ragged gather: each rank contributes its own (possibly
            # zero-length) block; payload sizes differ per rank.
            parts = self._comm.allgather(
                (np.ascontiguousarray(ids), np.ascontiguousarray(pos))
            )
        with timed(self.timers, "fof::cluster"):
            all_ids = np.concatenate([p[0] for p in parts])
            all_pos = np.concatenate([p[1] for p in parts])
            order = np.argsort(all_ids, kind="stable")
            labels = friends_of_friends(all_pos[order], self.linking_length)
            sizes = halo_sizes(labels, self.min_members)
        count = len(sizes)
        with timed(self.timers, "fof::reduce"):
            lo = self._comm.allreduce(count, MIN)
            hi = self._comm.allreduce(count, MAX)
        if lo != hi:
            raise ParticleAnalysisError(
                f"rank-divergent halo counts at step {step}: min {lo}, max {hi}"
            )
        self.history.append((step, count, sizes))
        return True

    def finalize(self) -> dict:
        result = {
            "steps": [s for s, _, _ in self.history],
            "halo_counts": [c for _, c, _ in self.history],
            "halo_sizes": [sz for _, _, sz in self.history],
            "linking_length": self.linking_length,
            "min_members": self.min_members,
        }
        if self.output_dir is not None and self._comm.rank == 0:
            path = os.path.join(self.output_dir, "halos.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
        return result
