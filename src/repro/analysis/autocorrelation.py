"""Temporal autocorrelation (Sec. 3.3) -- the paper's time-dependent analysis.

"Given a signal f(x) and a delay t, we find sum_x f(x) f(x+t).  Starting
with an integer time delay t, we maintain in a circular buffer, for each
grid cell, a window of values of the last t time steps.  We also maintain a
window of running correlations for each t' <= t.  When called, the analysis
updates the autocorrelations and the circular buffer.  When the execution
completes, all processes perform a global reduction to determine the top k
autocorrelations for each delay t' <= t. ... Each MPI rank performs O(N^3)
work per time step ... and maintains two circular buffers, each of size
O(t N^3)."

For periodic oscillators the top-k reduction identifies the oscillator
centers, which is the correctness check the tests use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association
from repro.util.timers import timed


@dataclass
class AutocorrelationResult:
    """Top-k autocorrelations per delay (root rank).

    ``top[d]`` is a list of ``(correlation, global_cell_index)`` pairs,
    strongest first, for delay ``d`` in ``0..window-1``.
    """

    window: int
    k: int
    top: list[list[tuple[float, int]]]


class AutocorrelationState:
    """The method itself, independent of SENSEI (the *Original* form).

    Parameters
    ----------
    window:
        The maximum integer delay ``t``; correlations are maintained for
        every delay ``0 <= t' < window``.
    n_local:
        Number of local grid cells.
    global_offset:
        Global index of this rank's first cell, used to report top-k hits
        in global coordinates.  Rank-local cells must be globally
        contiguous under this offset (true for the flattened regular
        decomposition used by the miniapp's analyses).
    """

    def __init__(self, window: int, n_local: int, global_offset: int = 0, memory=None):
        if window <= 0:
            raise ValueError("window must be positive")
        if n_local < 0:
            raise ValueError("n_local must be non-negative")
        self.window = window
        self.n_local = n_local
        self.global_offset = global_offset
        # The two O(window * N^3) circular buffers from the paper.
        self.values = np.zeros((window, n_local), dtype=np.float64)
        self.corr = np.zeros((window, n_local), dtype=np.float64)
        self.steps_seen = 0
        if memory is not None:
            memory.track_array(self.values, label="autocorrelation::values")
            memory.track_array(self.corr, label="autocorrelation::corr")

    def update(self, values: np.ndarray) -> None:
        """Fold one time step's local field into the running correlations."""
        flat = np.asarray(values).reshape(-1)
        if flat.shape[0] != self.n_local:
            raise ValueError(
                f"expected {self.n_local} local values, got {flat.shape[0]}"
            )
        s = self.steps_seen
        slot = s % self.window
        self.values[slot] = flat
        # For each delay d (up to the number of steps actually seen),
        # corr[d] += f(s) * f(s - d).
        max_d = min(s + 1, self.window)
        for d in range(max_d):
            past = self.values[(s - d) % self.window]
            self.corr[d] += flat * past
        self.steps_seen += 1

    def local_top_k(self, k: int) -> list[list[tuple[float, int]]]:
        """Per-delay top-k of the local correlations, in global indices."""
        if k <= 0:
            raise ValueError("k must be positive")
        out: list[list[tuple[float, int]]] = []
        for d in range(self.window):
            row = self.corr[d]
            if row.size == 0:
                out.append([])
                continue
            kk = min(k, row.size)
            idx = np.argpartition(row, -kk)[-kk:]
            idx = idx[np.argsort(row[idx])[::-1]]
            out.append(
                [(float(row[i]), int(i) + self.global_offset) for i in idx]
            )
        return out

    def finalize(self, comm, k: int, root: int = 0) -> AutocorrelationResult | None:
        """Global top-k merge: gather per-rank candidates, merge on root.

        This is the final reduction whose cost shows up as the only
        non-negligible finalize bar in Fig. 5.
        """
        candidates = comm.gather(self.local_top_k(k), root=root)
        if comm.rank != root:
            return None
        merged: list[list[tuple[float, int]]] = []
        for d in range(self.window):
            pool = [item for per_rank in candidates for item in per_rank[d]]
            pool.sort(key=lambda ci: (-ci[0], ci[1]))
            merged.append(pool[:k])
        return AutocorrelationResult(window=self.window, k=k, top=merged)


@register_analysis("autocorrelation")
def _make_autocorrelation(config) -> "AutocorrelationAnalysis":
    return AutocorrelationAnalysis(
        window=config.get_int("window", 10),
        k=config.get_int("k", 3),
        array=config.get("array", "data"),
    )


class AutocorrelationAnalysis(AnalysisAdaptor):
    """SENSEI analysis adaptor over :class:`AutocorrelationState`.

    State allocation is deferred to the first ``execute`` because the local
    cell count is only known once data arrives -- also how the SENSEI
    miniapp's analysis behaves.
    """

    def __init__(self, window: int = 10, k: int = 3, array: str = "data",
                 association: Association = Association.POINT) -> None:
        super().__init__()
        self.window = window
        self.k = k
        self.array = array
        self.association = association
        self._state: AutocorrelationState | None = None
        self._comm = None
        self.result: AutocorrelationResult | None = None

    def initialize(self, comm) -> None:
        self._comm = comm

    def execute(self, data: DataAdaptor) -> bool:
        arr = data.get_array(self.association, self.array)
        values = arr.values
        if self._state is None:
            # Global offset via exclusive scan of local sizes.
            n_local = values.size
            before = self._comm.exscan(n_local)
            offset = 0 if before is None else int(before)
            self._state = AutocorrelationState(
                self.window, n_local, global_offset=offset, memory=self.memory
            )
        with timed(self.timers, "autocorrelation::execute"):
            self._state.update(values)
        return True

    def finalize(self) -> AutocorrelationResult | None:
        if self._state is None:
            return None
        with timed(self.timers, "autocorrelation::finalize"):
            self.result = self._state.finalize(self._comm, self.k)
        return self.result
