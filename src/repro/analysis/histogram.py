"""Parallel histogram (Sec. 3.3).

"At any given time step, the processes perform two reductions to determine
the minimum and maximum values on the grid.  Each processor divides the
range into the prescribed number of bins and fills the histogram of its
local data.  The histograms are reduced to the root process.  The only extra
storage required is proportional to the number of bins."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association
from repro.mpi import MAX, MIN, SUM
from repro.util.timers import timed


@dataclass
class Histogram:
    """A computed histogram: bin edges and global counts (root rank only)."""

    edges: np.ndarray  # (bins + 1,)
    counts: np.ndarray  # (bins,) int64
    vmin: float
    vmax: float

    @property
    def bins(self) -> int:
        return self.counts.shape[0]

    @property
    def total(self) -> int:
        return int(self.counts.sum())


def local_histogram(
    values: np.ndarray, bins: int, vmin: float, vmax: float
) -> np.ndarray:
    """Counts of ``values`` over ``bins`` equal bins spanning [vmin, vmax].

    Implemented with integer bin indices + ``np.bincount`` (faster than
    ``np.histogram`` for the uniform-bin case).  Values equal to ``vmax``
    land in the last bin, matching the usual closed-right-edge convention.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    flat = np.asarray(values).reshape(-1)
    if flat.size == 0:
        return np.zeros(bins, dtype=np.int64)
    width = vmax - vmin
    if width <= 0:
        # Degenerate range: everything in bin 0 (all values identical).
        counts = np.zeros(bins, dtype=np.int64)
        counts[0] = flat.size
        return counts
    idx = ((flat - vmin) * (bins / width)).astype(np.int64)
    np.clip(idx, 0, bins - 1, out=idx)
    # Floating-point correction at bin edges (same fix-up np.histogram
    # applies): an index computed one too high/low is nudged back so values
    # exactly on an edge land in the right bin.
    edges = np.linspace(vmin, vmax, bins + 1)
    too_high = flat < edges[idx]
    idx[too_high] -= 1
    interior = idx < bins - 1
    too_low = interior & (flat >= edges[np.minimum(idx + 1, bins)])
    idx[too_low] += 1
    return np.bincount(idx, minlength=bins).astype(np.int64)


def parallel_histogram(
    comm, values: np.ndarray, bins: int, root: int = 0, fused_range: bool = False
) -> Histogram | None:
    """The paper's histogram method over a distributed array.

    Two reductions for min/max (the paper-faithful default), local binning,
    then a sum-reduction of the per-rank count arrays to the root.  Non-root
    ranks return ``None``.

    ``fused_range=True`` is the classic latency optimization the paper's
    description leaves on the table: fold min and max into *one* allreduce
    over the pair ``(-min, max)`` under MAX, halving the collective count
    per step.  The resulting range (and histogram) is bit-identical.
    """
    flat = np.asarray(values).reshape(-1)
    # Empty local block still participates in the collectives.
    local_min = float(flat.min()) if flat.size else float("inf")
    local_max = float(flat.max()) if flat.size else float("-inf")
    if fused_range:
        fused = comm.allreduce(np.array([-local_min, local_max]), MAX)
        vmin, vmax = -float(fused[0]), float(fused[1])
    else:
        vmin = comm.allreduce(local_min, MIN)
        vmax = comm.allreduce(local_max, MAX)
    counts = local_histogram(flat, bins, vmin, vmax)
    total = comm.reduce(counts, SUM, root=root)
    if comm.rank != root:
        return None
    edges = np.linspace(vmin, vmax, bins + 1) if vmax > vmin else np.arange(bins + 1, dtype=float)
    return Histogram(edges=edges, counts=total, vmin=vmin, vmax=vmax)


@register_analysis("histogram")
def _make_histogram(config) -> "HistogramAnalysis":
    return HistogramAnalysis(
        bins=config.get_int("bins", 64),
        array=config.get("array", "data"),
        association=Association(config.get("association", "point")),
        fused_range=config.get_bool("fused_range", False),
    )


class HistogramAnalysis(AnalysisAdaptor):
    """SENSEI analysis adaptor wrapping :func:`parallel_histogram`.

    Keeps the latest histogram (root rank); :meth:`finalize` returns the
    full per-step history so post-run checks can compare against *post hoc*
    recomputation.
    """

    def __init__(
        self,
        bins: int = 64,
        array: str = "data",
        association: Association = Association.POINT,
        fused_range: bool = False,
    ) -> None:
        super().__init__()
        if bins <= 0:
            raise ValueError("bins must be positive")
        self.bins = bins
        self.array = array
        self.association = association
        self.fused_range = fused_range
        self.history: list[Histogram] = []
        self._comm = None

    def initialize(self, comm) -> None:
        self._comm = comm
        if self.memory is not None:
            # "The only extra storage required is proportional to the
            # number of bins."
            self.memory.allocate(self.bins * 8, label="histogram::bins")

    def execute(self, data: DataAdaptor) -> bool:
        from repro.data import GHOST_ARRAY_NAME

        arr = data.get_array(self.association, self.array)
        values = arr.values
        # Honor vtkGhostLevels blanking when the simulation exposes it
        # (the Nyx pattern, Sec. 4.2.3).
        if GHOST_ARRAY_NAME in data.available_arrays(self.association):
            levels = data.get_array(self.association, GHOST_ARRAY_NAME).values
            values = values[levels == 0]
        with timed(self.timers, "histogram::execute"):
            result = parallel_histogram(
                self._comm, values, self.bins, fused_range=self.fused_range
            )
        if result is not None:
            self.history.append(result)
        return True

    def finalize(self) -> list[Histogram] | None:
        if self.memory is not None:
            self.memory.free(self.bins * 8, label="histogram::bins")
        return self.history if self.history else None
