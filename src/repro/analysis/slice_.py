"""Slice extraction: "a 2D slice from a 3D volume" (Sec. 4.1.1).

The Catalyst-slice and Libsim-slice configurations both "extract a 2D slice
from a 3D volume, then render the result using a pseudocoloring, or heatmap
technique", where "only those ranks whose domains intersect the slice plane
will extract and render the slice geometry" (Sec. 4.1.3).  This module is
the extraction stage; rendering and compositing live in :mod:`repro.render`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association, ImageData
from repro.util.decomp import Extent


@dataclass(frozen=True)
class SlicePlane:
    """An axis-aligned slice plane: normal axis (0/1/2) + global point index."""

    axis: int
    index: int

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1, or 2")


@dataclass
class LocalSlice:
    """One rank's piece of the global slice: values + its 2-D global extent.

    ``extent2d`` is ``(u0, u1, v0, v1)`` inclusive indices in the two
    in-plane axes (the axes other than ``plane.axis``, in ascending order).
    """

    plane: SlicePlane
    extent2d: tuple[int, int, int, int]
    values: np.ndarray  # (nu, nv)


def _inplane_axes(axis: int) -> tuple[int, int]:
    return tuple(a for a in range(3) if a != axis)  # type: ignore[return-value]


def extract_axis_slice(
    image: ImageData, field: str, plane: SlicePlane
) -> LocalSlice | None:
    """Extract this block's intersection with the plane, or None if disjoint.

    Returns a *view* into the block's field data (no copy): slicing a 3-D
    numpy array at a fixed index along one axis is a view, which keeps the
    extraction stage zero-copy just like the production slice filters strive
    to be.
    """
    ext = image.extent
    lo = (ext.i0, ext.j0, ext.k0)[plane.axis]
    hi = (ext.i1, ext.j1, ext.k1)[plane.axis]
    if not lo <= plane.index <= hi:
        return None
    f3 = image.point_field_3d(field)
    local_idx = plane.index - lo
    selector: list = [slice(None)] * 3
    selector[plane.axis] = local_idx
    values = f3[tuple(selector)]  # basic indexing: a view, not a copy
    u, v = _inplane_axes(plane.axis)
    bounds = [(ext.i0, ext.i1), (ext.j0, ext.j1), (ext.k0, ext.k1)]
    (u0, u1), (v0, v1) = bounds[u], bounds[v]
    return LocalSlice(plane, (u0, u1, v0, v1), values)


def gather_global_slice(
    comm, local: LocalSlice | None, whole_extent: Extent, plane: SlicePlane, root: int = 0
) -> np.ndarray | None:
    """Assemble the full 2-D slice on ``root`` from per-rank pieces.

    Ranks not intersecting the plane contribute ``None``.  Overlapping
    points on block boundaries (shared grid points) are written by each
    contributor; values agree, so last-writer-wins is safe.
    """
    u, v = _inplane_axes(plane.axis)
    bounds = [
        (whole_extent.i0, whole_extent.i1),
        (whole_extent.j0, whole_extent.j1),
        (whole_extent.k0, whole_extent.k1),
    ]
    (gu0, gu1), (gv0, gv1) = bounds[u], bounds[v]
    payload = None
    if local is not None:
        payload = (local.extent2d, np.ascontiguousarray(local.values))
    pieces = comm.gather(payload, root=root)
    if comm.rank != root:
        return None
    out = np.zeros((gu1 - gu0 + 1, gv1 - gv0 + 1), dtype=np.float64)
    for piece in pieces:
        if piece is None:
            continue
        (u0, u1, v0, v1), vals = piece
        out[u0 - gu0 : u1 - gu0 + 1, v0 - gv0 : v1 - gv0 + 1] = vals
    return out


@register_analysis("slice")
def _make_slice(config) -> "SliceExtractAnalysis":
    return SliceExtractAnalysis(
        plane=SlicePlane(config.get_int("axis", 2), config.get_int("index", 0)),
        array=config.get("array", "data"),
    )


class SliceExtractAnalysis(AnalysisAdaptor):
    """Analysis adaptor that extracts + gathers a global slice each step.

    Used directly by tests; the Catalyst/Libsim infrastructure adaptors use
    the same extraction functions but composite rendered images instead of
    gathering raw values.
    """

    def __init__(self, plane: SlicePlane, array: str = "data",
                 association: Association = Association.POINT) -> None:
        super().__init__()
        self.plane = plane
        self.array = array
        self.association = association
        self._comm = None
        self.slices: list[np.ndarray] = []  # root rank only

    def initialize(self, comm) -> None:
        self._comm = comm

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("slice extraction requires an ImageData mesh")
        # Force the field mapping only on intersecting ranks -- matches
        # "only those ranks whose domains intersect the slice plane will
        # extract" and keeps non-intersecting ranks lazy.
        ext = mesh.extent
        lo = (ext.i0, ext.j0, ext.k0)[self.plane.axis]
        hi = (ext.i1, ext.j1, ext.k1)[self.plane.axis]
        local = None
        if lo <= self.plane.index <= hi:
            arr = data.get_array(self.association, self.array)
            mesh.add_array(self.association, arr)
            local = extract_axis_slice(mesh, self.array, self.plane)
        out = gather_global_slice(
            self._comm, local, mesh.whole_extent, self.plane
        )
        if out is not None:
            self.slices.append(out)
        return True

    def finalize(self) -> list[np.ndarray] | None:
        return self.slices or None
