"""Hybrid (MPI + threads) analysis kernels.

The thread-parallel counterparts of the flat-MPI analyses: each simulated
rank splits its local values across worker threads (the "OpenMP within a
node" half of the Nyx hybrid model), then the usual MPI reductions combine
across ranks.  Results are bit-identical to the flat versions -- integer
histogram counts commute, and the autocorrelation splits by cell, so no
floating-point reassociation occurs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.autocorrelation import AutocorrelationState
from repro.analysis.histogram import Histogram, HistogramAnalysis, local_histogram
from repro.core.adaptors import DataAdaptor
from repro.core.configurable import register_analysis
from repro.data import Association
from repro.mpi import MAX, MIN, SUM
from repro.util.parallel import parallel_chunked
from repro.util.timers import timed


def local_histogram_threaded(
    values: np.ndarray, bins: int, vmin: float, vmax: float, n_threads: int
) -> np.ndarray:
    """Thread-chunked :func:`~repro.analysis.histogram.local_histogram`."""
    flat = np.asarray(values).reshape(-1)
    if flat.size == 0 or n_threads == 1:
        return local_histogram(flat, bins, vmin, vmax)
    partials = parallel_chunked(
        lambda lo, hi: local_histogram(flat[lo:hi], bins, vmin, vmax),
        flat.size,
        n_threads,
    )
    out = partials[0]
    for p in partials[1:]:
        out = out + p
    return out


@register_analysis("hybrid_histogram")
def _make_hybrid_histogram(config) -> "HybridHistogramAnalysis":
    return HybridHistogramAnalysis(
        bins=config.get_int("bins", 64),
        array=config.get("array", "data"),
        n_threads=config.get_int("threads", 2),
    )


class HybridHistogramAnalysis(HistogramAnalysis):
    """Histogram with node-level thread parallelism in the binning pass."""

    def __init__(self, bins: int = 64, array: str = "data", n_threads: int = 2,
                 association: Association = Association.POINT) -> None:
        super().__init__(bins=bins, array=array, association=association)
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self.n_threads = n_threads

    def execute(self, data: DataAdaptor) -> bool:
        from repro.data import GHOST_ARRAY_NAME

        arr = data.get_array(self.association, self.array)
        values = arr.values
        if GHOST_ARRAY_NAME in data.available_arrays(self.association):
            levels = data.get_array(self.association, GHOST_ARRAY_NAME).values
            values = values[levels == 0]
        flat = np.asarray(values).reshape(-1)
        local_min = float(flat.min()) if flat.size else float("inf")
        local_max = float(flat.max()) if flat.size else float("-inf")
        with timed(self.timers, "hybrid_histogram::execute"):
            vmin = self._comm.allreduce(local_min, MIN)
            vmax = self._comm.allreduce(local_max, MAX)
            counts = local_histogram_threaded(
                flat, self.bins, vmin, vmax, self.n_threads
            )
            total = self._comm.reduce(counts, SUM, root=0)
        if self._comm.rank == 0:
            edges = (
                np.linspace(vmin, vmax, self.bins + 1)
                if vmax > vmin
                else np.arange(self.bins + 1, dtype=float)
            )
            self.history.append(
                Histogram(edges=edges, counts=total, vmin=vmin, vmax=vmax)
            )
        return True


class ThreadedAutocorrelationState(AutocorrelationState):
    """Autocorrelation whose per-step update fans out across threads.

    Cells are independent, so chunking by cell changes nothing numerically.
    """

    def __init__(self, window: int, n_local: int, global_offset: int = 0,
                 n_threads: int = 2, memory=None) -> None:
        super().__init__(window, n_local, global_offset=global_offset, memory=memory)
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self.n_threads = n_threads

    def update(self, values: np.ndarray) -> None:
        flat = np.asarray(values).reshape(-1)
        if flat.shape[0] != self.n_local:
            raise ValueError(
                f"expected {self.n_local} local values, got {flat.shape[0]}"
            )
        if self.n_threads == 1 or self.n_local < 2:
            super().update(flat)
            return
        s = self.steps_seen
        slot = s % self.window
        max_d = min(s + 1, self.window)

        def work(lo: int, hi: int) -> None:
            self.values[slot, lo:hi] = flat[lo:hi]
            for d in range(max_d):
                past = self.values[(s - d) % self.window, lo:hi]
                self.corr[d, lo:hi] += flat[lo:hi] * past

        parallel_chunked(work, self.n_local, self.n_threads)
        self.steps_seen += 1
