"""Per-configuration cost queries for the online autotuning controller.

The paper's core argument is that in situ placement and configuration
choices carry measurable, workload-dependent costs (Secs. 4.1.1-4.1.4).
:class:`ControlModel` turns the calibrated miniapp model into the *predict*
half of the SIM-SITU predict->verify->act loop: "what would one simulation
step cost under configuration ``X`` if the staging fabric is derated by
``d``?" -- answered purely, so the controller's decisions are replayable.

The decision space (:class:`ControlConfig`) is exactly the knob set the
paper prices:

- ``placement`` -- in-transit FlexPath (analysis offloaded to endpoints,
  Sec. 4.1.4) vs in-line Catalyst (analysis in the simulation loop,
  Sec. 4.1.3);
- ``ranks_per_aggregator`` -- the GLEAN many-to-few fan-in, which sets both
  the aggregated-write metadata/forwarding trade (Table 1) and the staging
  endpoints' ingest fan-in;
- ``png_workers`` / ``png_codec`` -- the Table 2 serial-zlib bottleneck and
  its parallel-deflate mitigation;
- ``framebuffer_depth`` -- the framebuffer pool's memory-for-time trade
  (the Fig. 4/7 footprint axis).

Costs are composed from :class:`~repro.perf.miniapp_model.MiniappModel`,
:class:`~repro.perf.network.NetworkModel`, and
:class:`~repro.perf.iomodel.IOModel`; ``staging_derate`` scales the staging
fabric's effective bandwidth by ``1 - d`` (congestion / contention), and
``storage_derate`` is forwarded to :class:`IOModel.degraded_fraction`.
Every method is a pure function of its arguments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.perf.iomodel import IOModel
from repro.perf.machine import MachineModel
from repro.perf.miniapp_model import MiniappConfig, MiniappModel

#: Valid placements, conservative first (the consensus MIN over candidate
#: indices must resolve toward in-line, the degraded-but-safe deployment).
PLACEMENTS = ("in-line", "in-transit")

#: Parallel-deflate efficiency per PNG worker (bookkeeping still serializes
#: band slicing/stitching; see the png_parallel_deflate benchmark).
PNG_PARALLEL_EFFICIENCY = 0.85

#: Per-worker band dispatch cost (s) -- why workers are not free.
PNG_DISPATCH_COST = 2.0e-3

#: Effective allocate+clear rate (B/s) for framebuffer churn when the pool
#: is too shallow to satisfy a step's acquisitions.
FRAMEBUFFER_ALLOC_RATE = 5.0e9

#: Framebuffers a compositing step acquires (partial + swap scratch); pool
#: depths below this miss every step.
FRAMEBUFFERS_PER_STEP = 2

#: FlexPath endpoint co-scheduling + non-zero-copy buffer overhead on top
#: of the inline analysis cost (the ~50% Catalyst-slice penalty of
#: Sec. 4.1.4); matches MiniappModel.flexpath.
STAGING_OVERHEAD = 1.30


@dataclass(frozen=True)
class ControlConfig:
    """One runnable in situ configuration -- a point in the decision space."""

    placement: str = "in-transit"
    png_workers: int = 0
    png_codec: str = "auto"
    framebuffer_depth: int = 2
    ranks_per_aggregator: int = 64

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(f"placement must be one of {PLACEMENTS}")
        if self.png_workers < 0:
            raise ValueError("png_workers must be non-negative")
        if self.png_codec not in ("auto", "thread", "process", "serial"):
            raise ValueError(f"unknown png_codec {self.png_codec!r}")
        if self.framebuffer_depth < 0:
            raise ValueError("framebuffer_depth must be non-negative")
        if self.ranks_per_aggregator < 1:
            raise ValueError("ranks_per_aggregator must be >= 1")

    def as_dict(self) -> dict:
        """JSON-ready form, stable key order (for decision journals)."""
        return {
            "placement": self.placement,
            "png_workers": self.png_workers,
            "png_codec": self.png_codec,
            "framebuffer_depth": self.framebuffer_depth,
            "ranks_per_aggregator": self.ranks_per_aggregator,
        }

    def with_placement(self, placement: str) -> "ControlConfig":
        return replace(self, placement=placement)


@dataclass(frozen=True)
class StepPrediction:
    """Modeled writer-visible cost of one simulation step (seconds)."""

    sim: float
    analysis: float
    write: float

    @property
    def total(self) -> float:
        return self.sim + self.analysis + self.write

    @property
    def overhead_fraction(self) -> float:
        """In situ overhead relative to raw simulation time."""
        if self.sim <= 0.0:
            return math.inf
        return (self.analysis + self.write) / self.sim

    def as_dict(self) -> dict:
        return {
            "sim": round(self.sim, 6),
            "analysis": round(self.analysis, 6),
            "write": round(self.write, 6),
            "total": round(self.total, 6),
        }


class ControlModel:
    """Per-config step-cost predictions over one miniapp configuration.

    Stateless and pure: ``predict(knobs, d)`` always returns the same
    floats for the same arguments, which is what makes controller decision
    journals byte-identical across runs and SPMD backends.
    """

    def __init__(self, config: MiniappConfig | None = None) -> None:
        self.cfg = config if config is not None else MiniappConfig.at_scale("6K")
        self.machine: MachineModel = self.cfg.machine
        self.model = MiniappModel(self.cfg)
        # Pure-function memoization: the controller's planner sweeps all
        # candidates every step, and the derate-estimation bisection calls
        # predict ~50x per sample; caching the derate-independent pieces
        # keeps the per-step planning cost negligible.
        self._inline_cache: dict[tuple, float] = {}
        self._write_cache: dict[tuple, float] = {}

    # -- cost pieces -------------------------------------------------------
    def _inline_analysis(self, knobs: ControlConfig) -> float:
        """Catalyst-slice analysis cost under the image-pipeline knobs."""
        key = (knobs.png_workers, knobs.png_codec, knobs.framebuffer_depth)
        cached = self._inline_cache.get(key)
        if cached is not None:
            return cached
        b = self.model.catalyst_slice()
        png = b.extra["png"]
        rest = b.analysis_per_step - png
        if knobs.png_workers > 0 and knobs.png_codec != "serial":
            png = (
                png / (knobs.png_workers * PNG_PARALLEL_EFFICIENCY)
                + knobs.png_workers * PNG_DISPATCH_COST
            )
        fb = self.model._framebuffer_bytes(self.cfg.catalyst_resolution)
        misses = max(0, FRAMEBUFFERS_PER_STEP - knobs.framebuffer_depth)
        alloc = misses * fb / FRAMEBUFFER_ALLOC_RATE
        cost = rest + png + alloc
        self._inline_cache[key] = cost
        return cost

    def predict(
        self,
        knobs: ControlConfig,
        staging_derate: float = 0.0,
        storage_derate: float = 0.0,
    ) -> StepPrediction:
        """Writer-visible per-step cost of ``knobs`` under derated fabric.

        In-line: the simulation pays the full analysis in its loop.
        In-transit: the simulation pays the hyperthread co-scheduling
        penalty, the staged block transfer, and -- when the endpoint falls
        behind -- flow-control blocking.  The endpoint's busy time is its
        (staging-overheaded) analysis plus ingesting its
        ``ranks_per_aggregator`` writers' blocks through the derated
        fabric, which is the term congestion blows up.
        """
        if not 0.0 <= staging_derate < 1.0:
            raise ValueError("staging_derate must be in [0, 1)")
        c = self.cfg
        wkey = (knobs.ranks_per_aggregator, storage_derate)
        write = self._write_cache.get(wkey)
        if write is None:
            io = IOModel(self.machine, degraded_fraction=storage_derate)
            write = io.aggregated_write(
                c.cores, c.step_bytes, knobs.ranks_per_aggregator
            )
            self._write_cache[wkey] = write
        inline = self._inline_analysis(knobs)
        if knobs.placement == "in-line":
            return StepPrediction(
                sim=self.model.sim_step, analysis=inline, write=write
            )
        hp = self.machine.hyperthread_penalty
        sim = self.model.sim_step * hp
        per_rank = c.points_per_core * 8
        net = self.model.net
        advance = 4 * net.ptp(512) * hp
        transfer = net.stage_block(per_rank, same_node=True) / (
            1.0 - staging_derate
        )
        ingest = (
            knobs.ranks_per_aggregator
            * per_rank
            / (self.machine.net_bandwidth * (1.0 - staging_derate))
        )
        endpoint_busy = inline * hp * STAGING_OVERHEAD + ingest
        blocking = max(0.0, endpoint_busy - sim)
        return StepPrediction(
            sim=sim, analysis=advance + transfer + blocking, write=write
        )

    # -- decision space ----------------------------------------------------
    def candidate_configs(self) -> tuple[ControlConfig, ...]:
        """The canonical candidate list, most conservative first.

        Ordering is load-bearing: writer groups agree on a configuration by
        an ``allreduce(MIN)`` over candidate *indices*, so any rank
        proposing an in-line (lower-index) configuration pulls the whole
        group in-line -- the same one-degrades-all semantics as the staging
        transport's consensus.
        """
        out: list[ControlConfig] = []
        for placement in PLACEMENTS:
            for rpa in (32, 64, 128):
                for workers in (0, 2, 4):
                    for depth in (1, 2, 4):
                        out.append(
                            ControlConfig(
                                placement=placement,
                                png_workers=workers,
                                png_codec="auto",
                                framebuffer_depth=depth,
                                ranks_per_aggregator=rpa,
                            )
                        )
        return tuple(out)

    def default_config(self) -> ControlConfig:
        """The starting configuration: the paper's staged deployment with
        the serial rank-0 PNG encoder (untuned)."""
        return ControlConfig()

    def default_slo(self) -> "tuple[float, float]":
        """A derived latency SLO: 30% headroom over the untuned healthy
        staged step.  Returns ``(max_step_seconds, max_overhead_fraction)``
        with an unbounded overhead term."""
        return (1.3 * self.predict(self.default_config()).total, math.inf)

    def estimate_staging_derate(
        self,
        knobs: ControlConfig,
        observed_analysis: float,
        lo: float = 0.0,
        hi: float = 0.995,
        iters: int = 48,
    ) -> float:
        """Invert the in-transit analysis cost for the staging derate.

        The *verify* half of the loop: given the analysis seconds a step
        actually took under ``knobs`` (which must be in-transit -- the
        in-line path carries no staging signal), bisect for the derate at
        which the model predicts that cost.  Monotone in ``d`` (transfer
        and ingest both scale by ``1/(1-d)``), so bisection converges;
        fixed iteration count keeps the result a pure function of inputs.
        """
        if knobs.placement != "in-transit":
            raise ValueError("derate estimation needs an in-transit config")
        if observed_analysis <= self.predict(knobs, lo).analysis:
            return lo
        if observed_analysis >= self.predict(knobs, hi).analysis:
            return hi
        for _ in range(iters):
            mid = 0.5 * (lo + hi)
            if self.predict(knobs, mid).analysis < observed_analysis:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
