"""Extreme-scale performance models.

The native runtime (:mod:`repro.mpi`) executes the real algorithms at 2-32
ranks; the paper's figures are at 812-1,048,576 ranks on Cori, Mira, and
Titan.  This package closes that gap with calibrated analytic/discrete-event
models that replay the same operation sequences at paper scale:

- :mod:`machine` -- platform descriptions (Cori Haswell/Aries/Lustre, Mira
  BG/Q/5-D torus/GPFS, Titan Gemini/Lustre);
- :mod:`network` -- point-to-point, tree-collective, and image-compositing
  cost functions (binary swap vs direct send, the Fig. 6 divergence);
- :mod:`iomodel` -- file-per-process vs collective shared-file write costs
  (Table 1), and post hoc read costs with Lustre variability (Fig. 11);
- :mod:`events` -- a discrete-event simulator for staged (in transit)
  pipelines where writer and endpoint overlap (Figs. 8-9);
- :mod:`miniapp_model` -- the oscillator study end to end (Figs. 3-12);
- :mod:`apps_model` -- PHASTA (Table 2), AVF-LESLIE (Figs. 15-16), and Nyx
  (Fig. 17);
- :mod:`calibrate` -- native micro-benchmarks that fit the per-element
  constants, so the model's small-scale predictions can be validated
  against real runs in this repository's test suite;
- :mod:`control_model` -- per-configuration step-cost queries (placement,
  aggregator fan-in, PNG workers, framebuffer depth) for the online
  autotuning controller (:mod:`repro.control`).
"""

from repro.perf.machine import CORI, MIRA, TITAN, MachineModel
from repro.perf.network import NetworkModel
from repro.perf.iomodel import IOModel
from repro.perf.control_model import ControlConfig, ControlModel, StepPrediction

__all__ = [
    "MachineModel",
    "CORI",
    "MIRA",
    "TITAN",
    "NetworkModel",
    "IOModel",
    "ControlConfig",
    "ControlModel",
    "StepPrediction",
]
