"""Platform descriptions for the three machines in the paper.

Parameters are order-of-magnitude-correct public figures for the 2016-era
systems, then *calibrated against the paper's own measurements* where the
paper reports absolutes (Table 1 write times, Fig. 10 ratios, Table 2
PHASTA timings).  The point of the model is shape fidelity -- who wins, by
what factor, where the crossovers are -- not absolute-seconds fidelity on
hardware we do not have.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Cost-model parameters for one HPC platform."""

    name: str
    cores_per_node: int
    #: Oscillator grid-point updates per second per core (one oscillator):
    #: the miniapp's compute rate, calibrated so the modeled per-step solver
    #: time matches the paper's implied ~0.4 s at ~308k points/core with 3
    #: oscillators (Fig. 10 discussion).
    elem_rate: float
    #: One-way small-message latency (s) and per-link bandwidth (B/s).
    net_latency: float
    net_bandwidth: float
    #: Aggregate parallel-filesystem bandwidth (B/s) for well-formed I/O.
    io_aggregate_bw: float
    #: Metadata-server cost to create one file (s); file-per-process writes
    #: pay p of these (serialized at the MDS) -- the term that makes the
    #: 45K-core write cost blow up in Table 1/Fig. 10.
    io_file_create: float
    #: Effective shared-file (collective MPI-IO) bandwidth (B/s); Table 1's
    #: MPI-IO column implies a near-constant ~5.2 GB/s on Cori with the
    #: recommended striping.
    io_shared_file_bw: float
    #: Lognormal sigma of I/O time variability ("significant variability in
    #: read times on the NERSC Lustre system at scale", Fig. 11).
    io_variability_sigma: float
    #: Rate of zlib DEFLATE on image bytes (B/s, single core) -- the serial
    #: PNG bottleneck of Table 2.
    zlib_rate: float
    #: Slowdown factor applied when analysis shares cores via hyperthreads
    #: (the ADIOS FlexPath co-scheduled deployment, Sec. 4.1.4).
    hyperthread_penalty: float = 1.15

    def nodes_for(self, cores: int) -> int:
        return (cores + self.cores_per_node - 1) // self.cores_per_node


#: NERSC Cori Phase I: Cray XC, 2x16-core Haswell/node, Aries dragonfly,
#: 30 PB Lustre at >700 GB/s (Sec. 4.1.1).
CORI = MachineModel(
    name="cori",
    cores_per_node=32,
    elem_rate=2.4e6,
    net_latency=1.5e-6,
    net_bandwidth=8.0e9,
    io_aggregate_bw=700.0e9,
    io_file_create=1.6e-4,
    io_shared_file_bw=5.2e9,
    io_variability_sigma=0.45,
    zlib_rate=25.0e6,
)

#: ALCF Mira: BlueGene/Q, 16 cores (4 HW threads each)/node, 5-D torus.
#: PHASTA runs 32-64 MPI ranks/node (Sec. 4.2.1); per-rank compute is slow
#: relative to Haswell.
MIRA = MachineModel(
    name="mira",
    cores_per_node=16,
    elem_rate=0.5e6,
    net_latency=2.5e-6,
    net_bandwidth=1.8e9,
    io_aggregate_bw=240.0e9,
    io_file_create=2.5e-4,
    io_shared_file_bw=3.0e9,
    io_variability_sigma=0.30,
    # Calibrated from the paper's own measurement: skipping PNG zlib
    # compression took the per-step in situ time from 4.03 s to 0.518 s
    # for a 2900x725 image (Sec. 4.2.1) => ~6.3 MB / ~3.5 s.
    zlib_rate=1.8e6,
)

#: OLCF Titan: Cray XK7, 16-core AMD/node, Gemini torus, Spider Lustre.
TITAN = MachineModel(
    name="titan",
    cores_per_node=16,
    elem_rate=1.2e6,
    net_latency=1.5e-6,
    net_bandwidth=4.0e9,
    io_aggregate_bw=240.0e9,
    io_file_create=2.0e-4,
    io_shared_file_bw=4.0e9,
    io_variability_sigma=0.40,
    zlib_rate=15.0e6,
)

MACHINES = {m.name: m for m in (CORI, MIRA, TITAN)}
