"""Network and collective cost functions (alpha-beta / Hockney model).

All collectives assume binomial-tree or recursive-halving algorithms, the
defaults in production MPIs for these message classes.  Compositing costs
follow the standard analyses: binary swap moves O(pixels) total per rank
over log2(P) rounds; direct send funnels P full images through the root.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perf.machine import MachineModel


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta network cost model bound to one machine."""

    machine: MachineModel

    @property
    def alpha(self) -> float:
        return self.machine.net_latency

    @property
    def beta(self) -> float:
        return 1.0 / self.machine.net_bandwidth

    # -- point to point -----------------------------------------------------
    def ptp(self, nbytes: float) -> float:
        return self.alpha + nbytes * self.beta

    # -- collectives ----------------------------------------------------------
    def bcast(self, p: int, nbytes: float) -> float:
        """Binomial-tree broadcast."""
        if p <= 1:
            return 0.0
        return math.ceil(math.log2(p)) * self.ptp(nbytes)

    def reduce(self, p: int, nbytes: float) -> float:
        """Binomial-tree reduction (scalar/short-vector regime)."""
        if p <= 1:
            return 0.0
        return math.ceil(math.log2(p)) * self.ptp(nbytes)

    def allreduce(self, p: int, nbytes: float) -> float:
        """Recursive-doubling allreduce ~ reduce + bcast."""
        if p <= 1:
            return 0.0
        return 2.0 * math.ceil(math.log2(p)) * self.ptp(nbytes)

    def gather(self, p: int, nbytes_each: float) -> float:
        """Tree gather: root ultimately receives (p-1) payloads."""
        if p <= 1:
            return 0.0
        return (
            math.ceil(math.log2(p)) * self.alpha + (p - 1) * nbytes_each * self.beta
        )

    def barrier(self, p: int) -> float:
        if p <= 1:
            return 0.0
        return 2.0 * math.ceil(math.log2(p)) * self.alpha

    # -- compositing -------------------------------------------------------------
    def binary_swap(self, p: int, image_bytes: float) -> float:
        """Binary-swap compositing + final tile gather to the root.

        Exchange phase: round i moves image_bytes / 2^i per rank; total
        moved per rank approaches image_bytes.  Gather phase: root receives
        p tiles totalling one image.
        """
        if p <= 1:
            return 0.0
        rounds = math.ceil(math.log2(p))
        exchange = sum(
            self.ptp(image_bytes / (2 ** (i + 1))) for i in range(rounds)
        )
        gather = self.gather(p, image_bytes / p)
        return exchange + gather

    def direct_send(self, p: int, image_bytes: float) -> float:
        """Direct-send-to-root compositing: root ingests p-1 full images."""
        if p <= 1:
            return 0.0
        return (p - 1) * (self.alpha + image_bytes * self.beta)

    # -- staging (FlexPath) ----------------------------------------------------
    def stage_block(self, nbytes: float, same_node: bool = True) -> float:
        """Ship one block writer -> endpoint.

        Co-scheduled (same node) staging still pays a memcpy-like cost plus
        the hyperthread perturbation of sharing cores with the simulation.
        """
        base = self.ptp(nbytes)
        if same_node:
            base = nbytes / (self.machine.net_bandwidth * 4) + self.alpha
        return base * self.machine.hyperthread_penalty
