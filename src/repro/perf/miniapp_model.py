"""The miniapplication study at paper scale (Figs. 3-12, Table 1).

Reproduces the Cori weak-scaling configurations of Sec. 4.1.1: 812 (~1K),
6496 (~6K), and 45440 (~45K) cores, with per-core work matching the paper's
reported data sizes (2 GB / 16 GB / 123 GB per time step at 8 bytes per
grid point -- the 45K configuration carries the extra ~100K degrees of
freedom per core the paper notes).

Every phase the paper charts is modeled as an explicit function of the
machine, so benchmarks can print the same series the figures show.  Compute
rates are expressed relative to the machine's calibrated ``elem_rate``;
:mod:`repro.perf.calibrate` fits the same constants natively so tests can
check the model agrees with real small-scale runs in *shape*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.perf.events import simulate_staging
from repro.perf.iomodel import IOModel
from repro.perf.machine import CORI, MachineModel
from repro.perf.network import NetworkModel

#: The paper's three weak-scaling configurations: name -> (cores, pts/core).
SCALES: dict[str, tuple[int, int]] = {
    "1K": (812, 308_000),
    "6K": (6496, 308_000),
    "45K": (45440, 338_000),
}

#: Miniapp oscillator count (the sample input's three oscillators).
N_OSCILLATORS = 3

#: Analysis compute rates relative to the machine elem_rate (dimensionless
#: multipliers; the miniapp's oscillator fill is the unit).
HIST_RATE_FACTOR = 55.0  # binning is ~a pass over memory
AC_RATE_FACTOR = 22.0  # per delay: multiply-add + circular-buffer traffic
SLICE_RATE_FACTOR = 80.0  # extraction touches one plane


@dataclass(frozen=True)
class MiniappConfig:
    """One modeled miniapp run."""

    cores: int
    points_per_core: int
    machine: MachineModel = CORI
    steps: int = 100
    bins: int = 64
    ac_window: int = 10
    ac_topk: int = 3
    catalyst_resolution: tuple[int, int] = (1920, 1080)
    libsim_resolution: tuple[int, int] = (1600, 1600)

    @classmethod
    def at_scale(cls, scale: str, machine: MachineModel = CORI, **kw) -> "MiniappConfig":
        cores, ppc = SCALES[scale]
        return cls(cores=cores, points_per_core=ppc, machine=machine, **kw)

    # -- derived sizes ---------------------------------------------------------
    @property
    def total_points(self) -> int:
        return self.cores * self.points_per_core

    @property
    def step_bytes(self) -> int:
        """Bytes of one time step's field (8-byte doubles)."""
        return self.total_points * 8

    @property
    def ranks_on_slice(self) -> int:
        """Ranks whose block intersects an axis-aligned plane: one layer of
        the ~cubic process grid."""
        per_axis = round(self.cores ** (1.0 / 3.0))
        return max(min(per_axis * per_axis, self.cores), 1)


@dataclass
class PhaseBreakdown:
    """Modeled times for one configuration (seconds)."""

    config_name: str
    sim_initialize: float = 0.0
    analysis_initialize: float = 0.0
    sim_per_step: float = 0.0
    analysis_per_step: float = 0.0
    write_per_step: float = 0.0
    finalize: float = 0.0
    #: Per-rank memory (bytes): startup footprint and high-water mark.
    startup_bytes_per_rank: int = 0
    high_water_bytes_per_rank: int = 0
    extra: dict = field(default_factory=dict)

    def time_to_solution(self, steps: int) -> float:
        return (
            self.sim_initialize
            + self.analysis_initialize
            + steps * (self.sim_per_step + self.analysis_per_step + self.write_per_step)
            + self.finalize
        )


class MiniappModel:
    """Per-configuration phase models for the miniapp study."""

    #: Startup executable footprint per rank (bytes): the miniapp + SENSEI.
    BASE_EXECUTABLE = 60 * 1024 * 1024
    #: Catalyst / Libsim library footprints (match the infrastructure layer).
    CATALYST_LIB = 87 * 1024 * 1024
    LIBSIM_LIB = 120 * 1024 * 1024
    #: Per-rank cost of the Libsim per-rank session/config check against the
    #: shared filesystem; serialized at the metadata service, so the total
    #: grows ~linearly in ranks (~3.5 s at 45K, Fig. 5).
    LIBSIM_CONFIG_CHECK = 7.7e-5

    def __init__(self, config: MiniappConfig):
        self.cfg = config
        self.net = NetworkModel(config.machine)
        self.io = IOModel(config.machine)

    # -- shared pieces -----------------------------------------------------
    @property
    def sim_step(self) -> float:
        c = self.cfg
        return c.points_per_core * N_OSCILLATORS / c.machine.elem_rate

    @property
    def sensei_overhead_step(self) -> float:
        """Zero-copy pointer passing: nanoseconds-per-array territory."""
        return 2.0e-6

    def _framebuffer_bytes(self, resolution: tuple[int, int]) -> int:
        w, h = resolution
        return w * h * 4

    def _png_time(self, resolution: tuple[int, int]) -> float:
        w, h = resolution
        return (w * h * 3) / self.cfg.machine.zlib_rate

    # -- configurations (Sec. 4.1.1 list) ------------------------------------
    def original(self) -> PhaseBreakdown:
        c = self.cfg
        return PhaseBreakdown(
            "original",
            sim_initialize=0.05,
            sim_per_step=self.sim_step,
            startup_bytes_per_rank=self.BASE_EXECUTABLE,
            high_water_bytes_per_rank=self.BASE_EXECUTABLE + c.points_per_core * 8,
        )

    def baseline(self) -> PhaseBreakdown:
        """SENSEI enabled, no analysis: the interface-overhead probe."""
        b = self.original()
        b.config_name = "baseline"
        b.analysis_per_step = self.sensei_overhead_step
        return b

    def histogram(self) -> PhaseBreakdown:
        c = self.cfg
        local = c.points_per_core / (c.machine.elem_rate * HIST_RATE_FACTOR)
        reductions = 2 * self.net.allreduce(c.cores, 8) + self.net.reduce(
            c.cores, c.bins * 8
        )
        b = self.baseline()
        b.config_name = "histogram"
        b.analysis_per_step = local + reductions + self.sensei_overhead_step
        b.analysis_initialize = 0.01
        b.high_water_bytes_per_rank += c.bins * 8
        return b

    def autocorrelation(self) -> PhaseBreakdown:
        c = self.cfg
        local = (
            c.points_per_core
            * c.ac_window
            / (c.machine.elem_rate * AC_RATE_FACTOR)
        )
        b = self.baseline()
        b.config_name = "autocorrelation"
        b.analysis_per_step = local + self.sensei_overhead_step
        b.analysis_initialize = 0.01
        # Final top-k reduction: local partial sort + gather of candidates.
        cand_bytes = c.ac_window * c.ac_topk * 16
        b.finalize = (
            c.points_per_core * c.ac_window / (c.machine.elem_rate * AC_RATE_FACTOR * 4)
            + self.net.gather(c.cores, cand_bytes)
        )
        b.high_water_bytes_per_rank += 2 * c.ac_window * c.points_per_core * 8
        return b

    def catalyst_slice(self) -> PhaseBreakdown:
        c = self.cfg
        fb = self._framebuffer_bytes(c.catalyst_resolution)
        # Only the slice layer of ranks extracts/renders; the per-step
        # analysis time is their extraction plus the all-rank compositing.
        plane_points = c.points_per_core ** (2.0 / 3.0)
        extract = plane_points / (c.machine.elem_rate * SLICE_RATE_FACTOR)
        render = fb / (c.machine.elem_rate * 40)
        composite = self.net.binary_swap(c.cores, fb)
        png = self._png_time(c.catalyst_resolution)
        b = self.baseline()
        b.config_name = "catalyst-slice"
        b.analysis_initialize = 0.35
        b.analysis_per_step = extract + render + composite + png + self.sensei_overhead_step
        b.startup_bytes_per_rank += self.CATALYST_LIB
        b.high_water_bytes_per_rank += self.CATALYST_LIB + fb
        b.extra = {"composite": composite, "png": png}
        return b

    def libsim_slice(self) -> PhaseBreakdown:
        c = self.cfg
        fb = self._framebuffer_bytes(c.libsim_resolution)
        plane_points = c.points_per_core ** (2.0 / 3.0)
        extract = plane_points / (c.machine.elem_rate * SLICE_RATE_FACTOR)
        render = fb / (c.machine.elem_rate * 40)
        # Libsim's compositing family scales differently from Catalyst's
        # binary swap: a reduction tree of full-size images.
        composite = math.ceil(math.log2(max(c.cores, 2))) * self.net.ptp(fb) * 0.5
        png = self._png_time(c.libsim_resolution)
        b = self.baseline()
        b.config_name = "libsim-slice"
        b.analysis_initialize = self.LIBSIM_CONFIG_CHECK * c.cores
        b.analysis_per_step = extract + render + composite + png + self.sensei_overhead_step
        b.startup_bytes_per_rank += self.LIBSIM_LIB
        b.high_water_bytes_per_rank += self.LIBSIM_LIB + fb
        b.extra = {"composite": composite, "png": png}
        return b

    def baseline_with_writes(self) -> PhaseBreakdown:
        c = self.cfg
        b = self.baseline()
        b.config_name = "baseline+io"
        b.write_per_step = self.io.file_per_process_write(c.cores, c.step_bytes)
        b.finalize = 0.2
        return b

    # -- Table 1 -----------------------------------------------------------------
    def write_paths(self) -> dict[str, float]:
        c = self.cfg
        return {
            "size_gb": c.step_bytes / 1e9,
            "vtk_io": self.io.file_per_process_write(c.cores, c.step_bytes),
            "mpi_io": self.io.shared_file_write(c.cores, c.step_bytes),
        }

    # -- ADIOS FlexPath (Figs. 8-9) -------------------------------------------------
    def flexpath(
        self, endpoint_analysis: str = "histogram", placement: str = "hyperthread"
    ) -> dict[str, float]:
        """Writer + endpoint timings for a staged run.

        ``placement`` selects the deployment the paper discusses
        (Sec. 4.1.4):

        - ``"hyperthread"`` -- the paper's Cori configuration: the endpoint
          shares every core via the second hardware thread; cheap same-node
          transfers but OS-scheduler perturbation on *both* sides.
        - ``"dedicated-cores"`` -- the future-testing direction: "one core
          per socket would be for analysis, and the other eleven ... for
          simulation".  No perturbation; the simulation loses 1/12 of its
          cores (more work per remaining core); transfers stay on-node.
        - ``"dedicated-nodes"`` -- full in transit: the endpoint runs on
          separate nodes; no interference, but transfers cross the network.
        """
        c = self.cfg
        if placement == "hyperthread":
            hp = c.machine.hyperthread_penalty
            sim_factor = hp
            same_node = True
        elif placement == "dedicated-cores":
            hp = 1.0
            sim_factor = 12.0 / 11.0  # the simulation cedes 1 of 12 cores
            same_node = True
        elif placement == "dedicated-nodes":
            hp = 1.0
            sim_factor = 1.0
            same_node = False
        else:
            raise ValueError(f"unknown placement {placement!r}")
        per_rank_bytes = c.points_per_core * 8
        advance = 4 * self.net.ptp(512) * hp
        transfer = self.net.stage_block(per_rank_bytes, same_node=same_node)
        # The endpoint pays the hyperthread co-scheduling penalty and the
        # FlexPath non-zero-copy buffer handling on top of the inline cost;
        # together they produce the ~50% Catalyst-slice penalty the paper
        # reports for the in transit deployment (Sec. 4.1.4).
        staging_overhead = hp * 1.30
        if endpoint_analysis == "histogram":
            endpoint = self.histogram().analysis_per_step * staging_overhead
        elif endpoint_analysis == "autocorrelation":
            endpoint = self.autocorrelation().analysis_per_step * staging_overhead
        elif endpoint_analysis == "catalyst-slice":
            endpoint = self.catalyst_slice().analysis_per_step * staging_overhead
        else:
            raise ValueError(f"unknown endpoint analysis {endpoint_analysis!r}")
        tl = simulate_staging(
            n_steps=c.steps,
            sim_time=self.sim_step * sim_factor,
            advance_time=advance,
            transfer_time=transfer,
            endpoint_time=endpoint,
        )
        # Reader initialization: expensive on Cori (OS jitter + shared
        # interconnect during co-allocation), ~10x cheaper on Titan
        # (Sec. 4.1.4).
        reader_init_rate = 1.1e-4 if c.machine.name == "cori" else 1.1e-5
        return {
            "writer_initialize": 0.3,
            "adios_advance": tl.writer_advance_mean,
            "adios_analysis": tl.writer_analysis_mean,
            "endpoint_initialize": reader_init_rate * c.cores,
            "endpoint_analysis": endpoint,
            "makespan": tl.makespan,
        }

    # -- post hoc (Fig. 11) ----------------------------------------------------------
    def posthoc(self, analysis: str, reader_fraction: float = 0.1, seed: int = 0) -> dict:
        """Aggregate post hoc costs over the full run at 10% of the cores."""
        c = self.cfg
        readers = max(int(c.cores * reader_fraction), 1)
        points_per_reader = c.total_points / readers
        read_one = float(
            self.io.read_samples(readers, c.cores, c.step_bytes, n=1, seed=seed)[0]
        )
        if analysis == "histogram":
            proc_one = points_per_reader / (c.machine.elem_rate * HIST_RATE_FACTOR) + 2 * self.net.allreduce(readers, 8)
            write_one = 0.002
        elif analysis == "autocorrelation":
            proc_one = points_per_reader * c.ac_window / (
                c.machine.elem_rate * AC_RATE_FACTOR
            )
            write_one = 0.002
        elif analysis == "slice":
            fb = self._framebuffer_bytes(c.catalyst_resolution)
            proc_one = (
                points_per_reader ** (2.0 / 3.0) / (c.machine.elem_rate * SLICE_RATE_FACTOR)
                + self.net.binary_swap(readers, fb)
            )
            write_one = self._png_time(c.catalyst_resolution)
        else:
            raise ValueError(f"unknown post hoc analysis {analysis!r}")
        return {
            "readers": readers,
            "read": read_one * c.steps,
            "process": proc_one * c.steps,
            "write": write_one * c.steps,
        }

    # -- figure drivers ---------------------------------------------------------------
    def all_insitu_configs(self) -> list[PhaseBreakdown]:
        return [
            self.baseline(),
            self.histogram(),
            self.autocorrelation(),
            self.catalyst_slice(),
            self.libsim_slice(),
        ]
