"""Native calibration micro-benchmarks.

The extreme-scale model expresses analysis costs as multiples of a
machine's miniapp compute rate (``elem_rate``).  This module measures the
same ratios on *this* host by running the real kernels, so tests can check
that the model's relative cost structure (histogram cheap, autocorrelation
~window x more, PNG encode dominated by zlib) holds for the actual code --
the "in situ elements performed as predicted by the miniapplication
results" cross-check of Sec. 5, turned into an assertion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.autocorrelation import AutocorrelationState
from repro.analysis.histogram import local_histogram
from repro.miniapp.oscillator import default_oscillators
from repro.render.png import encode_png


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@dataclass
class HostCalibration:
    """Measured per-element rates on the current host (elements/second)."""

    oscillator_rate: float  # grid-point x oscillator evaluations / s
    histogram_rate: float  # values binned / s
    autocorr_rate: float  # value x delay updates / s
    zlib_rate: float  # image bytes DEFLATEd / s

    @property
    def hist_factor(self) -> float:
        """Histogram rate relative to the miniapp fill rate."""
        return self.histogram_rate / self.oscillator_rate

    @property
    def autocorr_factor(self) -> float:
        return self.autocorr_rate / self.oscillator_rate


def calibrate_host(n: int = 64, window: int = 8, image: int = 256) -> HostCalibration:
    """Run the real kernels on an ``n^3`` block and fit the rates."""
    oscs = default_oscillators()
    ax = np.linspace(0.0, 1.0, n)
    x = ax[:, None, None]
    y = ax[None, :, None]
    z = ax[None, None, :]

    def fill():
        field = np.zeros((n, n, n))
        for o in oscs:
            field += o.evaluate(x, y, z, 0.37)
        return field

    t_fill = _time(fill)
    oscillator_rate = len(oscs) * n**3 / t_fill

    field = fill()
    vmin, vmax = float(field.min()), float(field.max())
    t_hist = _time(lambda: local_histogram(field, 64, vmin, vmax))
    histogram_rate = n**3 / t_hist

    state = AutocorrelationState(window, n**3)
    flat = field.reshape(-1)
    # Warm past the ramp-up so all delays update.
    for _ in range(window):
        state.update(flat)
    t_ac = _time(lambda: state.update(flat))
    autocorr_rate = window * n**3 / t_ac

    rng = np.random.default_rng(0)
    img = rng.integers(0, 256, (image, image, 3), dtype=np.uint8)
    t_png = _time(lambda: encode_png(img, 6))
    zlib_rate = img.nbytes / t_png

    return HostCalibration(
        oscillator_rate=oscillator_rate,
        histogram_rate=histogram_rate,
        autocorr_rate=autocorr_rate,
        zlib_rate=zlib_rate,
    )
