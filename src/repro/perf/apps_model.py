"""Science-application models: PHASTA (Table 2), AVF-LESLIE (Figs. 15-16),
Nyx (Fig. 17).

Each model takes the paper's run configurations and produces the same rows
the paper reports.  Solver rates are calibrated per code (they are full
production solvers, orders of magnitude more expensive per element than the
miniapp); the in situ terms reuse the same network/compositing/PNG models
as the miniapp study -- that cross-model reuse is the point: the paper's
claim is that "the in situ elements of those runs performed as predicted by
the miniapplication results on Cori" (Sec. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perf.machine import MIRA, TITAN, CORI, MachineModel
from repro.perf.network import NetworkModel


# --------------------------------------------------------------------------
# PHASTA (Sec. 4.2.1, Table 2)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PhastaRun:
    """One PHASTA run configuration (IS1/IS2/IS3)."""

    name: str
    elements: float
    ranks: int
    nodes: int
    image: tuple[int, int]
    steps: int
    image_every: int = 2
    machine: MachineModel = MIRA
    #: Implicit-FEM solve cost per element per rank-step (s); depends on
    #: ranks-per-core packing, so set per run from the paper's totals.
    solver_rate: float = 600.0  # elements/s/rank


#: The paper's three Mira runs.  Solver rates back out of Table 2's totals.
PHASTA_RUNS = {
    "IS1": PhastaRun("IS1", 1.28e9, 262_144, 4_092, (800, 200), 120, solver_rate=610.0),
    "IS2": PhastaRun("IS2", 1.28e9, 262_144, 8_192, (2900, 725), 120, solver_rate=905.0),
    "IS3": PhastaRun("IS3", 6.33e9, 1_048_576, 32_768, (2900, 725), 30, solver_rate=318.0),
}


@dataclass
class PhastaResult:
    name: str
    onetime_cost: float
    insitu_per_step: float
    total_time: float
    percent_insitu: float
    png_time: float
    composite_time: float


def phasta_table2(
    run: PhastaRun, compression: bool = True
) -> PhastaResult:
    """Model one Table 2 row.

    The per-image in situ cost = slice extraction over the unstructured
    mesh + hierarchical compositing + the *serial* rank-0 PNG encode, whose
    zlib stage dominates for large images ("the ZLIB compression time in
    generating the PNG file was the culprit").  ``compression=False``
    reproduces the paper's skip-compression experiment (4.03 s -> 0.518 s
    on the 8-process toy problem).
    """
    net = NetworkModel(run.machine)
    w, h = run.image
    image_bytes = w * h * 4
    elems_per_rank = run.elements / run.ranks
    # Extraction: ranks intersecting the slice walk their local cells.
    extract = elems_per_rank / (run.machine.elem_rate * 2.0)
    composite = net.binary_swap(run.ranks, image_bytes)
    # Rank-0 serial stages: fixed pipeline bring-up (slow BG/Q serial core)
    # plus rasterization proportional to pixel count plus the zlib encode.
    pipeline_fixed = 1.0
    render = (w * h) / 3.0e6
    png = (
        (w * h * 3) / run.machine.zlib_rate
        if compression
        else (w * h * 3) / 50.0e6  # store-mode PNG: a memcpy-rate pass
    )
    insitu_per_image = extract + composite + pipeline_fixed + render + png
    # In situ runs every `image_every` steps; report per *in situ* step as
    # the paper does (its "In Situ Compute per Time Step" is per image).
    insitu_per_step = insitu_per_image
    images = run.steps // run.image_every
    onetime = 1.0 + 2.0e-6 * run.ranks / math.log2(run.ranks)
    solver_step = elems_per_rank / run.solver_rate
    total = onetime + run.steps * solver_step + images * insitu_per_image
    percent = 100.0 * (onetime + images * insitu_per_image) / total
    return PhastaResult(
        name=run.name,
        onetime_cost=onetime,
        insitu_per_step=insitu_per_step,
        total_time=total,
        percent_insitu=percent,
        png_time=png,
        composite_time=composite,
    )


# --------------------------------------------------------------------------
# AVF-LESLIE (Sec. 4.2.2, Figs. 15-16)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AVFRun:
    """AVF-LESLIE strong-scaling configuration on Titan."""

    grid: int = 1025  # 1025^3 points
    cores: int = 16_384
    steps: int = 100
    libsim_every: int = 5
    machine: MachineModel = TITAN
    #: Finite-volume update rate (points/s/core) for the reactive solver.
    solver_rate: float = 90_000.0
    image: tuple[int, int] = (1600, 1600)


@dataclass
class AVFResult:
    cores: int
    solver_per_step: float
    sensei_overhead_per_step: float
    libsim_per_invocation: float
    avg_added_per_step: float
    posthoc_write_per_step: float
    temporal_resolution_gain: float


def avf_strong_scaling(run: AVFRun) -> AVFResult:
    """Model one core count of the Fig. 15 study.

    Strong scaling: points/core falls with cores; "AVF-LESLIE scaled well
    up to 16K cores, but efficiency degraded at higher core counts" -- a
    communication-bound degradation term.  The Libsim invocation renders 3
    isosurfaces + 3 slices: plot setup + extraction + rendering + a
    tree composite of full frames + the image save; its cost is dominated
    by fixed visualization complexity, growing slowly (log p) with scale --
    7-8 s at 65K (Fig. 16).
    """
    net = NetworkModel(run.machine)
    total_points = run.grid**3
    points_per_core = total_points / run.cores
    base_step = points_per_core / run.solver_rate
    # Efficiency loss beyond 16K cores (halo exchange latency dominance).
    degradation = 1.0 + max(0.0, (run.cores / 16_384.0) - 1.0) * 0.035
    solver = base_step * degradation
    w, h = run.image
    image_bytes = w * h * 4
    # 3 isosurfaces (volume sweep) + 3 slices (plane sweep).
    iso_extract = 3 * points_per_core / (run.machine.elem_rate * 1.2)
    slice_extract = 3 * points_per_core ** (2.0 / 3.0) / (run.machine.elem_rate * 10)
    plot_setup = 1.2  # session read + plot/pipeline setup per invocation
    render_fixed = 2.0  # geometry rasterization of the 6-plot scene
    # Image reduction across all ranks: latency-bound tree whose per-round
    # cost is dominated by scene-graph coordination, calibrated to the
    # 7-8 s Libsim invocations at 65K (Fig. 16).
    composite = 0.25 * math.ceil(math.log2(max(run.cores, 2))) + net.ptp(image_bytes)
    save = (w * h * 3) / run.machine.zlib_rate
    libsim = plot_setup + iso_extract + slice_extract + render_fixed + composite + save
    sensei_overhead = 0.35  # expose data + derived vorticity (< 0.5 s, Fig. 16)
    avg_added = sensei_overhead + libsim / run.libsim_every
    # Post hoc comparison: ~24 s to write one volume step at 65K (5 conserved
    # variables of 1025^3 doubles through the shared-file path).
    volume_bytes = total_points * 8 * 5
    posthoc_write = volume_bytes / (run.machine.io_shared_file_bw * 0.45)
    # "one can afford 3-4 times greater temporal resolution": one skipped
    # volume dump buys 3-4 Libsim visualizations.
    gain = posthoc_write / libsim
    return AVFResult(
        cores=run.cores,
        solver_per_step=solver,
        sensei_overhead_per_step=sensei_overhead,
        libsim_per_invocation=libsim,
        avg_added_per_step=avg_added,
        posthoc_write_per_step=posthoc_write,
        temporal_resolution_gain=gain,
    )


def avf_periteration_series(run: AVFRun) -> list[float]:
    """Fig. 16: per-iteration SENSEI cost -- the 1-in-5 sawtooth."""
    res = avf_strong_scaling(run)
    series = []
    for step in range(1, run.steps + 1):
        if step % run.libsim_every == 0:
            series.append(res.sensei_overhead_per_step + res.libsim_per_invocation)
        else:
            series.append(res.sensei_overhead_per_step)
    return series


# --------------------------------------------------------------------------
# Nyx (Sec. 4.2.3, Fig. 17)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NyxRun:
    """Nyx convergence-study configuration on Cori.

    The three runs keep cells/core constant (~2.1M) yet the paper's wall
    clocks (45 min / 1 h / 2 h 15 m over 40 steps) show the solver's weak
    scaling degrading -- the PM gravity solve's global communication.  We
    capture that with a calibrated scaling exponent rather than inventing a
    solver communication model the paper gives no breakdown for.
    """

    grid: int  # grid^3 cells
    cores: int
    steps: int = 40
    machine: MachineModel = CORI
    #: Hydro+gravity update rate at the 512-core base (cells/s/core).
    solver_rate: float = 31_000.0
    #: Weak-scaling degradation exponent: step time grows as
    #: (cores/512)^exp; fit to 67.5 s -> 90 s -> 202 s.
    scaling_exp: float = 0.26


NYX_RUNS = [
    NyxRun(1024, 512),
    NyxRun(2048, 4096),
    NyxRun(4096, 32_768),
]


@dataclass
class NyxResult:
    grid: int
    cores: int
    solver_per_step: float
    histogram_per_step: float
    slice_per_step: float
    plotfile_write: float
    ghost_bytes_per_rank: int
    slice_extra_bytes: int


def nyx_scaling(run: NyxRun) -> NyxResult:
    """Model one Fig. 17 configuration.

    The headline claims: in situ analysis (histogram, Catalyst slice) costs
    < 1 s per step -- negligible against minutes-long solver steps -- while
    each skipped plot file saves 17-312 s; the histogram's memory overhead
    is the ~2 MB/rank ghost byte array and the slice adds 200-300 MB.
    """
    net = NetworkModel(run.machine)
    cells = run.grid**3
    cells_per_core = cells / run.cores
    solver = (
        cells_per_core / run.solver_rate * (run.cores / 512.0) ** run.scaling_exp
    )
    hist = cells_per_core / (run.machine.elem_rate * 55.0) + 2 * net.allreduce(
        run.cores, 8
    ) + net.reduce(run.cores, 64 * 8)
    fb = 1920 * 1080 * 4
    slice_t = (
        cells_per_core ** (2.0 / 3.0) / (run.machine.elem_rate * 80.0)
        + net.binary_swap(run.cores, fb)
        + (1920 * 1080 * 3) / run.machine.zlib_rate
    )
    # Plot files hold eight variables.  BoxLib writes aggregated multifab
    # files; effective bandwidth grows with the writer pool, calibrated to
    # the paper's 17 s / 80 s / 312 s plot-file times.
    plot_bytes = cells * 8 * 8
    plot_bw = 4.0e9 * (run.cores / 512.0) ** 0.3
    plotfile = plot_bytes / plot_bw
    ghost_bytes = int(2 * 1024 * 1024)
    slice_extra = 250 * 1024 * 1024
    return NyxResult(
        grid=run.grid,
        cores=run.cores,
        solver_per_step=solver,
        histogram_per_step=hist,
        slice_per_step=slice_t,
        plotfile_write=plotfile,
        ghost_bytes_per_rank=ghost_bytes,
        slice_extra_bytes=slice_extra,
    )
