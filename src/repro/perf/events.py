"""Discrete-event simulation of staged (in transit) pipelines.

The FlexPath deployment is a two-stage pipeline with a one-step flow-control
window: the writer cannot ship step N+1 until the endpoint has accepted step
N.  ``adios::analysis`` on the writer therefore contains both transmission
time and "any blocking time if the reader is not yet ready" (Sec. 4.1.4).
This tiny event simulator reproduces that coupling exactly, so the modeled
Fig. 8/9 bars carry the right blocking behaviour at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import TraceSession


@dataclass
class StagingTimeline:
    """Per-step and aggregate timings of a simulated staged run."""

    n_steps: int
    writer_advance: list[float]
    writer_analysis: list[float]  # transmission + blocking
    endpoint_busy: list[float]
    endpoint_idle: list[float]
    makespan: float

    @property
    def writer_analysis_mean(self) -> float:
        return sum(self.writer_analysis) / self.n_steps

    @property
    def writer_advance_mean(self) -> float:
        return sum(self.writer_advance) / self.n_steps

    @property
    def endpoint_idle_total(self) -> float:
        return sum(self.endpoint_idle)


def simulate_staging(
    n_steps: int,
    sim_time: float,
    advance_time: float,
    transfer_time: float,
    endpoint_time: float,
    window: int = 1,
    trace: "TraceSession | None" = None,
) -> StagingTimeline:
    """Simulate ``n_steps`` of writer -> endpoint staging.

    Parameters
    ----------
    sim_time:
        Solver time per step on the writer.
    advance_time:
        Metadata update cost per step (``adios::advance``).
    transfer_time:
        Pure data transmission cost per step.
    endpoint_time:
        Endpoint analysis cost per step.
    window:
        Flow-control depth: how many steps the endpoint may lag before the
        writer blocks (our native implementation uses 1).
    trace:
        Optional :class:`repro.trace.TraceSession` receiving *modeled*
        spans in the measured-trace schema: the writer's timeline on rank
        0 (``simulation::advance`` / ``adios::advance`` /
        ``adios::analysis``, the latter containing the flow-control
        blocking the paper measures there) and the endpoint's on rank 1
        (``endpoint::analysis``), so a real FlexPath run and the model
        can be overlaid in one Perfetto view or diffed per phase.
    """
    if n_steps <= 0:
        raise ValueError("n_steps must be positive")
    if window <= 0:
        raise ValueError("window must be positive")
    writer_rec = trace.recorder(0) if trace is not None else None
    endpoint_rec = trace.recorder(1) if trace is not None else None
    writer_clock = 0.0
    writer_advance: list[float] = []
    writer_analysis: list[float] = []
    endpoint_busy: list[float] = []
    endpoint_idle: list[float] = []
    # endpoint_free[s] = time the endpoint finishes analysing step s.
    endpoint_finish: list[float] = []
    endpoint_clock = 0.0
    for s in range(n_steps):
        step = s + 1
        if writer_rec is not None:
            writer_rec.complete(
                "simulation::advance", writer_clock, writer_clock + sim_time,
                step=step,
            )
        writer_clock += sim_time
        writer_advance.append(advance_time)
        if writer_rec is not None:
            writer_rec.complete(
                "adios::advance", writer_clock, writer_clock + advance_time,
                step=step,
            )
        writer_clock += advance_time
        # Blocking: may not run ahead of the endpoint by more than `window`.
        ready_at = 0.0 if s < window else endpoint_finish[s - window]
        wait = max(0.0, ready_at - writer_clock)
        if writer_rec is not None:
            writer_rec.complete(
                "adios::analysis", writer_clock,
                writer_clock + wait + transfer_time, step=step,
            )
        writer_clock += wait + transfer_time
        writer_analysis.append(wait + transfer_time)
        # Endpoint starts once the data has landed and it is free.
        start = max(writer_clock, endpoint_clock)
        endpoint_idle.append(max(0.0, start - endpoint_clock))
        if endpoint_rec is not None:
            endpoint_rec.complete(
                "endpoint::analysis", start, start + endpoint_time, step=step
            )
        endpoint_clock = start + endpoint_time
        endpoint_busy.append(endpoint_time)
        endpoint_finish.append(endpoint_clock)
    return StagingTimeline(
        n_steps=n_steps,
        writer_advance=writer_advance,
        writer_analysis=writer_analysis,
        endpoint_busy=endpoint_busy,
        endpoint_idle=endpoint_idle,
        makespan=max(writer_clock, endpoint_clock),
    )
