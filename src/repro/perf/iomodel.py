"""Parallel-filesystem cost models (Table 1, Fig. 10, Fig. 11).

Two write paths with distinct cost structures:

- **file-per-process** (the multi-file VTK path): data streams at the
  filesystem's aggregate bandwidth, but each of the P files pays a
  metadata-server create.  At 45K cores the metadata term dominates --
  123 GB moves in ~0.2 s at 700 GB/s, yet the paper measures 9.05 s; the
  missing ~8.8 s is ~45K file creates at ~0.2 ms each.  That term is what
  this model calibrates against Table 1.
- **collective shared-file** (MPI-IO subarray): extent-lock contention and
  limited striping pin throughput near a constant effective bandwidth
  (Table 1 implies ~5.2 GB/s on Cori at every scale).

Reads add multiplicative lognormal noise -- "significant variability in
read times on the NERSC Lustre system at scale" from shared I/O resources
and external interference (Fig. 11, citing Lofstead et al.).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.perf.machine import MachineModel


@dataclass(frozen=True)
class IOModel:
    machine: MachineModel
    #: Fraction of Lustre stripe targets (OSTs) degraded or offline.  The
    #: surviving stripes carry the full load, so every bandwidth-bound term
    #: scales by ``1 / (1 - degraded_fraction)`` -- the filesystem-side
    #: failure mode the resilience layer's write retries have to ride out.
    degraded_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.degraded_fraction < 1.0:
            raise ValueError("degraded_fraction must be in [0, 1)")

    def _derate(self, bandwidth: float) -> float:
        return bandwidth * (1.0 - self.degraded_fraction)

    # -- writes -------------------------------------------------------------
    def file_per_process_write(self, p: int, total_bytes: float) -> float:
        """One step's file-per-core write (the VTK I/O row of Table 1)."""
        transfer = total_bytes / self._derate(self.machine.io_aggregate_bw)
        metadata = p * self.machine.io_file_create
        return transfer + metadata

    def shared_file_write(self, p: int, total_bytes: float) -> float:
        """One step's collective MPI-IO write (Table 1's MPI-IO row)."""
        transfer = total_bytes / self._derate(self.machine.io_shared_file_bw)
        sync = 2.0 * self.machine.net_latency * math.ceil(math.log2(max(p, 2)))
        return transfer + sync

    # -- reads ----------------------------------------------------------------
    def read(
        self,
        p_readers: int,
        n_pieces: int,
        total_bytes: float,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Post hoc read of one step's file-per-process data.

        Readers are few (10% of writers), but every one of the
        ``n_pieces`` piece files still has to be opened -- the metadata
        load is set by how the data was *written*, which is what drives the
        5-10x-the-miniapp read costs at 45K (Fig. 11).  Transfer bandwidth
        for many smallish files is well below the streaming aggregate, and
        is also bounded by what the few reader nodes can ingest.
        Variability is multiplicative lognormal.
        """
        nodes = max(self.machine.nodes_for(p_readers), 1)
        client_bw = nodes * self.machine.net_bandwidth
        eff_bw = min(self._derate(self.machine.io_aggregate_bw) * 0.2, client_bw)
        base = (
            total_bytes / eff_bw
            + n_pieces * 0.42 * self.machine.io_file_create
        )
        if rng is not None:
            base *= float(
                np.exp(rng.normal(0.0, self.machine.io_variability_sigma))
            )
        return base

    def read_samples(
        self,
        p_readers: int,
        n_pieces: int,
        total_bytes: float,
        n: int,
        seed: int = 0,
    ) -> np.ndarray:
        """``n`` independent read-time samples (for variability studies)."""
        rng = np.random.default_rng(seed)
        return np.array(
            [self.read(p_readers, n_pieces, total_bytes, rng=rng) for _ in range(n)]
        )

    # -- burst buffer staging ---------------------------------------------------
    def burst_buffer_write(
        self,
        p: int,
        total_bytes: float,
        step_interval: float,
        bb_bandwidth: float = 1.7e12,
    ) -> tuple[float, bool]:
        """Per-step write cost through a burst buffer, with async drain.

        The paper's conclusion points at "burst buffers on Cori, to achieve
        accelerated staging operations".  The simulation pays only the
        absorb cost (``total_bytes / bb_bandwidth``) as long as the buffer
        drains to the parallel filesystem faster than steps arrive; once
        ``drain_time > step_interval`` the buffer fills and the write cost
        reverts to the filesystem-bound path.

        Returns ``(per_step_cost, drains_keep_up)``.
        """
        if step_interval <= 0:
            raise ValueError("step_interval must be positive")
        absorb = total_bytes / bb_bandwidth + 2.0 * self.machine.net_latency
        drain = total_bytes / self._derate(self.machine.io_aggregate_bw)
        if drain <= step_interval:
            return absorb, True
        # Steady state: the buffer is full; writes proceed at drain rate.
        return max(absorb, drain - step_interval + absorb), False

    # -- aggregated staging (GLEAN) ------------------------------------------------
    def aggregated_write(
        self, p: int, total_bytes: float, ranks_per_aggregator: int
    ) -> float:
        """GLEAN-style many-to-few write: fewer files, plus forwarding."""
        # Ceiling division: a trailing partial group still needs its own
        # aggregator (and metadata create) -- flooring undercounts for any
        # non-divisible layout (e.g. p=100, 64 ranks/aggregator is 2 files,
        # not 1), which skews the Table 1 GLEAN-path metadata term.
        aggregators = max(-(-p // max(ranks_per_aggregator, 1)), 1)
        forward = (total_bytes / p) * (ranks_per_aggregator - 1) / self.machine.net_bandwidth
        transfer = total_bytes / self._derate(self.machine.io_aggregate_bw)
        metadata = aggregators * self.machine.io_file_create
        return forward + transfer + metadata
