"""Post hoc analysis driver.

Runs on the reader communicator (typically ~10% of the writer count).
Each reader claims a sub-extent of the global grid, reads only the stored
pieces overlapping it, and drives the selected analysis per step, timing
``read`` / ``process`` / ``write`` exactly as Fig. 11 is broken out.

The autocorrelation path keeps a per-cell window across steps, which is the
reason the paper's post hoc autocorrelation runs needed twice the nodes
("they need more memory to cache timesteps for the analysis") -- the
per-reader state here is ``2 * window * cells_per_reader`` doubles, tracked
via the memory sink.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.autocorrelation import AutocorrelationResult, AutocorrelationState
from repro.analysis.histogram import Histogram, parallel_histogram
from repro.render.colormap import VIRIDIS
from repro.render.compositing import binary_swap
from repro.render.png import encode_png
from repro.render.rasterize import rasterize_slice
from repro.storage.vtk_io import read_index, read_subextent, reader_extent
from repro.util.memory import MemoryTracker
from repro.util.timers import TimerRegistry


@dataclass
class PosthocResult:
    """One reader rank's outcome."""

    steps: int
    read_time: float
    process_time: float
    write_time: float
    histograms: list[Histogram] = field(default_factory=list)
    autocorrelation: AutocorrelationResult | None = None
    slice_pngs: list[bytes] = field(default_factory=list)


def run_posthoc_analysis(
    comm,
    directory,
    steps: list[int],
    analysis: str,
    bins: int = 32,
    ac_window: int = 4,
    ac_topk: int = 3,
    slice_axis: int = 2,
    slice_index: int = 0,
    resolution: tuple[int, int] = (64, 64),
    output_dir=None,
    timers: TimerRegistry | None = None,
    memory: MemoryTracker | None = None,
) -> PosthocResult:
    """Read stored steps and run ``analysis`` ('histogram',
    'autocorrelation', or 'slice') over them.

    Returns per-rank timings; analysis products live on reader rank 0.
    """
    if analysis not in ("histogram", "autocorrelation", "slice"):
        raise ValueError(f"unknown post hoc analysis {analysis!r}")
    timers = timers if timers is not None else TimerRegistry()
    index = read_index(directory, steps[0])
    whole = index.whole_extent
    mine = reader_extent(whole, comm.size, comm.rank)
    result = PosthocResult(steps=len(steps), read_time=0.0, process_time=0.0, write_time=0.0)
    ac_state: AutocorrelationState | None = None
    if output_dir is not None and comm.rank == 0:
        os.makedirs(output_dir, exist_ok=True)

    for step in steps:
        with timers.time("posthoc::read"):
            block = read_subextent(directory, step, mine)

        with timers.time("posthoc::process"):
            if analysis == "histogram":
                h = parallel_histogram(comm, block, bins)
                if h is not None:
                    result.histograms.append(h)
            elif analysis == "autocorrelation":
                if ac_state is None:
                    n_local = block.size
                    before = comm.exscan(n_local)
                    offset = 0 if before is None else int(before)
                    ac_state = AutocorrelationState(
                        ac_window, n_local, global_offset=offset, memory=memory
                    )
                ac_state.update(block)
            else:  # slice
                u_ax, v_ax = [a for a in range(3) if a != slice_axis]
                lo = (mine.i0, mine.j0, mine.k0)[slice_axis]
                hi = (mine.i1, mine.j1, mine.k1)[slice_axis]
                wb = [
                    (whole.i0, whole.i1),
                    (whole.j0, whole.j1),
                    (whole.k0, whole.k1),
                ]
                global2d = (*wb[u_ax], *wb[v_ax])
                from repro.mpi import MAX, MIN

                vmin = comm.allreduce(float(block.min()), MIN)
                vmax = comm.allreduce(float(block.max()), MAX)
                if lo <= slice_index <= hi:
                    sel: list = [slice(None)] * 3
                    sel[slice_axis] = slice_index - lo
                    vals = block[tuple(sel)]
                    mb = [
                        (mine.i0, mine.i1),
                        (mine.j0, mine.j1),
                        (mine.k0, mine.k1),
                    ]
                    partial = rasterize_slice(
                        vals,
                        (*mb[u_ax], *mb[v_ax]),
                        global2d,
                        resolution[0],
                        resolution[1],
                        colormap=VIRIDIS,
                        vmin=vmin,
                        vmax=vmax,
                    )
                else:
                    from repro.render.rasterize import blank_image

                    partial = blank_image(*resolution)
                final = binary_swap(comm, partial)

        if analysis == "slice":
            with timers.time("posthoc::write"):
                if final is not None:
                    blob = encode_png(final.rgb)
                    result.slice_pngs.append(blob)
                    if output_dir is not None:
                        with open(
                            os.path.join(output_dir, f"posthoc_{step:06d}.png"), "wb"
                        ) as fh:
                            fh.write(blob)

    if analysis == "autocorrelation" and ac_state is not None:
        with timers.time("posthoc::process"):
            result.autocorrelation = ac_state.finalize(comm, ac_topk)

    if analysis != "slice" and comm.rank == 0 and output_dir is not None:
        with timers.time("posthoc::write"):
            out = os.path.join(output_dir, f"posthoc_{analysis}.txt")
            with open(out, "w", encoding="utf-8") as fh:
                if analysis == "histogram":
                    for h in result.histograms:
                        fh.write(" ".join(str(c) for c in h.counts) + "\n")
                elif result.autocorrelation is not None:
                    for d, top in enumerate(result.autocorrelation.top):
                        fh.write(f"delay {d}: {top}\n")

    result.read_time = timers.total("posthoc::read")
    result.process_time = timers.total("posthoc::process")
    result.write_time = timers.total("posthoc::write")
    return result
