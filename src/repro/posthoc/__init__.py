"""The traditional *post hoc* pipeline (Sec. 4.1.5).

"First, a code will write data to persistent storage ... Later, an analysis
or visualization code will read that data from persistent storage then
perform its tasks."  This package is that second code: a reader-side SPMD
driver that runs on ~10% of the writer core count (the paper's
configuration), reads each stored time step by sub-extent, runs the same
analyses the in situ path runs, and reports the read/process/write split of
Fig. 11.
"""

from repro.posthoc.pipeline import PosthocResult, run_posthoc_analysis

__all__ = ["run_posthoc_analysis", "PosthocResult"]
