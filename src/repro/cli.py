"""Command-line interface: regenerate the paper's tables and figures.

::

    python -m repro list              # available experiments
    python -m repro run fig10         # one experiment's rows
    python -m repro run all           # everything
    python -m repro run table1 fig17  # a subset
    python -m repro lint src/         # legacy repo-contract linter (5 rules)
    python -m repro analyze src/      # full CFG/dataflow static analyzer
    python -m repro chaos --seed 42   # seeded fault-injection harness
    python -m repro nbody --ranks 2   # particle miniapp through all 4 infras
    python -m repro control --seed 7  # online-autotuning closed-loop demo
    python -m repro serve --socket /tmp/repro.sock --tenants a,b --secret s
    python -m repro submit --socket /tmp/repro.sock --tenant a --secret s
    python -m repro report trace.json # Sec. 4.1.1 phase breakdown of a trace
    python -m repro report measured.json --against modeled.json   # model diff
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import available_experiments, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation tables/figures of 'Performance "
            "Analysis, Design Considerations, and Applications of "
            "Extreme-scale In Situ Infrastructures' (SC'16) from the "
            "calibrated performance model."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all'",
    )
    lint = sub.add_parser(
        "lint",
        help=(
            "run the legacy repo-contract linter (five PR 2 rules; alias "
            "over repro.analyze)"
        ),
    )
    lint.add_argument(
        "paths", nargs="*", help="files or directories (default: src/)"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    analyze = sub.add_parser(
        "analyze",
        help=(
            "run the CFG/dataflow static analyzer (collective matching, "
            "resource typestate, fork safety; see repro.analyze)"
        ),
    )
    analyze.add_argument(
        "args",
        nargs=argparse.REMAINDER,
        help="arguments for python -m repro.analyze (paths, --format, ...)",
    )
    report = sub.add_parser(
        "report",
        help=(
            "render the Sec. 4.1.1 phase breakdown (one-time vs per-timestep, "
            "mean/max across ranks) of a Chrome trace JSON file"
        ),
    )
    report.add_argument("trace", help="Chrome trace JSON (TraceSession.export)")
    report.add_argument(
        "--against",
        metavar="TRACE",
        help=(
            "second trace to diff against (e.g. a modeled timeline from "
            "repro.trace.session_from_breakdown); prints per-phase "
            "measured/modeled ratios"
        ),
    )
    report.add_argument(
        "--validate",
        action="store_true",
        help="schema-validate the trace(s) and fail on any violation",
    )
    chaos = sub.add_parser(
        "chaos",
        help=(
            "run the seeded end-to-end fault-injection harness (miniapp + "
            "in-line histogram + retried BP writes + FlexPath staging with "
            "in-line fallback) and write a recovery report"
        ),
    )
    chaos.add_argument("--seed", type=int, default=42, help="fault-plan seed")
    chaos.add_argument(
        "--app",
        choices=("oscillator", "nbody"),
        default="oscillator",
        help=(
            "simulation under test: the grid-shaped oscillator miniapp or "
            "the particle nbody miniapp (ragged migration payloads; "
            "checkpoint interval is forced to 1 so recovery replays "
            "particle ownership exactly)"
        ),
    )
    chaos.add_argument(
        "--ranks", type=int, default=4, help="world size (writers + 1 endpoint)"
    )
    chaos.add_argument("--steps", type=int, default=10, help="simulation steps")
    chaos.add_argument(
        "--out",
        default="chaos_artifacts",
        help="artifact directory (recovery report, histograms, PNGs)",
    )
    chaos.add_argument(
        "--ready-timeout",
        type=float,
        default=0.25,
        help="seconds a writer waits for the endpoint's flow-control token",
    )
    chaos.add_argument(
        "--checkpoint-interval",
        type=int,
        default=3,
        help="steps between simulation checkpoints",
    )
    chaos.add_argument(
        "--backend",
        choices=("thread", "process"),
        default=None,
        help=(
            "SPMD execution backend (default: REPRO_SPMD_BACKEND or "
            "thread); reports are byte-identical across backends"
        ),
    )
    chaos.add_argument(
        "--controller",
        action="store_true",
        help=(
            "gate staging attempts with the online autotuning controller "
            "(repro.control) instead of the circuit breaker and write its "
            "decision journal alongside the recovery report"
        ),
    )
    chaos.add_argument(
        "--sense",
        choices=("outcomes", "spans"),
        default="outcomes",
        help=(
            "controller verify feed: discrete staging outcomes (seed-"
            "deterministic journal) or measured per-phase spans via the "
            "live trace sensor (group-reduced; wall-clock-dependent)"
        ),
    )
    serve = sub.add_parser(
        "serve",
        help=(
            "run the long-running multi-tenant in situ service: clients "
            "stream simulation steps over a local socket into per-tenant "
            "analysis endpoints (histogram + Catalyst slice), under "
            "admission control, quotas, and journaled backpressure"
        ),
    )
    serve.add_argument("--socket", required=True, help="unix socket path")
    serve.add_argument(
        "--out", default="service_artifacts", help="artifact directory"
    )
    serve.add_argument(
        "--tenants",
        required=True,
        help=(
            "comma-separated tenant list, each NAME or NAME:PLACEMENT "
            "with placement in-line|staged (default staged)"
        ),
    )
    serve.add_argument(
        "--secret", required=True, help="token-signing secret"
    )
    serve.add_argument("--seed", type=int, default=0, help="decision seed")
    serve.add_argument(
        "--max-clients", type=int, default=16, help="admission ceiling"
    )
    serve.add_argument(
        "--credits", type=int, default=2, help="per-tenant flow-control window"
    )
    serve.add_argument(
        "--max-steps", type=int, default=None, help="per-tenant step quota"
    )
    serve.add_argument(
        "--byte-budget",
        type=int,
        default=None,
        help="per-tenant cumulative payload byte budget",
    )
    serve.add_argument(
        "--max-step-bytes",
        type=int,
        default=None,
        help="per-step payload ceiling",
    )
    serve.add_argument(
        "--rate", type=float, default=None, help="per-tenant steps/sec ceiling"
    )
    serve.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        help="server-wide bytes-in-flight budget (backpressure)",
    )
    serve.add_argument(
        "--expect",
        type=int,
        default=None,
        help="exit cleanly after this many tenants complete (EOS)",
    )
    serve.add_argument(
        "--bins", type=int, default=32, help="histogram bins per tenant"
    )
    serve.add_argument(
        "--resolution",
        default="160x90",
        help="Catalyst render resolution WxH",
    )
    serve.add_argument(
        "--no-render",
        action="store_true",
        help="disable the Catalyst slice pipeline (histogram only)",
    )
    submit = sub.add_parser(
        "submit",
        help=(
            "stream one tenant's deterministic synthetic workload into a "
            "running 'repro serve' instance"
        ),
    )
    submit.add_argument("--socket", required=True, help="unix socket path")
    submit.add_argument("--tenant", required=True, help="tenant name")
    submit.add_argument(
        "--secret",
        default=None,
        help="token-signing secret (mints a fresh token)",
    )
    submit.add_argument(
        "--token", default=None, help="explicit pre-minted token"
    )
    submit.add_argument("--steps", type=int, default=8, help="steps to stream")
    submit.add_argument(
        "--grid", default="64x64", help="per-step field shape WxH"
    )
    submit.add_argument("--seed", type=int, default=0, help="workload seed")
    submit.add_argument(
        "--workload",
        choices=("synthetic", "nbody"),
        default="synthetic",
        help=(
            "step generator: drifting-blob synthetic fields or the nbody "
            "miniapp's density projections (grid from --grid width)"
        ),
    )
    submit.add_argument(
        "--timeout", type=float, default=60.0, help="socket timeout seconds"
    )
    nbody = sub.add_parser(
        "nbody",
        help=(
            "run the particle-mesh N-body miniapp through the SENSEI "
            "bridge with the particle analyses (density projection, power "
            "spectrum, FoF halos) and any of the four infrastructure "
            "endpoints; writes an artifact-checksum manifest that is "
            "byte-identical across rank counts and SPMD backends"
        ),
    )
    nbody.add_argument(
        "--out", default="nbody_artifacts", help="artifact directory"
    )
    nbody.add_argument("--ranks", type=int, default=2, help="world size")
    nbody.add_argument("--steps", type=int, default=4, help="leapfrog steps")
    nbody.add_argument("--grid", type=int, default=16, help="mesh cells/axis")
    nbody.add_argument(
        "--particles", type=int, default=400, help="global particle count"
    )
    nbody.add_argument("--seed", type=int, default=42, help="IC seed")
    nbody.add_argument(
        "--infrastructures",
        default="catalyst,libsim,adios,glean",
        help="comma-separated endpoint subset (empty string: analyses only)",
    )
    nbody.add_argument(
        "--no-sanitize",
        action="store_true",
        help="skip the data-access sanitizer (guarded views, fingerprints)",
    )
    nbody.add_argument(
        "--backend",
        choices=("thread", "process"),
        default=None,
        help=(
            "SPMD execution backend (default: REPRO_SPMD_BACKEND or "
            "thread); manifests are byte-identical across backends"
        ),
    )
    control = sub.add_parser(
        "control",
        help=(
            "run the online-autotuning closed-loop demo: a modeled plant "
            "under an injected mid-run staging-bandwidth derating; the "
            "controller must degrade FlexPath->Catalyst, hold the latency "
            "SLO, probe, and recover (deterministic: same seed => "
            "byte-identical decision journal)"
        ),
    )
    control.add_argument("--seed", type=int, default=7, help="controller seed")
    control.add_argument(
        "--steps", type=int, default=36, help="simulation steps"
    )
    control.add_argument(
        "--writers", type=int, default=3, help="writer-group size"
    )
    control.add_argument(
        "--slo",
        type=float,
        default=0.65,
        help="latency SLO: max writer-visible seconds per step",
    )
    control.add_argument(
        "--derate",
        type=float,
        default=0.98,
        help="injected staging-fabric bandwidth derating during the outage",
    )
    control.add_argument(
        "--outage",
        type=int,
        nargs=2,
        default=(10, 25),
        metavar=("FIRST", "END"),
        help="half-open step window of the injected derating",
    )
    control.add_argument(
        "--out",
        default=None,
        help="artifact directory (decision journal, timeline, summary)",
    )
    control.add_argument(
        "--backend",
        choices=("thread", "process"),
        default=None,
        help="SPMD execution backend; journals are byte-identical across both",
    )
    return parser


def _chaos_main(args) -> int:
    from repro.faults.chaos import ChaosError, render_report, run_chaos

    try:
        report = run_chaos(
            seed=args.seed,
            ranks=args.ranks,
            steps=args.steps,
            out_dir=args.out,
            ready_timeout=args.ready_timeout,
            checkpoint_interval=args.checkpoint_interval,
            backend=args.backend,
            controller=args.controller,
            sense=args.sense,
            app=args.app,
        )
    except ChaosError as exc:
        print(f"chaos run failed accounting checks: {exc}", file=sys.stderr)
        return 1
    print(render_report(report))
    print(f"recovery report: {args.out}/recovery_report.json")
    if args.controller:
        print(f"decision journal: {args.out}/decision_journal.json")
    return 0


def _nbody_main(args) -> int:
    import os

    from repro.apps.nbody import run_nbody
    from repro.trace import (
        TraceSession,
        render_report,
        report_from_session,
        validate_chrome_trace,
    )

    infra = tuple(
        s.strip() for s in args.infrastructures.split(",") if s.strip()
    )
    session = TraceSession(name="nbody")
    manifest = run_nbody(
        args.out,
        ranks=args.ranks,
        steps=args.steps,
        grid=args.grid,
        n_particles=args.particles,
        seed=args.seed,
        backend=args.backend,
        infrastructures=infra,
        sanitize=not args.no_sanitize,
        trace=session,
    )
    trace_path = os.path.join(args.out, "measured.json")
    session.export(trace_path)
    problems = validate_chrome_trace(session.to_chrome())
    if problems:
        for p in problems:
            print(f"trace schema violation: {p}", file=sys.stderr)
        return 1
    report = report_from_session(session)
    rendered = render_report(report)
    report_path = os.path.join(args.out, "phase_report.txt")
    with open(report_path, "w", encoding="utf-8") as fh:
        fh.write(rendered + "\n")
    print(rendered)
    print(
        f"\n{args.ranks} rank(s), {args.steps} step(s): "
        f"{manifest['migrated']} particle(s) migrated, final counts "
        f"{manifest['final_counts']}, {manifest['halo_counts'][-1]} halo(s) "
        "at the last step"
    )
    print(f"artifact manifest: {args.out}/manifest.json")
    print(f"trace: {trace_path}; phase report: {report_path}")
    return 0


def _control_main(args) -> int:
    from repro.control import run_control_demo

    result = run_control_demo(
        seed=args.seed,
        steps=args.steps,
        writers=args.writers,
        slo_seconds=args.slo,
        derate=args.derate,
        derate_window=tuple(args.outage),
        out_dir=args.out,
        backend=args.backend,
    )
    print("\n".join(result["timeline"]))
    s = result["summary"]
    print(
        f"\ndegraded at step {s['degraded_at']}, recovered at step "
        f"{s['recovered_at']}; SLO ({s['slo_seconds']}s) exceeded on "
        f"{len(s['steps_over_slo'])}/{s['steps']} steps "
        f"(outage spanned {s['outage_steps']})"
    )
    if args.out:
        print(f"decision journal: {args.out}/decision_journal.json")
    return 0


def _parse_resolution(text: str) -> tuple[int, int]:
    w, _, h = text.partition("x")
    return int(w), int(h)


def _serve_main(args) -> int:
    import signal

    from repro.service import (
        QuotaSpec,
        ServiceServer,
        TenantRegistry,
        TenantSpec,
    )

    quota = QuotaSpec(
        max_steps=args.max_steps,
        byte_budget=args.byte_budget,
        max_step_bytes=args.max_step_bytes,
        rate_steps_per_s=args.rate,
        credits=args.credits,
    )
    registry = TenantRegistry()
    for item in args.tenants.split(","):
        name, _, placement = item.strip().partition(":")
        registry.register(
            TenantSpec(name, quota, placement=placement or "staged")
        )
    server = ServiceServer(
        args.socket,
        registry,
        args.secret,
        args.out,
        seed=args.seed,
        max_clients=args.max_clients,
        memory_budget=args.memory_budget,
        expect=args.expect,
        bins=args.bins,
        resolution=_parse_resolution(args.resolution),
        render=not args.no_render,
    )
    stop_requested = []
    signal.signal(signal.SIGTERM, lambda *_: stop_requested.append(True))
    server.start()
    print(
        f"serving {len(registry)} tenant(s) on {args.socket} "
        f"(seed {args.seed}); artifacts -> {args.out}",
        flush=True,
    )
    try:
        if args.expect is not None:
            while not server.wait(timeout=0.5):
                if stop_requested:
                    break
        else:
            import time as _time

            while not stop_requested:
                _time.sleep(0.25)
    except KeyboardInterrupt:
        pass
    server.stop()
    completed = sorted(server._completed)
    print(
        f"shutdown: {len(completed)} tenant(s) completed "
        f"({', '.join(completed) or 'none'}); journal + cost report in "
        f"{args.out}"
    )
    return 0


def _submit_main(args) -> int:
    from repro.service import (
        ServiceError,
        issue_token,
        run_client_workload,
    )

    if args.token is None and args.secret is None:
        print("submit needs --token or --secret", file=sys.stderr)
        return 2
    token = (
        args.token
        if args.token is not None
        else issue_token(args.secret, args.tenant)
    )
    try:
        summary = run_client_workload(
            args.socket,
            args.tenant,
            token,
            steps=args.steps,
            shape=_parse_resolution(args.grid),
            seed=args.seed,
            timeout=args.timeout,
            workload=args.workload,
        )
    except ServiceError as exc:
        print(f"submit failed for {args.tenant!r}: {exc}", file=sys.stderr)
        return 1
    rate = (
        summary["steps_admitted"] / summary["wall_seconds"]
        if summary["wall_seconds"] > 0
        else 0.0
    )
    print(
        f"{args.tenant}: {summary['steps_admitted']} admitted, "
        f"{summary['steps_shed']} shed, {summary['bytes_admitted']} bytes "
        f"in {summary['wall_seconds']:.3f}s ({rate:.1f} steps/s); "
        f"artifacts: {summary['artifacts']}"
    )
    return 0


def _report_main(args) -> int:
    from repro.trace import (
        diff_reports,
        load_chrome_trace,
        render_report,
        report_from_chrome,
        validate_chrome_trace,
    )

    try:
        doc = load_chrome_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    if args.validate:
        errors = validate_chrome_trace(doc)
        if errors:
            for e in errors:
                print(f"trace schema violation: {e}", file=sys.stderr)
            return 1
    measured = report_from_chrome(doc, name=args.trace)
    print(render_report(measured))
    if args.against:
        try:
            other_doc = load_chrome_trace(args.against)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.against!r}: {exc}", file=sys.stderr)
            return 2
        if args.validate:
            errors = validate_chrome_trace(other_doc)
            if errors:
                for e in errors:
                    print(f"trace schema violation: {e}", file=sys.stderr)
                return 1
        other = report_from_chrome(other_doc, name=args.against)
        print()
        print(diff_reports(measured, other))
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        # Forward verbatim: argparse's REMAINDER does not capture a leading
        # option (e.g. ``repro analyze --list-rules``).
        from repro.analyze import main as analyze_main

        return analyze_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        from repro.lint import main as lint_main

        return lint_main(
            (["--list-rules"] if args.list_rules else []) + list(args.paths)
        )
    if args.command == "report":
        return _report_main(args)
    if args.command == "chaos":
        return _chaos_main(args)
    if args.command == "nbody":
        return _nbody_main(args)
    if args.command == "control":
        return _control_main(args)
    if args.command == "serve":
        return _serve_main(args)
    if args.command == "submit":
        return _submit_main(args)
    catalog = available_experiments()
    if args.command == "list":
        width = max(len(n) for n in catalog)
        for name, desc in catalog.items():
            print(f"{name:<{width}}  {desc}")
        return 0

    names = list(catalog) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in catalog]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(catalog)}",
            file=sys.stderr,
        )
        return 2
    for name in names:
        header, rows = run_experiment(name)
        print(f"\n=== {name}: {catalog[name]} ===")
        print(header)
        print("-" * len(header))
        for row in rows:
            print(row)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
