"""Admission control and per-step quota verdicts, journaled and replayable.

Every decision the server takes about a tenant -- connection admission,
auth verdicts, per-step admit/shed/reject, endpoint degrade outcomes -- is
a pure function of (tenant spec, the tenant's own logical event sequence,
the seeded counter-hash draw stream).  Wall clock, thread scheduling, and
other tenants' traffic never enter: concurrency limits are enforced by
blocking (backpressure, traced as counters), not by decisions, precisely
so the journals replay byte-identically.

Each tenant gets two :class:`~repro.control.journal.DecisionJournal`\\ s --
``admission`` (written by the connection handler, in frame order) and
``endpoint`` (written by the analysis worker, in step order) -- because the
two threads interleave nondeterministically but each stream alone is
deterministic.  :func:`dump_journals` serializes all tenants sorted by
name with the journal module's canonical JSON, the byte-identity contract
the acceptance tests ``diff``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.control.journal import DecisionJournal, _jsonable
from repro.faults.plan import unit_draw
from repro.service import protocol
from repro.service.tenancy import TenantSpec

#: Draw-stream site for probabilistic shedding in the soft-budget zone.
#: Not a fault-injection site: shedding is policy, not failure.
SHED_SITE = "service.shed"


@dataclass(frozen=True)
class ServiceDecision:
    """One journaled service-layer decision (duck-typed for
    :meth:`DecisionJournal.record` via ``as_dict``)."""

    seq: int
    event: str
    verdict: str
    bytes: int = 0
    cumulative_bytes: int = 0
    draw: float | None = None
    detail: str | None = None

    # The journal serializes entries under a "decisions" key via as_dict.
    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "event": self.event,
            "verdict": self.verdict,
            "bytes": self.bytes,
            "cumulative_bytes": self.cumulative_bytes,
            "draw": _jsonable(self.draw),
            "detail": self.detail,
        }


class TenantPolicy:
    """One tenant's admission state machine: quotas, budgets, shed draws.

    Owned by the connection handler thread; a reconnecting tenant gets a
    fresh policy (quotas are per connection), but the journal persists on
    the server so refused reconnects are audited too.
    """

    def __init__(self, spec: TenantSpec, slot: int, seed: int) -> None:
        self.spec = spec
        self.slot = slot
        self.seed = seed
        self.steps_admitted = 0
        self.steps_shed = 0
        self.steps_rejected = 0
        self.bytes_admitted = 0
        self._events = 0
        self._shed_draws = 0

    def _next_seq(self) -> int:
        seq = self._events
        self._events += 1
        return seq

    def decide_connect(self, verdict: str, detail: str | None = None) -> ServiceDecision:
        return ServiceDecision(
            seq=self._next_seq(), event="connect", verdict=verdict, detail=detail
        )

    def decide_auth(self, verdict: str) -> ServiceDecision:
        return ServiceDecision(seq=self._next_seq(), event="auth", verdict=verdict)

    def decide_eos(self) -> ServiceDecision:
        return ServiceDecision(
            seq=self._next_seq(),
            event="eos",
            verdict="drain",
            cumulative_bytes=self.bytes_admitted,
            detail=f"admitted={self.steps_admitted} shed={self.steps_shed}",
        )

    def decide_disconnect(self, detail: str) -> ServiceDecision:
        return ServiceDecision(
            seq=self._next_seq(),
            event="disconnect",
            verdict="abort",
            cumulative_bytes=self.bytes_admitted,
            detail=detail,
        )

    def decide_step(self, payload_bytes: int) -> ServiceDecision:
        """The per-step quota verdict for a STEP of ``payload_bytes``.

        Verdict precedence: per-step size ceiling, then the hard step
        quota, then the hard byte budget, then the probabilistic shed zone
        (soft budget), then admit.  The shed draw consumes one counter-hash
        occurrence whether or not it fires, keeping the stream aligned
        across replays.
        """
        quota = self.spec.quota
        seq = self._next_seq()
        if quota.max_step_bytes is not None and payload_bytes > quota.max_step_bytes:
            self.steps_rejected += 1
            return ServiceDecision(
                seq=seq,
                event="step",
                verdict=protocol.VERDICT_REJECT_BYTES,
                bytes=payload_bytes,
                cumulative_bytes=self.bytes_admitted,
                detail=f"step exceeds max_step_bytes={quota.max_step_bytes}",
            )
        if quota.max_steps is not None and self.steps_admitted >= quota.max_steps:
            self.steps_rejected += 1
            return ServiceDecision(
                seq=seq,
                event="step",
                verdict=protocol.VERDICT_REJECT_STEPS,
                bytes=payload_bytes,
                cumulative_bytes=self.bytes_admitted,
                detail=f"step quota max_steps={quota.max_steps} exhausted",
            )
        draw = None
        if quota.byte_budget is not None:
            projected = self.bytes_admitted + payload_bytes
            if projected > quota.byte_budget:
                self.steps_rejected += 1
                return ServiceDecision(
                    seq=seq,
                    event="step",
                    verdict=protocol.VERDICT_REJECT_BYTES,
                    bytes=payload_bytes,
                    cumulative_bytes=self.bytes_admitted,
                    detail=f"byte_budget={quota.byte_budget} exhausted",
                )
            if projected > quota.soft_byte_fraction * quota.byte_budget:
                draw = unit_draw(
                    self.seed, SHED_SITE, self.slot, self._shed_draws
                )
                self._shed_draws += 1
                if draw < quota.shed_probability:
                    self.steps_shed += 1
                    return ServiceDecision(
                        seq=seq,
                        event="step",
                        verdict=protocol.VERDICT_SHED,
                        bytes=payload_bytes,
                        cumulative_bytes=self.bytes_admitted,
                        draw=draw,
                        detail="soft byte budget pressure",
                    )
        self.steps_admitted += 1
        self.bytes_admitted += payload_bytes
        return ServiceDecision(
            seq=seq,
            event="step",
            verdict=protocol.VERDICT_ADMIT,
            bytes=payload_bytes,
            cumulative_bytes=self.bytes_admitted,
            draw=draw,
        )


class TenantJournals:
    """The two per-tenant decision streams (see module docstring)."""

    def __init__(self, name: str, seed: int, spec: TenantSpec) -> None:
        self.name = name
        self.admission = DecisionJournal(
            seed=seed, slo=spec.quota.as_dict(), mode="service.admission"
        )
        self.endpoint = DecisionJournal(
            seed=seed, slo=None, mode="service.endpoint"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "admission": self.admission.to_dict(),
            "endpoint": self.endpoint.to_dict(),
        }


def dump_journals(journals: dict[str, TenantJournals]) -> str:
    """Canonical JSON for all tenants' journals (sorted keys, 2-space
    indent, trailing newline -- byte-identical across seeded replays)."""
    doc = {name: journals[name].to_dict() for name in sorted(journals)}
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
