"""Deterministic synthetic tenant workloads.

The service acceptance contract compares per-tenant artifacts from a
socket-streamed run against the identical workload run in process, byte
for byte -- so the workload generator must be a pure function of (tenant
name, step, shape, seed).  The field is a pair of drifting Gaussian blobs
whose phase offsets derive from a blake2b hash of the tenant name: every
tenant gets a visibly distinct stream, with no RNG state to leak between
runs (the same counter-hash discipline as :func:`repro.faults.plan
.unit_draw`).
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterator

import numpy as np

from repro.util.decomp import Extent


def tenant_phase(tenant: str, seed: int = 0, salt: str = "") -> float:
    """A stable per-tenant phase in [0, 1)."""
    key = f"{seed}:{tenant}:{salt}".encode()
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


def synthetic_field(
    tenant: str,
    step: int,
    shape: tuple[int, int] = (64, 64),
    seed: int = 0,
) -> np.ndarray:
    """The tenant's field at ``step``: shape ``(nx, ny, 1)`` float64."""
    nx, ny = shape
    p0 = tenant_phase(tenant, seed, "x")
    p1 = tenant_phase(tenant, seed, "y")
    x = np.linspace(0.0, 1.0, nx).reshape(nx, 1)
    y = np.linspace(0.0, 1.0, ny).reshape(1, ny)
    t = 0.08 * step
    cx0 = 0.5 + 0.3 * math.sin(2.0 * math.pi * (p0 + t))
    cy0 = 0.5 + 0.3 * math.cos(2.0 * math.pi * (p1 + t))
    cx1 = 0.5 + 0.25 * math.cos(2.0 * math.pi * (p1 + 0.7 * t))
    cy1 = 0.5 + 0.25 * math.sin(2.0 * math.pi * (p0 + 0.7 * t))
    blob0 = np.exp(-(((x - cx0) ** 2) + ((y - cy0) ** 2)) / 0.02)
    blob1 = 0.6 * np.exp(-(((x - cx1) ** 2) + ((y - cy1) ** 2)) / 0.035)
    return np.ascontiguousarray((blob0 + blob1).reshape(nx, ny, 1))


def field_extent(shape: tuple[int, int]) -> Extent:
    nx, ny = shape
    return Extent(0, nx - 1, 0, ny - 1, 0, 0)


def synthetic_steps(
    tenant: str,
    steps: int,
    shape: tuple[int, int] = (64, 64),
    seed: int = 0,
    dt: float = 0.01,
) -> Iterator[tuple[int, float, dict[str, np.ndarray]]]:
    """Yield ``(step, time, arrays)`` for a tenant's run -- the exact
    stream the CLI client, the benchmark, and the in-process equivalence
    runner all share."""
    for step in range(steps):
        yield step, step * dt, {
            "data": synthetic_field(tenant, step, shape, seed)
        }


def nbody_seed(tenant: str, seed: int = 0) -> int:
    """A stable per-tenant nbody IC seed (same counter-hash discipline
    as :func:`tenant_phase`, different codomain)."""
    key = f"{seed}:{tenant}:nbody".encode()
    digest = hashlib.blake2b(key, digest_size=4).digest()
    return int.from_bytes(digest, "big")


def nbody_steps(
    tenant: str,
    steps: int,
    grid: int = 16,
    n_particles: int = 256,
    seed: int = 0,
) -> Iterator[tuple[int, float, dict[str, np.ndarray]]]:
    """Yield the nbody miniapp's per-step density projections as a tenant
    stream: ``(step, time, {"data": (grid, grid, 1) float64})``.

    The whole trajectory is computed up front on a single simulated rank
    seeded per tenant (exact-integer deposits make it a pure function of
    the seed), then replayed as the same ``(step, time, arrays)`` tuples
    :func:`synthetic_steps` yields -- so an nbody tenant flows through the
    socket client, the server, and the in-process equivalence oracle with
    zero special-casing.
    """
    from repro.apps.nbody import NBodySimulation
    from repro.mpi import run_spmd

    ic_seed = nbody_seed(tenant, seed)

    def program(comm):
        sim = NBodySimulation(
            comm, grid=grid, n_particles=n_particles, seed=ic_seed
        )
        frames = []
        for _ in range(steps):
            sim.advance()
            # Project the replicated exact density along x; keep the
            # (ny, nz, 1) layout every service consumer expects.
            frames.append(
                (sim.time, sim.density.sum(axis=0).reshape(grid, grid, 1))
            )
        return frames

    # Threads, one rank: deterministic, no subprocess spawn cost.
    frames = run_spmd(1, program, backend="thread")[0]
    for step, (sim_time, field) in enumerate(frames):
        yield step, sim_time, {"data": field}
