"""Per-tenant cost accounting: what each tenant's traffic actually cost.

The paper's core question is who pays for in situ analysis -- data
movement, render/analysis seconds, placement.  In a multi-tenant service
that question becomes billing: every admitted step charges its tenant's
ledger with the bytes it moved and the seconds its analyses consumed, and
the per-step samples also land on the tenant's trace recorder
(``service::*`` counters) so cost shows up on the same timeline as the
phase spans.

Wall-clock fields here are measurements, not decisions: the cost report is
*informative* (uploaded by CI, rendered by ``repro serve``), while the
byte-identical replay contract lives in the decision journals
(:mod:`repro.service.policy`).
"""

from __future__ import annotations

import json
import threading
from typing import Any


class CostLedger:
    """One tenant's accumulated costs.  Thread-safe: the connection
    handler charges admission-side fields while the endpoint worker
    charges analysis-side fields."""

    def __init__(self, tenant: str, placement: str) -> None:
        self.tenant = tenant
        self.placement = placement
        self._lock = threading.Lock()
        self.steps_admitted = 0
        self.steps_shed = 0
        self.steps_rejected = 0
        self.steps_analyzed = 0
        self.steps_degraded = 0
        self.bytes_in = 0
        self.frames_in = 0
        self.retransmits = 0
        self.analysis_seconds = 0.0
        self.render_seconds = 0.0
        self.throttle_seconds = 0.0
        self.backpressure_seconds = 0.0

    def charge_step(self, payload_bytes: int, trace=None) -> None:
        with self._lock:
            self.steps_admitted += 1
            self.bytes_in += payload_bytes
        if trace is not None:
            trace.count("service::steps::admitted", 1)
            trace.count("service::bytes::in", payload_bytes)

    def charge_shed(self, trace=None) -> None:
        with self._lock:
            self.steps_shed += 1
        if trace is not None:
            trace.count("service::steps::shed", 1)

    def charge_reject(self, trace=None) -> None:
        with self._lock:
            self.steps_rejected += 1
        if trace is not None:
            trace.count("service::steps::rejected", 1)

    def charge_analysis(
        self, seconds: float, render_seconds: float = 0.0, trace=None
    ) -> None:
        with self._lock:
            self.steps_analyzed += 1
            self.analysis_seconds += seconds
            self.render_seconds += render_seconds
        if trace is not None:
            trace.count("service::analysis::seconds", seconds)
            if render_seconds:
                trace.count("service::render::seconds", render_seconds)

    def charge_degraded(self, trace=None) -> None:
        with self._lock:
            self.steps_degraded += 1
        if trace is not None:
            trace.count("service::steps::degraded", 1)

    def charge_throttle(self, seconds: float, trace=None) -> None:
        with self._lock:
            self.throttle_seconds += seconds
        if trace is not None:
            trace.count("service::throttle::seconds", seconds)

    def charge_backpressure(self, seconds: float, trace=None) -> None:
        with self._lock:
            self.backpressure_seconds += seconds
        if trace is not None:
            trace.count("service::backpressure::seconds", seconds)

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "placement": self.placement,
                "steps_admitted": self.steps_admitted,
                "steps_shed": self.steps_shed,
                "steps_rejected": self.steps_rejected,
                "steps_analyzed": self.steps_analyzed,
                "steps_degraded": self.steps_degraded,
                "bytes_in": self.bytes_in,
                "frames_in": self.frames_in,
                "retransmits": self.retransmits,
                "analysis_seconds": round(self.analysis_seconds, 6),
                "render_seconds": round(self.render_seconds, 6),
                "throttle_seconds": round(self.throttle_seconds, 6),
                "backpressure_seconds": round(self.backpressure_seconds, 6),
            }


def build_cost_report(
    ledgers: dict[str, CostLedger], meta: dict[str, Any]
) -> dict[str, Any]:
    tenants = {name: ledgers[name].as_dict() for name in sorted(ledgers)}
    totals = {
        "steps_admitted": sum(t["steps_admitted"] for t in tenants.values()),
        "steps_shed": sum(t["steps_shed"] for t in tenants.values()),
        "steps_rejected": sum(t["steps_rejected"] for t in tenants.values()),
        "steps_degraded": sum(t["steps_degraded"] for t in tenants.values()),
        "bytes_in": sum(t["bytes_in"] for t in tenants.values()),
        "analysis_seconds": round(
            sum(t["analysis_seconds"] for t in tenants.values()), 6
        ),
    }
    return {"meta": meta, "tenants": tenants, "totals": totals}


def dump_cost_report(report: dict[str, Any], path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
