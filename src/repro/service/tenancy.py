"""Tenant identity, signed auth tokens, and per-tenant quota specs.

Tokens are self-describing and HMAC-signed with the server secret::

    v1.<tenant>.<expires-unix>.<blake2b-hmac-hex>

so the server verifies them without a token database, and tests mint
expired or tampered tokens trivially.  Verification takes an injectable
``now`` so expiry checks are deterministic under test; the comparison is
``hmac.compare_digest`` (no timing side channel, idle as that worry is for
a local socket).

Quota semantics (enforced by :mod:`repro.service.policy`):

- ``max_steps``: hard ceiling on admitted steps per connection; exceeding
  it REJECTs the connection with ``quota_exhausted``.
- ``byte_budget``: cumulative STEP payload bytes; past the budget, steps
  are rejected.  Between ``soft_byte_fraction * byte_budget`` and the
  budget, steps are probabilistically *shed* (seeded counter-hash draws, so
  the shed schedule is replayable).
- ``max_step_bytes``: per-step payload ceiling -- an oversized step is
  rejected without charging the budget.
- ``rate_steps_per_s``: pacing ceiling; enforced by delaying the ACK
  (wall-clock throttling is flow control, not a decision, so it is traced
  but never journaled).
- ``credits``: the flow-control window -- how many STEP frames may be in
  flight before the client must wait for an ACK.
"""

from __future__ import annotations

import hashlib
import hmac
import math
from dataclasses import dataclass, field

TOKEN_VERSION = "v1"


@dataclass(frozen=True)
class QuotaSpec:
    """Per-tenant admission/backpressure limits."""

    max_steps: int | None = None
    byte_budget: int | None = None
    max_step_bytes: int | None = None
    rate_steps_per_s: float | None = None
    credits: int = 2
    soft_byte_fraction: float = 0.5
    shed_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.credits < 1:
            raise ValueError("credits must be >= 1")
        if not 0.0 <= self.soft_byte_fraction <= 1.0:
            raise ValueError("soft_byte_fraction must be in [0, 1]")
        if not 0.0 <= self.shed_probability <= 1.0:
            raise ValueError("shed_probability must be in [0, 1]")

    def as_dict(self) -> dict:
        return {
            "max_steps": self.max_steps,
            "byte_budget": self.byte_budget,
            "max_step_bytes": self.max_step_bytes,
            "rate_steps_per_s": self.rate_steps_per_s,
            "credits": self.credits,
            "soft_byte_fraction": self.soft_byte_fraction,
            "shed_probability": self.shed_probability,
        }


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity and limits.

    ``placement`` selects how the tenant's endpoint runs analyses:
    ``"in-line"`` (synchronous with the ACK -- the client pays the
    analysis latency, the paper's tightly coupled placement) or
    ``"staged"`` (queued to the tenant's endpoint worker, ACKed on
    enqueue -- the client runs ahead, bytes stay in flight, the loosely
    coupled placement).
    """

    name: str
    quota: QuotaSpec = field(default_factory=QuotaSpec)
    placement: str = "staged"

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in ".:/\\\n"):
            raise ValueError(f"invalid tenant name {self.name!r}")
        if self.placement not in ("in-line", "staged"):
            raise ValueError(f"unknown placement {self.placement!r}")


def _signature(secret: str, tenant: str, expires: int) -> str:
    key = hashlib.blake2b(secret.encode(), digest_size=32).digest()
    msg = f"{TOKEN_VERSION}.{tenant}.{expires}".encode()
    return hmac.new(key, msg, hashlib.blake2b).hexdigest()[:32]


def issue_token(secret: str, tenant: str, expires: int | float = math.inf) -> str:
    """Mint a signed token for ``tenant``; ``expires`` is unix seconds
    (``inf`` serializes as 0 = never expires)."""
    exp = 0 if math.isinf(expires) else int(expires)
    return f"{TOKEN_VERSION}.{tenant}.{exp}.{_signature(secret, tenant, exp)}"


def verify_token(
    secret: str, tenant: str, token: str, now: float
) -> tuple[bool, str]:
    """Check ``token`` authenticates ``tenant`` at time ``now``.

    Returns ``(ok, reason)`` with reason one of ``"ok"``, ``"bad_token"``,
    ``"expired_token"``.
    """
    parts = token.split(".")
    if len(parts) != 4 or parts[0] != TOKEN_VERSION or parts[1] != tenant:
        return False, "bad_token"
    try:
        expires = int(parts[2])
    except ValueError:
        return False, "bad_token"
    if not hmac.compare_digest(parts[3], _signature(secret, tenant, expires)):
        return False, "bad_token"
    if expires != 0 and now >= expires:
        return False, "expired_token"
    return True, "ok"


class TenantRegistry:
    """The server's tenant table, with stable slot numbering.

    Slots are assigned by sorted tenant name, *not* registration or
    connection order: every seeded draw in the policy layer keys on the
    slot, so the numbering must be a pure function of the tenant set for
    decisions to replay across runs.
    """

    def __init__(self, tenants: list[TenantSpec] | None = None) -> None:
        self._tenants: dict[str, TenantSpec] = {}
        for spec in tenants or []:
            self.register(spec)

    def register(self, spec: TenantSpec) -> None:
        if spec.name in self._tenants:
            raise ValueError(f"tenant {spec.name!r} already registered")
        self._tenants[spec.name] = spec

    def get(self, name: str) -> TenantSpec | None:
        return self._tenants.get(name)

    def names(self) -> list[str]:
        return sorted(self._tenants)

    def slot(self, name: str) -> int:
        """The tenant's stable slot index (sorted-name order)."""
        return self.names().index(name)

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self.names())
