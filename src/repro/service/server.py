"""The long-running multi-tenant in situ server.

One :class:`ServiceServer` owns a Unix-domain listening socket, a tenant
registry, and the shared policy state: an admission gate (max concurrent
clients, one connection per tenant), a server-wide bytes-in-flight budget
(backpressure by blocking, traced but never journaled), per-tenant quota
policies with journaled verdicts, per-tenant analysis endpoints, and
per-tenant cost ledgers.

Threading model
---------------
- one accept loop thread;
- one handler thread per live connection, which owns that connection's
  :class:`~repro.mpi.framing.FrameChannel`, the tenant's
  :class:`~repro.service.policy.TenantPolicy`, and (for in-line placement)
  drives the tenant's endpoint directly;
- for staged placement, one worker thread per tenant endpoint consuming a
  bounded queue -- the server-side analog of the staging transport's
  bounded queue, and where "bytes in flight" accumulate.

Determinism: every journaled decision depends only on the tenant's own
event sequence and seeded draws; cross-tenant contention surfaces as
*waiting* (backpressure/throttle seconds on the cost ledger), never as a
different decision.  The journal file a seeded run writes is byte-identical
across repeats -- the acceptance contract.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time as _time

from repro.faults.plan import unit_draw  # noqa: F401  (re-exported for tests)
from repro.mpi.framing import (
    FrameChannel,
    MalformedFrameError,
    TruncatedFrameError,
)
from repro.service import protocol
from repro.service.accounting import (
    CostLedger,
    build_cost_report,
    dump_cost_report,
)
from repro.service.endpoint import TenantEndpoint
from repro.service.policy import TenantJournals, TenantPolicy, dump_journals
from repro.service.tenancy import TenantRegistry, verify_token
from repro.trace.recorder import TraceSession
from repro.util.decomp import Extent


class BytesInFlight:
    """The server-wide admitted-but-unprocessed byte budget.

    ``acquire`` blocks while the budget is exhausted -- the memory-budget
    backpressure stall.  A payload larger than the whole budget is admitted
    alone (waits for the server to drain) rather than deadlocking.
    """

    def __init__(self, limit: int | None) -> None:
        self.limit = limit
        self._held = 0
        self._cond = threading.Condition()

    def acquire(self, n: int) -> float:
        """Block until ``n`` bytes fit; returns seconds spent waiting."""
        if self.limit is None:
            return 0.0
        t0 = _time.perf_counter()
        with self._cond:
            while self._held > 0 and self._held + n > self.limit:
                self._cond.wait(timeout=0.5)
            self._held += n
        return _time.perf_counter() - t0

    def release(self, n: int) -> None:
        if self.limit is None:
            return
        with self._cond:
            self._held = max(0, self._held - n)
            self._cond.notify_all()

    @property
    def held(self) -> int:
        with self._cond:
            return self._held


class _TenantWorker:
    """The staged-placement worker: one thread draining one tenant's queue."""

    def __init__(
        self,
        endpoint: TenantEndpoint,
        ledger: CostLedger,
        budget: BytesInFlight,
        depth: int,
    ) -> None:
        self.endpoint = endpoint
        self.ledger = ledger
        self.budget = budget
        self.queue: queue.Queue = queue.Queue(maxsize=depth)
        self.thread = threading.Thread(
            target=self._run, name=f"svc-worker-{endpoint.tenant}", daemon=True
        )
        self.thread.start()

    def _run(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                self.queue.task_done()
                return
            step, sim_time, arrays, extent, nbytes = item
            try:
                outcome, seconds = self.endpoint.process(
                    step, sim_time, arrays, extent
                )
                self.ledger.charge_analysis(
                    seconds, trace=self.endpoint.recorder
                )
                if outcome != "ok":
                    self.ledger.charge_degraded(trace=self.endpoint.recorder)
            finally:
                self.budget.release(nbytes)
                self.queue.task_done()

    def submit(self, step, sim_time, arrays, extent, nbytes) -> float:
        """Enqueue one admitted step; returns seconds blocked on a full
        queue (per-tenant staging backpressure)."""
        t0 = _time.perf_counter()
        self.queue.put((step, sim_time, arrays, extent, nbytes))
        return _time.perf_counter() - t0

    def drain(self) -> None:
        """Block until every submitted step has been fully processed."""
        self.queue.join()

    def stop(self) -> None:
        """Idempotent shutdown: drain, park the thread, join it."""
        if self.thread.is_alive():
            self.queue.put(None)
        self.thread.join(timeout=30.0)


class ServiceServer:
    """See module docstring.  Construct, :meth:`start`, drive clients,
    then :meth:`stop` (or :meth:`wait` for ``expect`` tenants to finish)."""

    def __init__(
        self,
        socket_path: str,
        registry: TenantRegistry,
        secret: str,
        out_dir: str,
        seed: int = 0,
        max_clients: int = 16,
        memory_budget: int | None = None,
        injector=None,
        trace: TraceSession | None = None,
        now=None,
        expect: int | None = None,
        bins: int = 32,
        resolution: tuple[int, int] = (160, 90),
        render: bool = True,
        staged_depth: int = 4,
    ) -> None:
        self.socket_path = socket_path
        self.registry = registry
        self.secret = secret
        self.out_dir = out_dir
        self.seed = int(seed)
        self.max_clients = max_clients
        self.injector = injector
        self.trace = trace if trace is not None else TraceSession("service")
        self._now = now if now is not None else _time.time
        self.expect = expect
        self.bins = bins
        self.resolution = resolution
        self.render = render
        self.staged_depth = staged_depth
        self.budget = BytesInFlight(memory_budget)
        os.makedirs(out_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._done = threading.Event()
        self._active: set[str] = set()
        self._completed: set[str] = set()
        self._rejected_connections = 0
        self.journals: dict[str, TenantJournals] = {}
        self.ledgers: dict[str, CostLedger] = {}
        self._workers: dict[str, _TenantWorker] = {}
        self._rate_last: dict[str, float] = {}
        # Server-control recorder: rank 0, tenants occupy slot + 1.
        self._server_rec = self.trace.recorder(0, label="server")

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(self.max_clients)
        listener.settimeout(0.25)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="svc-accept", daemon=True
        )
        self._accept_thread.start()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until ``expect`` tenants completed (EOS); True on success."""
        return self._done.wait(timeout)

    def stop(self) -> None:
        """Drain workers, write artifacts, tear the socket down."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)
        for t in list(self._handlers):
            t.join(timeout=30.0)
        for worker in self._workers.values():
            worker.stop()
        self._write_artifacts()
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def _write_artifacts(self) -> None:
        with open(
            os.path.join(self.out_dir, "decision_journal.json"),
            "w",
            encoding="utf-8",
        ) as fh:
            fh.write(dump_journals(self.journals))
        meta = {
            "seed": self.seed,
            "tenants": self.registry.names(),
            "completed": sorted(self._completed),
            "rejected_connections": self._rejected_connections,
            "max_clients": self.max_clients,
            "memory_budget": self.budget.limit,
        }
        dump_cost_report(
            build_cost_report(self.ledgers, meta),
            os.path.join(self.out_dir, "cost_report.json"),
        )

    # -- accept/handler ------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            handler = threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            )
            with self._lock:
                self._handlers.append(handler)
            handler.start()

    def _journals_for(self, name: str) -> TenantJournals:
        with self._lock:
            j = self.journals.get(name)
            if j is None:
                spec = self.registry.get(name)
                assert spec is not None
                j = TenantJournals(name, self.seed, spec)
                self.journals[name] = j
            return j

    def _reject(self, channel: FrameChannel, code: str, reason: str) -> None:
        with self._lock:
            self._rejected_connections += 1
        self._server_rec.count("service::connections::rejected", 1)
        try:
            channel.send(
                protocol.REJECT,
                protocol.encode_control({"code": code, "reason": reason}),
            )
        except OSError:
            pass
        channel.close()

    def _handle(self, conn: socket.socket) -> None:
        conn.settimeout(60.0)
        channel = FrameChannel(conn, trace=self._server_rec)
        try:
            kind, seq, payload = channel.recv()
        except (MalformedFrameError, TruncatedFrameError, OSError):
            channel.close()
            return
        if kind != protocol.HELLO:
            self._reject(
                channel, protocol.REJECT_PROTOCOL, "expected HELLO first"
            )
            return
        try:
            hello = protocol.decode_control(payload)
        except protocol.ProtocolError as exc:
            self._reject(channel, protocol.REJECT_PROTOCOL, str(exc))
            return
        name = str(hello.get("tenant", ""))
        spec = self.registry.get(name)
        if spec is None:
            self._reject(
                channel, protocol.REJECT_UNKNOWN_TENANT,
                f"unknown tenant {name!r}",
            )
            return
        journals = self._journals_for(name)
        policy = TenantPolicy(spec, self.registry.slot(name), self.seed)
        with self._lock:
            if len(self._active) >= self.max_clients:
                journals.admission.record(
                    policy.decide_connect("reject_capacity")
                )
                busy = True
                code, reason = (
                    protocol.REJECT_CAPACITY,
                    f"server at max_clients={self.max_clients}",
                )
            elif name in self._active:
                journals.admission.record(policy.decide_connect("reject_busy"))
                busy = True
                code, reason = (
                    protocol.REJECT_BUSY,
                    f"tenant {name!r} already connected",
                )
            else:
                busy = False
                self._active.add(name)
        if busy:
            self._reject(channel, code, reason)
            return
        try:
            self._serve_tenant(channel, name, spec, policy, journals, hello)
        finally:
            with self._lock:
                self._active.discard(name)
            channel.close()

    # -- per-tenant connection ----------------------------------------------
    def _serve_tenant(self, channel, name, spec, policy, journals, hello):
        slot = self.registry.slot(name)
        ok, why = verify_token(
            self.secret, name, str(hello.get("token", "")), self._now()
        )
        journals.admission.record(policy.decide_auth(why))
        if not ok:
            code = (
                protocol.REJECT_EXPIRED_TOKEN
                if why == "expired_token"
                else protocol.REJECT_BAD_TOKEN
            )
            self._reject(channel, code, f"auth failed: {why}")
            return
        journals.admission.record(policy.decide_connect("admit"))
        recorder = self.trace.recorder(slot + 1, label=name)
        channel.trace = recorder
        channel.fault_rank = slot
        with self._lock:
            ledger = self.ledgers.get(name)
            if ledger is None:
                ledger = CostLedger(name, spec.placement)
                self.ledgers[name] = ledger
        endpoint = TenantEndpoint(
            name,
            slot,
            os.path.join(self.out_dir, "tenants", name),
            self.seed,
            recorder=recorder,
            injector=self.injector,
            journal=journals.endpoint,
            bins=self.bins,
            resolution=self.resolution,
            render=self.render,
        )
        worker: _TenantWorker | None = None
        if spec.placement == "staged":
            worker = _TenantWorker(
                endpoint, ledger, self.budget, self.staged_depth
            )
            with self._lock:
                self._workers[name] = worker
        self._server_rec.count("service::connections::admitted", 1)
        channel.send(
            protocol.WELCOME,
            protocol.encode_control(
                {
                    "credits": spec.quota.credits,
                    "slot": slot,
                    "placement": spec.placement,
                    "quota": spec.quota.as_dict(),
                }
            ),
        )
        try:
            self._step_loop(
                channel, name, spec, policy, journals, endpoint, worker, ledger
            )
        except (TruncatedFrameError, OSError):
            # Journal a fully *stable* detail: the exception message holds
            # stream-chunking byte counts and even the exception class
            # varies with which syscall notices the dead peer -- either
            # would break journal byte-identity across replays.
            journals.admission.record(
                policy.decide_disconnect("connection lost")
            )
            recorder.count("service::disconnects", 1)
        finally:
            if worker is not None:
                worker.drain()
                worker.stop()
                with self._lock:
                    if self._workers.get(name) is worker:
                        del self._workers[name]
            endpoint.finalize()

    def _pace(self, name: str, spec, ledger, recorder) -> None:
        rate = spec.quota.rate_steps_per_s
        if rate is None:
            return
        interval = 1.0 / rate
        now = _time.perf_counter()
        last = self._rate_last.get(name)
        if last is not None and now - last < interval:
            wait = interval - (now - last)
            _time.sleep(wait)
            ledger.charge_throttle(wait, trace=recorder)
        self._rate_last[name] = _time.perf_counter()

    def _step_loop(
        self, channel, name, spec, policy, journals, endpoint, worker, ledger
    ):
        recorder = endpoint.recorder
        while True:
            try:
                kind, seq, payload = channel.recv()
            except MalformedFrameError as exc:
                if not exc.recoverable:
                    raise TruncatedFrameError(str(exc)) from exc
                recorder.count("service::frames::nacked", 1)
                channel.send(
                    protocol.NACK,
                    protocol.encode_control({"seq": channel.expected_seq}),
                )
                continue
            if kind == protocol.NACK:
                nack = protocol.decode_control(payload)
                channel.retransmit_from(int(nack.get("seq", 0)))
                continue
            if kind == protocol.EOS:
                if worker is not None:
                    worker.drain()
                endpoint.finalize()
                journals.admission.record(policy.decide_eos())
                with self._lock:
                    self._completed.add(name)
                    # Release the tenant slot *before* BYE: once the client
                    # reads BYE the connection is fully drained, so an
                    # immediate reconnect must be admitted, not BUSY.
                    self._active.discard(name)
                    done = (
                        self.expect is not None
                        and len(self._completed) >= self.expect
                    )
                channel.send(
                    protocol.BYE,
                    protocol.encode_control(
                        {
                            "steps_admitted": policy.steps_admitted,
                            "steps_shed": policy.steps_shed,
                            "bytes_admitted": policy.bytes_admitted,
                            "artifacts": os.path.join("tenants", name),
                        }
                    ),
                )
                if done:
                    self._done.set()
                return
            if kind != protocol.STEP:
                raise TruncatedFrameError(
                    f"unexpected frame kind {protocol.KIND_NAMES.get(kind, kind)}"
                )
            ledger.frames_in += 1
            decision = policy.decide_step(len(payload))
            journals.admission.record(decision)
            verdict = decision.verdict
            if verdict in (
                protocol.VERDICT_REJECT_BYTES,
                protocol.VERDICT_REJECT_STEPS,
            ):
                ledger.charge_reject(trace=recorder)
                self._reject(
                    channel,
                    protocol.REJECT_QUOTA,
                    f"{verdict}: {decision.detail}",
                )
                raise TruncatedFrameError("quota exhausted, connection closed")
            if verdict == protocol.VERDICT_SHED:
                ledger.charge_shed(trace=recorder)
                channel.send(
                    protocol.ACK,
                    protocol.encode_control(
                        {"seq": seq, "verdict": verdict, "credits": 1}
                    ),
                )
                continue
            # Admitted: charge, apply backpressure, run or stage.
            step, sim_time, arrays = protocol.decode_step(payload)
            nbytes = len(payload)
            ledger.charge_step(nbytes, trace=recorder)
            waited = self.budget.acquire(nbytes)
            if waited > 0.0:
                ledger.charge_backpressure(waited, trace=recorder)
            first = sorted(arrays)[0]
            shape = arrays[first].shape
            extent = Extent(
                0,
                shape[0] - 1,
                0,
                shape[1] - 1 if len(shape) > 1 else 0,
                0,
                (shape[2] if len(shape) > 2 else 1) - 1,
            )
            if worker is not None:
                stalled = worker.submit(step, sim_time, arrays, extent, nbytes)
                if stalled > 0.0:
                    ledger.charge_backpressure(stalled, trace=recorder)
            else:
                try:
                    outcome, seconds = endpoint.process(
                        step, sim_time, arrays, extent
                    )
                finally:
                    self.budget.release(nbytes)
                ledger.charge_analysis(seconds, trace=recorder)
                if outcome != "ok":
                    ledger.charge_degraded(trace=recorder)
            self._pace(name, spec, ledger, recorder)
            channel.send(
                protocol.ACK,
                protocol.encode_control(
                    {"seq": seq, "verdict": verdict, "credits": 1}
                ),
            )
