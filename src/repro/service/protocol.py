"""The service wire protocol: frame kinds and payload codecs.

One tenant connection is a strict state machine over the framed transport
(:mod:`repro.mpi.framing`)::

    client                          server
    ------                          ------
    HELLO {tenant, token, ...}  ->
                                <-  WELCOME {credits, quotas, slot}
                                    (or REJECT {code, reason} + close)
    STEP {step, time, arrays}   ->              } repeated, windowed by
                                <-  ACK {step, verdict, credits}  } credits
    ...                         <-  NACK {seq}      (wire-fault recovery)
    EOS {}                      ->
                                <-  BYE {summary}

Control payloads are canonical JSON (sorted keys, UTF-8) so the bytes a
given logical message produces are identical across runs -- the same
canonicalization discipline the decision journal uses.  STEP payloads carry
numpy arrays and ride pickle protocol 2+, the established transport idiom
of the process backend.
"""

from __future__ import annotations

import json
import pickle
from typing import Any

import numpy as np

# -- frame kinds ------------------------------------------------------------
HELLO = 1
WELCOME = 2
REJECT = 3
STEP = 4
ACK = 5
NACK = 6
EOS = 7
BYE = 8

KIND_NAMES = {
    HELLO: "HELLO",
    WELCOME: "WELCOME",
    REJECT: "REJECT",
    STEP: "STEP",
    ACK: "ACK",
    NACK: "NACK",
    EOS: "EOS",
    BYE: "BYE",
}

#: Per-step admission verdicts the server journals and ACKs back.
VERDICT_ADMIT = "admit"
VERDICT_SHED = "shed"
VERDICT_DEGRADE = "degrade"
VERDICT_REJECT_BYTES = "reject_bytes"
VERDICT_REJECT_STEPS = "reject_steps"

#: REJECT codes (connection-level refusals).
REJECT_BAD_TOKEN = "bad_token"
REJECT_EXPIRED_TOKEN = "expired_token"
REJECT_UNKNOWN_TENANT = "unknown_tenant"
REJECT_CAPACITY = "capacity"
REJECT_BUSY = "tenant_busy"
REJECT_PROTOCOL = "protocol_error"
REJECT_QUOTA = "quota_exhausted"


class ProtocolError(RuntimeError):
    """The peer violated the connection state machine."""


def encode_control(payload: dict[str, Any]) -> bytes:
    """Canonical JSON bytes for a control frame (HELLO/WELCOME/ACK/...)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def decode_control(payload: bytes) -> dict[str, Any]:
    try:
        obj = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable control payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("control payload must be a JSON object")
    return obj


def encode_step(
    step: int, time: float, arrays: dict[str, np.ndarray]
) -> bytes:
    """A STEP payload: metadata + named arrays, pickled.

    The byte count of the encoded payload is what quota accounting charges
    -- the actual bytes moved over the transport, matching the paper's
    "data movement cost" framing rather than a nominal array size.
    """
    blob = {
        "step": int(step),
        "time": float(time),
        "arrays": {
            name: np.ascontiguousarray(values)
            for name, values in arrays.items()
        },
    }
    return pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL)


def decode_step(payload: bytes) -> tuple[int, float, dict[str, np.ndarray]]:
    try:
        blob = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 -- any unpickle failure is protocol
        raise ProtocolError(f"undecodable STEP payload: {exc}") from exc
    if (
        not isinstance(blob, dict)
        or not isinstance(blob.get("arrays"), dict)
        or "step" not in blob
    ):
        raise ProtocolError("STEP payload missing step/arrays")
    return int(blob["step"]), float(blob.get("time", 0.0)), blob["arrays"]
