"""Per-tenant analysis endpoints: one Bridge, one tenant, one artifact dir.

Each tenant the server admits gets a private analysis pipeline -- a
single-rank simulated communicator, a :class:`~repro.core.bridge.Bridge`,
and the shared analysis stack (histogram + the Catalyst slice pipeline)
writing into ``<out>/tenants/<name>/``.  Isolation is structural: tenants
share no communicator, no adaptor state, and no output directory, which is
what lets the acceptance test assert byte-identical artifacts between a
socket-streamed run and :func:`run_workload_inproc` driving the same
endpoint directly.

Degradation under chaos reuses the staging transport's policy objects: a
:class:`~repro.faults.policies.CircuitBreaker` per tenant trips after
consecutive analysis failures (injected at the ``service.step`` site) and
admits single probes, so a tenant with a poisoned pipeline degrades to
ingest-only service instead of failing its connection -- the same
in-transit -> in-line discipline `StagingResilience` applies to FlexPath.
"""

from __future__ import annotations

import json
import os
import time as _time

import numpy as np

from repro.analysis.histogram import HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.control.journal import DecisionJournal
from repro.core.adaptors import DataAdaptor
from repro.core.bridge import Bridge
from repro.data import Association, DataArray, ImageData
from repro.faults.plan import SITE_SERVICE_STEP
from repro.faults.policies import CircuitBreaker
from repro.infrastructure.catalyst import CatalystAdaptor
from repro.mpi.communicator import Communicator, _Context
from repro.service.policy import ServiceDecision
from repro.util.decomp import Extent
from repro.util.timers import TimerRegistry


class ServiceDataAdaptor(DataAdaptor):
    """The tenant endpoint's data adaptor: one uniform block per step."""

    def __init__(self, comm) -> None:
        super().__init__(comm)
        self._mesh: ImageData | None = None
        self._arrays: dict[str, np.ndarray] = {}

    def ingest(self, extent: Extent, arrays: dict[str, np.ndarray]) -> None:
        img = ImageData(extent)
        for name, values in arrays.items():
            img.add_point_array(DataArray.from_numpy(name, values))
        self._mesh = img
        self._arrays = dict(arrays)

    def get_mesh(self, structure_only: bool = False) -> ImageData:
        if self._mesh is None:
            raise RuntimeError("no step ingested")
        return self._mesh

    def get_array(self, association: Association, name: str) -> DataArray:
        if association is not Association.POINT or name not in self._arrays:
            raise KeyError(f"no array {name!r}")
        return DataArray.from_numpy(name, self._arrays[name])

    def get_number_of_arrays(self, association: Association) -> int:
        return len(self._arrays) if association is Association.POINT else 0

    def get_array_name(self, association: Association, index: int) -> str:
        return sorted(self._arrays)[index]

    def release_data(self) -> None:
        self._mesh = None
        self._arrays = {}


class InjectedAnalysisError(RuntimeError):
    """Raised inside the endpoint when ``service.step`` injects a failure."""


def analysis_fault(injector, slot: int, step: int, trace=None):
    """A hook analysis that consults the fault plan before real analyses.

    Runs first in the bridge's analysis list so an injected ``analysis_fail``
    aborts the step exactly where a real pipeline failure would surface.
    """
    action = injector.draw(SITE_SERVICE_STEP, slot, step=step, trace=trace)
    if action is None:
        return
    if action.kind == "analysis_fail":
        raise InjectedAnalysisError(f"injected analysis failure at step {step}")
    if action.kind == "stall":
        _time.sleep(float(action.params.get("seconds", 0.002)))


class TenantEndpoint:
    """One tenant's analysis pipeline behind the service.

    ``process`` is called in the tenant's step order -- by the connection
    handler (in-line placement) or the tenant's single worker thread
    (staged placement) -- so the endpoint journal is deterministic despite
    server-side concurrency.
    """

    def __init__(
        self,
        tenant: str,
        slot: int,
        out_dir: str,
        seed: int,
        recorder=None,
        injector=None,
        journal: DecisionJournal | None = None,
        bins: int = 32,
        resolution: tuple[int, int] = (160, 90),
        render: bool = True,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.tenant = tenant
        self.slot = slot
        self.out_dir = out_dir
        self.seed = seed
        self.recorder = recorder
        self.injector = injector
        self.journal = journal
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        os.makedirs(out_dir, exist_ok=True)
        comm = Communicator(_Context(1), 0)
        if recorder is not None:
            comm.attach_trace(recorder)
        self.adaptor = ServiceDataAdaptor(comm)
        self.bridge = Bridge(
            comm, self.adaptor, timers=TimerRegistry(), trace=recorder
        )
        self.histogram = HistogramAnalysis(bins=bins, array="data")
        self.bridge.add_analysis(self.histogram)
        self.catalyst: CatalystAdaptor | None = None
        if render:
            self.catalyst = CatalystAdaptor(
                plane=SlicePlane(2, 0),
                array="data",
                resolution=resolution,
                output_dir=out_dir,
                compression_level=6,
            )
            self.bridge.add_analysis(self.catalyst)
        self.bridge.initialize()
        self.steps_ok = 0
        self.steps_failed = 0
        self.steps_skipped = 0
        self._seq = 0
        self._hist_steps: list[int] = []
        self._finalized = False

    def _record(self, verdict: str, step: int, detail: str | None = None) -> None:
        if self.journal is None:
            return
        seq = self._seq
        self._seq += 1
        self.journal.record(
            ServiceDecision(
                seq=seq, event="analysis", verdict=verdict, bytes=step,
                detail=detail,
            )
        )

    def process(
        self,
        step: int,
        sim_time: float,
        arrays: dict[str, np.ndarray],
        extent: Extent,
    ) -> tuple[str, float]:
        """Run the tenant's analyses on one admitted step.

        Returns ``(outcome, analysis_seconds)`` with outcome ``"ok"``,
        ``"failed"`` (injected/real analysis error, breaker charged), or
        ``"skipped"`` (breaker open -- degraded, ingest-only service).
        """
        if not self.breaker.allow():
            self.steps_skipped += 1
            self._record("skipped", step, detail="circuit open")
            return "skipped", 0.0
        t0 = _time.perf_counter()
        try:
            if self.injector is not None:
                analysis_fault(self.injector, self.slot, step, self.recorder)
            self.adaptor.ingest(extent, arrays)
            self.bridge.execute(sim_time, step)
        except InjectedAnalysisError as exc:
            self.adaptor.release_data()
            self.breaker.record_failure()
            self.steps_failed += 1
            self._record("failed", step, detail=str(exc))
            return "failed", _time.perf_counter() - t0
        self.breaker.record_success()
        self.steps_ok += 1
        self._hist_steps.append(step)
        self._record("ok", step)
        return "ok", _time.perf_counter() - t0

    def finalize(self) -> dict:
        """Close the bridge and write the tenant's histogram artifact.

        Idempotent, like the bridge finalize it wraps: disconnect cleanup
        and the normal EOS epilogue may both reach it.
        """
        if self._finalized:
            return {}
        self._finalized = True
        results = self.bridge.finalize()
        history = results.get("HistogramAnalysis") or []
        doc = [
            {
                "step": step,
                "vmin": float(h.vmin),
                "vmax": float(h.vmax),
                "counts": [int(c) for c in h.counts],
            }
            for step, h in zip(self._hist_steps, history)
        ]
        path = os.path.join(self.out_dir, "histograms.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return results


def run_workload_inproc(
    tenant: str,
    steps,
    out_dir: str,
    seed: int = 0,
    extent: Extent | None = None,
    bins: int = 32,
    resolution: tuple[int, int] = (160, 90),
    render: bool = True,
) -> TenantEndpoint:
    """Drive ``steps`` (an iterable of ``(step, time, arrays)``) straight
    through a :class:`TenantEndpoint` -- no sockets, no quotas.

    This is the equivalence oracle: the artifacts it writes must be
    byte-identical to the same workload streamed through the server.
    """
    endpoint = TenantEndpoint(
        tenant, 0, out_dir, seed, bins=bins, resolution=resolution,
        render=render,
    )
    for step, sim_time, arrays in steps:
        first = next(iter(sorted(arrays)))
        shape = arrays[first].shape
        ext = extent if extent is not None else Extent(
            0, shape[0] - 1, 0, shape[1] - 1, 0, (shape[2] if len(shape) > 2 else 1) - 1
        )
        endpoint.process(step, sim_time, arrays, ext)
    endpoint.finalize()
    return endpoint
