"""repro.service -- the multi-tenant in situ service layer.

The paper's design axis is how simulations hand data to shared analysis
infrastructure under contention; this package pushes that to its service
limit: one long-running server (``repro serve``), N independent simulation
clients (``repro submit`` / :class:`ServiceClient`) streaming steps over a
local socket transport, per-tenant auth/quotas/backpressure with journaled
deterministic decisions, per-tenant analysis endpoints behind the standard
:class:`~repro.core.bridge.Bridge`, and per-step cost accounting on the
trace layer.

Layers (bottom up):

- :mod:`repro.mpi.framing` -- sequence-numbered, CRC-checked, NACK/
  retransmit framed delivery over a byte stream (the mailbox discipline,
  on a socket);
- :mod:`repro.service.protocol` -- the connection state machine and
  payload codecs;
- :mod:`repro.service.tenancy` -- tenant specs, quotas, signed tokens;
- :mod:`repro.service.policy` -- journaled admission + per-step verdicts
  (counter-hashed shed draws, `DecisionJournal` reuse);
- :mod:`repro.service.endpoint` -- per-tenant Bridge + histogram/Catalyst
  analyses + circuit-breaker degradation;
- :mod:`repro.service.server` / :mod:`repro.service.client` -- the
  long-running server and the simulation-side client;
- :mod:`repro.service.accounting` -- per-tenant cost ledgers and the
  cost report CI uploads.
"""

from repro.service.accounting import CostLedger, build_cost_report
from repro.service.client import (
    ServiceClient,
    ServiceDisconnected,
    ServiceError,
    ServiceRejected,
    run_client_workload,
)
from repro.service.endpoint import (
    ServiceDataAdaptor,
    TenantEndpoint,
    run_workload_inproc,
)
from repro.service.policy import ServiceDecision, TenantPolicy, dump_journals
from repro.service.server import BytesInFlight, ServiceServer
from repro.service.tenancy import (
    QuotaSpec,
    TenantRegistry,
    TenantSpec,
    issue_token,
    verify_token,
)
from repro.service.workload import (
    nbody_seed,
    nbody_steps,
    synthetic_field,
    synthetic_steps,
)

__all__ = [
    "BytesInFlight",
    "CostLedger",
    "QuotaSpec",
    "ServiceClient",
    "ServiceDataAdaptor",
    "ServiceDecision",
    "ServiceDisconnected",
    "ServiceError",
    "ServiceRejected",
    "ServiceServer",
    "TenantEndpoint",
    "TenantPolicy",
    "TenantRegistry",
    "TenantSpec",
    "build_cost_report",
    "dump_journals",
    "issue_token",
    "nbody_seed",
    "nbody_steps",
    "run_client_workload",
    "run_workload_inproc",
    "synthetic_field",
    "synthetic_steps",
    "verify_token",
]
