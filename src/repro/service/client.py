"""The simulation-side service client.

A :class:`ServiceClient` is what a simulation's bridge talks to instead of
an in-process analysis stack: connect, authenticate, stream steps, close.
The client is synchronous and single-threaded -- ``submit`` blocks only
when the credit window is exhausted (server backpressure) and otherwise
pipelines, which is exactly the windowed non-blocking posture the paper's
staging writers take against a bounded queue.

Wire reliability is the channel's job (:mod:`repro.mpi.framing`): the
client answers server NACKs by retransmitting from its unacknowledged
window and releases window copies as ACKs arrive.  Client-side fault
injection draws at ``service.client`` before each send -- an injected
``disconnect`` abandons the socket mid-step, which is how the tests
exercise the server's cleanup path deterministically.
"""

from __future__ import annotations

import socket
import time as _time

import numpy as np

from repro.faults.plan import SITE_SERVICE_CLIENT
from repro.mpi.framing import FrameChannel, FrameError, MalformedFrameError
from repro.service import protocol


class ServiceError(RuntimeError):
    """Base class for client-visible service failures."""


class ServiceRejected(ServiceError):
    """The server refused the connection or terminated it with REJECT."""

    def __init__(self, code: str, reason: str) -> None:
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason


class ServiceDisconnected(ServiceError):
    """The connection dropped (injected or real) before completion."""


class ServiceClient:
    """One tenant connection to a :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        socket_path: str,
        tenant: str,
        token: str,
        injector=None,
        timeout: float = 60.0,
        trace=None,
    ) -> None:
        self.socket_path = socket_path
        self.tenant = tenant
        self.token = token
        self.injector = injector
        self.timeout = timeout
        self.trace = trace
        self.channel: FrameChannel | None = None
        self.credits = 0
        self.slot = 0
        self.placement = ""
        self.quota: dict = {}
        #: verdict per ACKed step, in ACK order: [(step_seq, verdict), ...]
        self.verdicts: list[tuple[int, str]] = []
        self.summary: dict | None = None
        self._sent_steps: dict[int, int] = {}  # frame seq -> step
        self._disconnected = False

    # -- connection ----------------------------------------------------------
    def connect(self) -> dict:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        # The wire-fault injector engages only after WELCOME assigns the
        # tenant slot: handshake frames drawing at a default rank would
        # shift another tenant's occurrence counters with connection order.
        self.channel = FrameChannel(sock, trace=self.trace)
        self.channel.send(
            protocol.HELLO,
            protocol.encode_control(
                {"tenant": self.tenant, "token": self.token}
            ),
        )
        kind, _, payload = self._recv()
        if kind == protocol.REJECT:
            rej = protocol.decode_control(payload)
            self.close()
            raise ServiceRejected(
                rej.get("code", "unknown"), rej.get("reason", "")
            )
        if kind != protocol.WELCOME:
            self.close()
            raise ServiceError(f"expected WELCOME, got frame kind {kind}")
        welcome = protocol.decode_control(payload)
        self.credits = int(welcome.get("credits", 1))
        self.slot = int(welcome.get("slot", 0))
        self.placement = str(welcome.get("placement", ""))
        self.quota = dict(welcome.get("quota", {}))
        # Fault draws key on the server-assigned slot so a seeded plan can
        # target one tenant's channel deterministically.
        self.channel.fault_rank = self.slot
        self.channel.injector = self.injector
        return welcome

    def _send(self, kind: int, payload: bytes, step: int | None = None) -> int:
        """Send one frame; on a dead socket, surface the server's terminal
        verdict instead of a bare broken pipe.

        A terminal REJECT (quota exhaustion) races the client's pipelined
        sends: the server closes right after rejecting, so the next send
        may hit EPIPE with the REJECT still buffered.  Drain what the
        server managed to say -- a REJECT raises :class:`ServiceRejected`
        from ``_handle_control`` -- before reporting a disconnect.
        """
        assert self.channel is not None
        try:
            return self.channel.send(kind, payload, step=step)
        except OSError as exc:
            self._disconnected = True
            try:
                while True:
                    k, _, p = self.channel.recv()
                    self._handle_control(k, p)
            except (FrameError, OSError, EOFError):
                pass
            raise ServiceDisconnected(str(exc)) from exc

    def _recv(self) -> tuple[int, int, bytes]:
        assert self.channel is not None
        try:
            return self.channel.recv()
        except MalformedFrameError as exc:
            raise ServiceError(f"server stream broke: {exc}") from exc
        except (OSError, EOFError) as exc:
            self._disconnected = True
            raise ServiceDisconnected(str(exc)) from exc

    def _handle_control(self, kind: int, payload: bytes) -> bool:
        """Process one server frame; True if it was an ACK (credit back)."""
        assert self.channel is not None
        if kind == protocol.ACK:
            ack = protocol.decode_control(payload)
            seq = int(ack.get("seq", -1))
            step = self._sent_steps.pop(seq, None)
            self.channel.release_through(seq)
            self.credits += int(ack.get("credits", 1))
            if step is not None:
                self.verdicts.append((step, str(ack.get("verdict", ""))))
            return True
        if kind == protocol.NACK:
            nack = protocol.decode_control(payload)
            self.channel.retransmit_from(int(nack.get("seq", 0)))
            return False
        if kind == protocol.REJECT:
            rej = protocol.decode_control(payload)
            self.close()
            raise ServiceRejected(
                rej.get("code", "unknown"), rej.get("reason", "")
            )
        raise ServiceError(f"unexpected frame kind {kind}")

    # -- streaming -----------------------------------------------------------
    def submit(
        self, step: int, sim_time: float, arrays: dict[str, np.ndarray]
    ) -> None:
        """Stream one step; blocks while the credit window is exhausted."""
        if self.channel is None:
            raise ServiceError("submit() before connect()")
        while self.credits <= 0:
            kind, _, payload = self._recv()
            self._handle_control(kind, payload)
        if self.injector is not None:
            action = self.injector.draw(
                SITE_SERVICE_CLIENT, self.slot, step=step, trace=self.trace
            )
            if action is not None and action.kind == "disconnect":
                # Abandon the socket mid-conversation: the server must
                # clean the tenant up from a TruncatedFrameError.
                self._disconnected = True
                self.channel.close()
                raise ServiceDisconnected(
                    f"injected client disconnect at step {step}"
                )
        payload = protocol.encode_step(step, sim_time, arrays)
        seq = self._send(protocol.STEP, payload, step=step)
        self._sent_steps[seq] = step
        self.credits -= 1

    def finish(self) -> dict:
        """Send EOS, drain outstanding ACKs, return the server's summary."""
        if self.channel is None:
            raise ServiceError("finish() before connect()")
        self._send(protocol.EOS, protocol.encode_control({}))
        while True:
            kind, _, payload = self._recv()
            if kind == protocol.BYE:
                self.summary = protocol.decode_control(payload)
                self.close()
                return self.summary
            self._handle_control(kind, payload)

    def close(self) -> None:
        if self.channel is not None:
            self.channel.close()
            self.channel = None

    # -- convenience ---------------------------------------------------------
    def stream(self, steps) -> dict:
        """Connect if needed, stream ``(step, time, arrays)`` tuples, finish."""
        if self.channel is None:
            self.connect()
        for step, sim_time, arrays in steps:
            self.submit(step, sim_time, arrays)
        return self.finish()


def run_client_workload(
    socket_path: str,
    tenant: str,
    token: str,
    steps: int,
    shape: tuple[int, int] = (64, 64),
    seed: int = 0,
    injector=None,
    timeout: float = 60.0,
    workload: str = "synthetic",
) -> dict:
    """One tenant's full deterministic workload against a running server;
    the helper the CLI, the benchmark, and the smoke tests share.

    ``workload`` selects the generator: ``"synthetic"`` (drifting blobs)
    or ``"nbody"`` (the particle miniapp's density projections, grid size
    taken from ``shape[0]``).
    """
    from repro.service.workload import nbody_steps, synthetic_steps

    if workload == "synthetic":
        stream = synthetic_steps(tenant, steps, shape, seed)
    elif workload == "nbody":
        stream = nbody_steps(tenant, steps, grid=shape[0], seed=seed)
    else:
        raise ValueError(f"unknown workload {workload!r}")
    client = ServiceClient(
        socket_path, tenant, token, injector=injector, timeout=timeout
    )
    t0 = _time.perf_counter()
    summary = client.stream(stream)
    summary = dict(summary)
    summary["wall_seconds"] = _time.perf_counter() - t0
    summary["verdicts"] = list(client.verdicts)
    return summary
