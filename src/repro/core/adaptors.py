"""SENSEI data- and analysis-adaptor APIs.

The API shapes follow SENSEI's C++ interface (``sensei::DataAdaptor``,
``sensei::AnalysisAdaptor``) closely enough that the paper's instrumentation
pattern translates directly: a simulation implements a concrete
``DataAdaptor`` once; any number of analyses/infrastructures implement
``AnalysisAdaptor`` and consume it.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.data import Association, DataArray, Dataset

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi import Communicator
    from repro.util import MemoryTracker, TimerRegistry


class DataAdaptor(abc.ABC):
    """Maps one simulation's data structures onto the generic data model.

    Contract (mirrors SENSEI):

    - :meth:`get_mesh` returns the local mesh; with ``structure_only=True``
      only topology/geometry metadata is needed (no attribute mapping);
    - :meth:`get_array` maps one named attribute array on demand -- the lazy
      hook that keeps no-analysis overhead near zero;
    - :meth:`release_data` drops any per-step mappings after all analyses
      have executed; the next step re-maps from fresh simulation pointers
      ("the pointers to the ... grid data structures are passed every time
      in situ is accessed", Sec. 4.2.1).
    """

    def __init__(self, comm: "Communicator") -> None:
        self.comm = comm
        self._time = 0.0
        self._time_step = 0
        #: Optional per-rank memory accounting sink for adaptor-side
        #: allocations (e.g. ghost byte arrays, copied connectivity).
        self.memory: "MemoryTracker | None" = None

    # -- simulation-side per-step state ------------------------------------
    def set_data_time(self, time: float, step: int) -> None:
        self._time = float(time)
        self._time_step = int(step)

    def get_data_time(self) -> float:
        return self._time

    def get_data_time_step(self) -> int:
        return self._time_step

    # -- analysis-side access ------------------------------------------------
    @abc.abstractmethod
    def get_mesh(self, structure_only: bool = False) -> Dataset:
        """The local mesh block (lazily constructed)."""

    @abc.abstractmethod
    def get_array(self, association: Association, name: str) -> DataArray:
        """Map one attribute array onto the data model (lazily, zero-copy
        where the layout allows)."""

    @abc.abstractmethod
    def get_number_of_arrays(self, association: Association) -> int:
        """How many attribute arrays the simulation can expose."""

    @abc.abstractmethod
    def get_array_name(self, association: Association, index: int) -> str:
        """Name of the ``index``-th exposable attribute array."""

    def available_arrays(self, association: Association) -> list[str]:
        return [
            self.get_array_name(association, i)
            for i in range(self.get_number_of_arrays(association))
        ]

    def release_data(self) -> None:
        """Drop per-step mappings.  Default: nothing retained."""


class AnalysisAdaptor(abc.ABC):
    """An in situ method or infrastructure endpoint.

    ``execute`` returns ``True`` to let the simulation continue (computational
    steering hooks use ``False`` to request a stop).  ``initialize`` /
    ``finalize`` bracket the run and are where one-time costs (Fig. 5) live.

    Data-access contract: arrays and meshes obtained from the
    :class:`DataAdaptor` during ``execute`` are zero-copy views of
    simulation-owned memory.  They must not be written to, and must not be
    retained past the adaptor's ``release_data()`` (deep-copy anything kept
    across steps).  ``Bridge(..., sanitize=True)`` enforces both rules at
    runtime.  Analyses that legitimately transform their input in place set
    :attr:`mutates_data`; under the sanitizer they then receive a private
    deep copy instead of the simulation's buffers.
    """

    #: Declare that ``execute`` writes to arrays obtained from the data
    #: adaptor.  The sanitizer hands such analyses deep copies rather than
    #: write-protected zero-copy views.
    mutates_data: bool = False

    def __init__(self) -> None:
        self.timers: "TimerRegistry | None" = None
        self.memory: "MemoryTracker | None" = None

    def set_instrumentation(
        self, timers: "TimerRegistry | None", memory: "MemoryTracker | None"
    ) -> None:
        """Attach this rank's timing/memory instrumentation sinks."""
        self.timers = timers
        self.memory = memory

    def initialize(self, comm: "Communicator") -> None:
        """One-time setup (default none)."""

    @abc.abstractmethod
    def execute(self, data: DataAdaptor) -> bool:
        """Run the analysis against the current step's data."""

    def finalize(self) -> object | None:
        """One-time teardown; may return a result object (root rank)."""
        return None

    @property
    def name(self) -> str:
        return type(self).__name__
