"""Configuration-driven analysis selection.

SENSEI's ``ConfigurableAnalysis`` reads an XML file naming the analyses to
run and their parameters; end users "can easily choose between
ParaView/Catalyst and VisIt/Libsim ... or in transit using ADIOS or GLEAN"
without touching simulation code (Sec. 3.2).  Here the same role is played
by a JSON :class:`~repro.util.config.Configuration` and a factory registry:
analysis types register a builder by name; :class:`ConfigurableAnalysis`
instantiates everything listed under ``"analyses"`` and behaves as a single
composite :class:`AnalysisAdaptor`.
"""

from __future__ import annotations

from typing import Callable

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.util.config import ConfigError, Configuration

AnalysisFactory = Callable[[Configuration], AnalysisAdaptor]

_REGISTRY: dict[str, AnalysisFactory] = {}


def register_analysis(type_name: str) -> Callable[[AnalysisFactory], AnalysisFactory]:
    """Decorator registering a factory for ``{"type": type_name, ...}`` entries."""

    def deco(factory: AnalysisFactory) -> AnalysisFactory:
        _REGISTRY[type_name] = factory
        return factory

    return deco


def registered_analysis_types() -> list[str]:
    _ensure_builtin_analyses()
    return sorted(_REGISTRY)


def _ensure_builtin_analyses() -> None:
    """Import the packages whose modules self-register analysis types.

    Done lazily (not at module import) because those packages import this
    one to call :func:`register_analysis`.
    """
    import importlib

    for pkg in ("repro.analysis", "repro.infrastructure"):
        try:
            importlib.import_module(pkg)
        except ImportError:  # pragma: no cover - partial installs only
            pass


class ConfigurableAnalysis(AnalysisAdaptor):
    """Builds and drives the analyses named in a configuration.

    Configuration shape::

        {"analyses": [
            {"type": "histogram", "bins": 64, "array": "data"},
            {"type": "catalyst", "pipeline": "slice", ...},
        ]}

    Entries with ``"enabled": false`` are skipped, mirroring how SENSEI XML
    entries can be toggled without recompiling.
    """

    def __init__(self, config: Configuration) -> None:
        super().__init__()
        _ensure_builtin_analyses()
        self._analyses: list[AnalysisAdaptor] = []
        entries = config.get_list("analyses", [])
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise ConfigError(f"analyses[{i}] must be an object")
            sub = Configuration(entry)
            if not sub.get_bool("enabled", True):
                continue
            type_name = sub.get("type")
            if type_name is None:
                raise ConfigError(f"analyses[{i}] is missing 'type'")
            factory = _REGISTRY.get(type_name)
            if factory is None:
                raise ConfigError(
                    f"unknown analysis type {type_name!r}; "
                    f"registered: {registered_analysis_types()}"
                )
            self._analyses.append(factory(sub))

    @property
    def analyses(self) -> list[AnalysisAdaptor]:
        return list(self._analyses)

    def set_instrumentation(self, timers, memory) -> None:
        super().set_instrumentation(timers, memory)
        for a in self._analyses:
            a.set_instrumentation(timers, memory)

    def initialize(self, comm) -> None:
        for a in self._analyses:
            a.initialize(comm)

    def execute(self, data: DataAdaptor) -> bool:
        keep_going = True
        for a in self._analyses:
            keep_going = a.execute(data) and keep_going
        return keep_going

    def finalize(self) -> dict[str, object] | None:
        results = {}
        for a in self._analyses:
            out = a.finalize()
            if out is not None:
                results[a.name] = out
        return results or None
