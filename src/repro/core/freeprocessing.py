"""Freeprocessing-style I/O interception (Sec. 2.2.5).

"Freeprocessing has the potential to completely avoid instrumenting a
simulation code while enabling in situ computation.  This is done by
intercepting the results being written to disk and using that to construct
the grids and fields.  This has the potential for multiple data copies
though as the simulation may make an initial data copy to prepare it for a
specific file format and then another data copy from the file format to the
in situ processing engine."

This module implements that design so its cost can be compared against the
SENSEI zero-copy path: :class:`InterceptingWriter` wraps the repository's
file-per-process write routine; when a simulation "writes", the bytes it
would have put on disk are (optionally) persisted and then *parsed back*
into the data model -- the serialize + deserialize double copy the paper
describes -- and handed to analysis adaptors through a synthetic data
adaptor.  No simulation instrumentation is needed beyond already writing
output.
"""

from __future__ import annotations

import io

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.data import Association, DataArray, ImageData
from repro.storage import vtk_io
from repro.util.timers import TimerRegistry, timed


class InterceptedDataAdaptor(DataAdaptor):
    """Data adaptor over a mesh reconstructed from intercepted bytes."""

    def __init__(self, comm, mesh: ImageData, field: str) -> None:
        super().__init__(comm)
        self._mesh = mesh
        self._field = field

    def get_mesh(self, structure_only: bool = False) -> ImageData:
        return self._mesh

    def get_array(self, association: Association, name: str) -> DataArray:
        return self._mesh.get_array(association, name)

    def get_number_of_arrays(self, association: Association) -> int:
        return self._mesh.num_arrays(association)

    def get_array_name(self, association: Association, index: int) -> str:
        return self._mesh.array_names(association)[index]


class InterceptingWriter:
    """Intercepts block writes and drives analyses from the written bytes.

    Parameters
    ----------
    comm:
        The simulation's communicator.
    analyses:
        Analysis adaptors to run on every intercepted step.
    passthrough:
        When True the data still reaches disk (interception is a tee);
        when False the write is swallowed (pure in situ conversion of an
        existing I/O path).

    The copy accounting (``bytes_serialized`` / ``bytes_deserialized``)
    makes the double-copy cost measurable: each intercepted step first
    serializes the simulation array into the file format, then parses the
    format back into a fresh owning array for the analyses.
    """

    def __init__(self, comm, analyses: list[AnalysisAdaptor], passthrough: bool = False,
                 timers: TimerRegistry | None = None) -> None:
        self.comm = comm
        self.analyses = list(analyses)
        self.passthrough = passthrough
        self.timers = timers if timers is not None else TimerRegistry()
        self.bytes_serialized = 0
        self.bytes_deserialized = 0
        self._initialized = False

    def _ensure_initialized(self) -> None:
        if not self._initialized:
            self._initialized = True
            for a in self.analyses:
                a.set_instrumentation(self.timers, None)
                a.initialize(self.comm)

    def write_timestep(
        self, directory, step: int, time: float, image: ImageData, field: str
    ) -> None:
        """Drop-in replacement for :func:`repro.storage.write_timestep`."""
        self._ensure_initialized()
        with timed(self.timers, "freeprocessing::serialize"):
            # Copy #1: the simulation's array serialized into file bytes.
            buffer = io.BytesIO()
            arr = image.get_array(Association.POINT, field)
            data = np.ascontiguousarray(arr.values.reshape(image.dims))
            buffer.write(data.tobytes())
            blob = buffer.getvalue()
            self.bytes_serialized += len(blob)
        if self.passthrough:
            with timed(self.timers, "freeprocessing::passthrough"):
                vtk_io.write_timestep(self.comm, directory, step, time, image, field)
        with timed(self.timers, "freeprocessing::deserialize"):
            # Copy #2: bytes parsed back into a fresh owning array.
            parsed = np.frombuffer(blob, dtype=arr.dtype).reshape(image.dims).copy()
            self.bytes_deserialized += parsed.nbytes
            mesh = ImageData(
                image.extent,
                origin=image.origin,
                spacing=image.spacing,
                whole_extent=image.whole_extent,
            )
            mesh.add_point_array(DataArray.from_numpy(field, parsed))
        adaptor = InterceptedDataAdaptor(self.comm, mesh, field)
        adaptor.set_data_time(time, step)
        with timed(self.timers, "freeprocessing::analysis"):
            for a in self.analyses:
                a.execute(adaptor)

    def finalize(self) -> dict[str, object]:
        results: dict[str, object] = {
            "bytes_serialized": self.bytes_serialized,
            "bytes_deserialized": self.bytes_deserialized,
        }
        for a in self.analyses:
            out = a.finalize()
            if out is not None:
                results[a.name] = out
        return results
