"""Live connection and computational steering.

Catalyst can connect "with the ParaView GUI for live, interactive
visualization"; Libsim "enables VisIt to connect interactively to running
simulations for live exploration"; and PHASTA "allows many of its input
parameters to be reconfigured on the fly.  In this way the SENSEI results
close the loop on live problem redefinition" (Secs. 2.2.3, 4.2.1).

Two pieces reproduce that loop:

- :class:`LiveConnection` -- a thread-safe channel between a running
  simulation and an external controller ("the GUI"): the simulation side
  publishes rendered frames and metrics; the controller side polls them and
  submits parameter updates.
- :class:`SteeringAnalysis` -- an analysis adaptor that, each step, drains
  pending updates from the connection on rank 0, *broadcasts them* so every
  rank applies the same change at the same step (steering must stay
  SPMD-consistent), and applies them through registered parameter setters.
  It can also publish a per-step metric and a frame from another analysis.

The controller may also request a stop, which propagates through the
bridge's steering return value.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor


@dataclass
class Frame:
    """One published visualization frame."""

    step: int
    time: float
    png: bytes


class LiveConnection:
    """Thread-safe mailbox between simulation rank 0 and a controller.

    The controller runs outside the SPMD world (another thread in this
    runtime; a socket client in production systems).  All methods are safe
    to call from either side.
    """

    def __init__(self, max_frames: int = 16) -> None:
        if max_frames <= 0:
            raise ValueError("max_frames must be positive")
        # The connection is an in-memory channel: both endpoints must live
        # in the process that built it.  On the process SPMD backend each
        # rank would get a private copy and every publish would silently
        # vanish, so any use from another process fails fast instead.
        self._owner_pid = os.getpid()
        self._lock = threading.Condition()
        self._updates: list[dict[str, Any]] = []
        self._frames: list[Frame] = []
        self._metrics: list[tuple[int, float, float]] = []  # step, time, value
        self._max_frames = max_frames
        self._stop = False

    def _check_same_process(self) -> None:
        if os.getpid() != self._owner_pid:
            raise RuntimeError(
                "LiveConnection is an in-memory, shared-address-space channel "
                "and cannot cross a process boundary: this rank runs on the "
                "process SPMD backend in a different process from the "
                "controller. Run steering jobs on the thread backend "
                '(run_spmd(..., backend="thread")) or bridge the connection '
                "over a real transport."
            )

    # -- controller side -----------------------------------------------------
    def submit_update(self, **parameters: Any) -> None:
        """Queue a parameter change; applied at the next SENSEI step."""
        self._check_same_process()
        if not parameters:
            raise ValueError("submit_update requires at least one parameter")
        with self._lock:
            self._updates.append(dict(parameters))
            self._lock.notify_all()

    def request_stop(self) -> None:
        self._check_same_process()
        with self._lock:
            self._stop = True

    def latest_frame(self) -> Frame | None:
        self._check_same_process()
        with self._lock:
            return self._frames[-1] if self._frames else None

    def wait_for_frame(self, min_step: int, timeout: float = 30.0) -> Frame | None:
        """Block until a frame at/after ``min_step`` is published."""
        self._check_same_process()
        import time

        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                for f in reversed(self._frames):
                    if f.step >= min_step:
                        return f
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._lock.wait(remaining)

    def metrics(self) -> list[tuple[int, float, float]]:
        self._check_same_process()
        with self._lock:
            return list(self._metrics)

    # -- simulation side -------------------------------------------------------
    def drain_updates(self) -> list[dict[str, Any]]:
        self._check_same_process()
        with self._lock:
            out, self._updates = self._updates, []
            return out

    def stop_requested(self) -> bool:
        self._check_same_process()
        with self._lock:
            return self._stop

    def publish_frame(self, frame: Frame) -> None:
        self._check_same_process()
        with self._lock:
            self._frames.append(frame)
            if len(self._frames) > self._max_frames:
                self._frames = self._frames[-self._max_frames :]
            self._lock.notify_all()

    def publish_metric(self, step: int, time_: float, value: float) -> None:
        self._check_same_process()
        with self._lock:
            self._metrics.append((step, time_, value))
            self._lock.notify_all()


ParameterSetter = Callable[[Any], None]
MetricFn = Callable[[DataAdaptor], float]


class SteeringAnalysis(AnalysisAdaptor):
    """Applies live parameter updates and publishes frames/metrics.

    Parameters
    ----------
    connection:
        The :class:`LiveConnection` shared with the controller.  Only rank
        0 touches it; changes are broadcast so every rank stays consistent.
    parameters:
        Mapping of steerable parameter name -> setter callable.
    metric:
        Optional per-step scalar computed from the data adaptor and
        published for the controller (e.g. a wake/loss figure the engineer
        watches while tuning).
    frame_source:
        Optional analysis adaptor exposing ``last_png`` (Catalyst, Libsim,
        PhastaSliceRender); its most recent image is forwarded each step.
    """

    def __init__(
        self,
        connection: LiveConnection,
        parameters: dict[str, ParameterSetter],
        metric: MetricFn | None = None,
        frame_source: AnalysisAdaptor | None = None,
    ) -> None:
        super().__init__()
        self.connection = connection
        self.parameters = dict(parameters)
        self.metric = metric
        self.frame_source = frame_source
        self._comm = None
        self.applied: list[dict[str, Any]] = []

    def initialize(self, comm) -> None:
        self._comm = comm

    def execute(self, data: DataAdaptor) -> bool:
        # Rank 0 drains controller state; everyone receives the same view.
        if self._comm.rank == 0:
            payload = {
                "updates": self.connection.drain_updates(),
                "stop": self.connection.stop_requested(),
            }
        else:
            payload = None
        payload = self._comm.bcast(payload, root=0)

        for update in payload["updates"]:
            unknown = set(update) - set(self.parameters)
            if unknown:
                raise KeyError(
                    f"steering update for unknown parameter(s) {sorted(unknown)}; "
                    f"steerable: {sorted(self.parameters)}"
                )
            for name, value in update.items():
                self.parameters[name](value)
            self.applied.append(update)

        if self.metric is not None:
            value = self.metric(data)
            if self._comm.rank == 0:
                self.connection.publish_metric(
                    data.get_data_time_step(), data.get_data_time(), value
                )
        if (
            self.frame_source is not None
            and self._comm.rank == 0
            and getattr(self.frame_source, "last_png", None) is not None
        ):
            self.connection.publish_frame(
                Frame(
                    step=data.get_data_time_step(),
                    time=data.get_data_time(),
                    png=self.frame_source.last_png,
                )
            )
        return not payload["stop"]

    def finalize(self) -> dict | None:
        if self._comm is not None and self._comm.rank == 0:
            return {"updates_applied": len(self.applied)}
        return None
