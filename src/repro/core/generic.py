"""A reusable lazy data adaptor for structured (block) simulations.

The miniapp, AVF-LESLIE proxy, and Nyx proxy all expose "a block of a global
structured grid plus named numpy field arrays".  This adaptor implements the
SENSEI contract for that shape once: field arrays are registered as *array
providers* (callables returning the simulation's current buffer), and mesh /
array objects are constructed only when an analysis asks -- the lazy mapping
that makes no-analysis overhead "almost nonexistent" (Sec. 3.2) and that the
lazy-vs-eager ablation benchmark measures.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.adaptors import DataAdaptor
from repro.data import Association, DataArray, ImageData
from repro.util.decomp import Extent

ArrayProvider = Callable[[], np.ndarray]


class LazyStructuredDataAdaptor(DataAdaptor):
    """Lazily maps a structured block + named numpy fields to the data model.

    Parameters
    ----------
    comm:
        The simulation's communicator.
    extent / whole_extent:
        This rank's block and the global grid, VTK point-index convention.
    origin / spacing:
        Physical grid placement.
    eager:
        When True, every registered array (and the mesh) is mapped at
        ``set_data_time`` even if no analysis consumes it -- the ablation
        counterpart of the default lazy behaviour.
    """

    def __init__(
        self,
        comm,
        extent: Extent,
        whole_extent: Extent,
        origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
        spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
        eager: bool = False,
    ) -> None:
        super().__init__(comm)
        self.extent = extent
        self.whole_extent = whole_extent
        self.origin = origin
        self.spacing = spacing
        self.eager = eager
        self._providers: dict[tuple[Association, str], ArrayProvider] = {}
        self._order: dict[Association, list[str]] = {
            Association.POINT: [],
            Association.CELL: [],
        }
        self._mesh: ImageData | None = None
        self._mapped: dict[tuple[Association, str], DataArray] = {}
        #: Counters the tests/ablations use to verify laziness.
        self.mesh_constructions = 0
        self.array_mappings = 0

    # -- simulation-side registration -----------------------------------------
    def register_array(
        self, association: Association, name: str, provider: ArrayProvider
    ) -> None:
        """Register a field the simulation can expose.

        ``provider`` returns the *current* backing array each step, which is
        how "the pointers ... are passed every time in situ is accessed".
        """
        key = (association, name)
        if key not in self._providers:
            self._order[association].append(name)
        self._providers[key] = provider

    def set_data_time(self, time: float, step: int) -> None:
        super().set_data_time(time, step)
        if self.eager:
            self.get_mesh()
            for assoc, names in self._order.items():
                for name in names:
                    self.get_array(assoc, name)

    # -- DataAdaptor contract ---------------------------------------------------
    def get_mesh(self, structure_only: bool = False) -> ImageData:
        if self._mesh is None:
            self._mesh = ImageData(
                self.extent,
                origin=self.origin,
                spacing=self.spacing,
                whole_extent=self.whole_extent,
            )
            self.mesh_constructions += 1
        if not structure_only:
            # Attach any already-mapped arrays so analyses that go through
            # the mesh see them too.
            for (assoc, _), arr in self._mapped.items():
                if not self._mesh.has_array(assoc, arr.name):
                    self._mesh.add_array(assoc, arr)
        return self._mesh

    def get_array(self, association: Association, name: str) -> DataArray:
        key = (association, name)
        cached = self._mapped.get(key)
        if cached is not None:
            return cached
        provider = self._providers.get(key)
        if provider is None:
            raise KeyError(
                f"simulation exposes no {association.value} array {name!r}; "
                f"have {self._order[association]}"
            )
        backing = provider()
        arr = DataArray.from_numpy(name, backing)
        self._mapped[key] = arr
        self.array_mappings += 1
        rec = getattr(self.comm, "trace_recorder", None)
        if rec is not None:
            # The Sec. 3.2 zero-copy claim, as counters: bytes mapped by
            # reference vs bytes the adaptor had to copy (non-contiguous
            # or dtype-converted providers).
            if arr.is_zero_copy:
                rec.count("sensei::bytes_zero_copy", arr.nbytes)
            else:
                rec.count("sensei::bytes_copied", arr.nbytes_copied)
        return arr

    def get_number_of_arrays(self, association: Association) -> int:
        return len(self._order[association])

    def get_array_name(self, association: Association, index: int) -> str:
        return self._order[association][index]

    def release_data(self) -> None:
        """Drop per-step mappings; next step re-maps from fresh pointers."""
        self._mapped.clear()
        self._mesh = None
