"""The in situ bridge: assembles data adaptor + analyses, drives each step.

"A typical bridge implementation will initialize the data adaptor and one or
more analysis adaptors during the initialization phase of the simulation;
then for each time step pass the current simulation data arrays and any other
metadata to the data adaptor and call execute on the analysis adaptors."
(Sec. 3.2.)

The bridge is also the measurement point: it times ``initialize``,
``analysis::initialize``, per-step per-analysis ``execute``, and
``finalize`` -- exactly the phase breakdown of Figs. 5-6.

With ``sanitize=True`` the bridge additionally routes all analysis data
access through :class:`repro.sanitize.GuardedDataAdaptor`: analyses receive
write-protected zero-copy views, buffer fingerprints are re-verified after
each ``execute``, and retention past ``release_data()`` is detected via
weakrefs -- violations raise naming the offending analysis.  The mode is off
by default and adds nothing to the hot path when disabled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.util.timers import TimerRegistry, timed

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi import Communicator
    from repro.sanitize import GuardedDataAdaptor
    from repro.trace import TraceRecorder
    from repro.util import MemoryTracker


class Bridge:
    """Drives a set of :class:`AnalysisAdaptor` against one :class:`DataAdaptor`."""

    def __init__(
        self,
        comm: "Communicator",
        data_adaptor: DataAdaptor,
        timers: TimerRegistry | None = None,
        memory: "MemoryTracker | None" = None,
        sanitize: bool = False,
        trace: "TraceRecorder | None" = None,
        controller=None,
    ) -> None:
        self.comm = comm
        self.data_adaptor = data_adaptor
        self.timers = timers if timers is not None else TimerRegistry()
        self.memory = memory
        self.sanitize = bool(sanitize)
        # Resolve the structured-trace recorder: an explicit argument wins;
        # otherwise inherit whatever run_spmd(trace=...) attached to the
        # communicator.  Attaching to the timer registry makes every
        # timed() site in the bridge, analyses, infrastructures, and
        # miniapp emit spans with no further wiring.
        if trace is None:
            trace = getattr(comm, "trace_recorder", None)
        self.trace: "TraceRecorder | None" = trace
        if trace is not None:
            self.timers.attach_trace(trace)
            if memory is not None:
                memory.attach_trace(trace)
        self._guard: "GuardedDataAdaptor | None" = None
        if self.sanitize:
            # Imported lazily so the sanitizer costs nothing when disabled.
            from repro.sanitize import GuardedDataAdaptor as _Guard

            self._guard = _Guard(data_adaptor)
        # Optional online autotuning controller (repro.control): attached
        # to the trace recorder's live span feed; its end_step() hook runs
        # at every step boundary.  One `is not None` check when disabled.
        self._controller = controller
        if controller is not None and self.trace is not None:
            controller.attach(self.trace)
        self._analyses: list[AnalysisAdaptor] = []
        self._initialized = False
        self._finalized = False
        self._final_results: dict[str, object] = {}

    @property
    def analyses(self) -> list[AnalysisAdaptor]:
        return list(self._analyses)

    def add_analysis(self, analysis: AnalysisAdaptor) -> None:
        if self._initialized:
            raise RuntimeError("cannot add analyses after initialize()")
        self._analyses.append(analysis)

    def initialize(self) -> None:
        """One-time analysis setup ("analysis initialize" in Fig. 5)."""
        if self._initialized:
            raise RuntimeError("bridge already initialized")
        self._initialized = True
        with timed(self.timers, "sensei::initialize"):
            for a in self._analyses:
                a.set_instrumentation(self.timers, self.memory)
                with timed(self.timers, f"sensei::initialize::{a.name}"):
                    a.initialize(self.comm)

    def execute(self, time: float, step: int) -> bool:
        """Hand the current step to every analysis; returns False if any
        analysis requests the simulation stop."""
        if not self._initialized:
            raise RuntimeError("bridge.execute() before initialize()")
        if self._finalized:
            raise RuntimeError("bridge.execute() after finalize()")
        rec = self.trace
        if rec is not None:
            rec.set_step(step)
        self.data_adaptor.set_data_time(time, step)
        if self._guard is not None:
            keep_going = self._execute_sanitized(time, step)
        else:
            keep_going = True
            with timed(self.timers, "sensei::execute"):
                for a in self._analyses:
                    with timed(self.timers, f"sensei::execute::{a.name}"):
                        keep_going = a.execute(self.data_adaptor) and keep_going
            self.data_adaptor.release_data()
        if self._controller is not None:
            # Step boundary: the controller drains this step's spans and
            # may reconfigure its actuators before the next step begins.
            self._controller.end_step(step)
        return keep_going

    def _execute_sanitized(self, time: float, step: int) -> bool:
        guard = self._guard
        assert guard is not None
        guard.set_data_time(time, step)
        keep_going = True
        with timed(self.timers, "sensei::execute"):
            for a in self._analyses:
                guard.begin_analysis(a)
                with timed(self.timers, f"sensei::execute::{a.name}"):
                    keep_going = a.execute(guard) and keep_going
                guard.verify_analysis(a)
        guard.release_and_check()
        return keep_going

    def finalize(self) -> dict[str, object]:
        """Finalize every analysis; returns their results keyed by name.

        Idempotent: a second call returns the first call's cached results
        without re-finalizing any analysis.  Recovery paths need this --
        when a staged job degrades or unwinds through an error handler,
        finalize can legitimately be reached twice (the normal epilogue and
        the recovery epilogue), and analyses must not double-close their
        outputs.  ``execute`` after finalize still raises.
        """
        if not self._initialized:
            raise RuntimeError("bridge.finalize() before initialize()")
        if self._finalized:
            return self._final_results
        self._finalized = True
        results: dict[str, object] = {}
        with timed(self.timers, "sensei::finalize"):
            for a in self._analyses:
                with timed(self.timers, f"sensei::finalize::{a.name}"):
                    out = a.finalize()
                if out is not None:
                    results[a.name] = out
        if self.sanitize:
            dangling = self.timers.active()
            if dangling:
                from repro.sanitize import SanitizerError

                raise SanitizerError(
                    "timers still running at bridge finalize (unbalanced "
                    f"start/stop): {', '.join(dangling)}.  Phase totals "
                    "derived from these timers (Figs. 5-6) would be wrong."
                )
        self._final_results = results
        return results
