"""The SENSEI generic data interface (the paper's primary contribution).

Three pieces, mirroring Fig. 1 of the paper:

- :class:`DataAdaptor` -- "provides a mapping between simulation data
  structures and the VTK data model".  Concrete adaptors are written once
  per simulation; they expose meshes and attribute arrays *lazily*, so
  "when no analysis is enabled, the SENSEI instrumentation overhead is
  almost nonexistent".
- :class:`AnalysisAdaptor` -- "passes the data described in form of VTK data
  objects to any analysis code".  In situ methods (histogram,
  autocorrelation) and whole infrastructures (Catalyst, Libsim, ADIOS,
  GLEAN) are all analysis adaptors, which is what makes the *write once,
  use anywhere* chain work.
- :class:`Bridge` -- "a simple mechanism to assemble the analysis workflow":
  initialize adaptors, per step hand simulation state to the data adaptor
  and call execute on every analysis adaptor, then finalize.

:class:`ConfigurableAnalysis` builds a set of analysis adaptors from a
configuration file, standing in for SENSEI's XML-driven analysis selection.
"""

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.core.bridge import Bridge
from repro.core.generic import LazyStructuredDataAdaptor
from repro.core.configurable import ConfigurableAnalysis, register_analysis
from repro.core.steering import Frame, LiveConnection, SteeringAnalysis

__all__ = [
    "DataAdaptor",
    "AnalysisAdaptor",
    "Bridge",
    "LazyStructuredDataAdaptor",
    "ConfigurableAnalysis",
    "register_analysis",
    "LiveConnection",
    "SteeringAnalysis",
    "Frame",
]
