"""PHASTA proxy: explicit flow solver on an unstructured tetrahedral mesh.

PHASTA "solves the Navier-Stokes equations ... using a stabilized finite
element method" over an unstructured grid, with core routines in Fortran 90
(Sec. 4.2.1).  The proxy preserves what the paper measures:

- an unstructured tetrahedral mesh (each rank's box of a global grid,
  hexes split into 6 tets), with nodal coordinates and solution fields in
  Fortran-style SoA storage so the SENSEI adaptor's zero-copy mapping is
  exercised exactly as described: "the data adaptor uses VTK's zero-copy
  ability to map the nodal coordinates and field variables while the VTK
  grid connectivity is a full copy";
- per-step cost proportional to element count: the solve is emulated by
  edge-smoothing (Jacobi) sweeps over the element connectivity -- the
  memory-access pattern of an explicit FEM residual -- driven by an
  analytic unsteady synthetic-jet-over-tail velocity field;
- Catalyst output: a 2-D slice "pseudo-colored by velocity magnitude",
  composited across ranks, PNG-encoded serially on rank 0 (the Table 2
  zlib bottleneck).
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.data import Association, CellType, DataArray, UnstructuredGrid
from repro.mpi import MAX, MIN
from repro.render import blank_image, splat_points
from repro.render.colormap import COOL_WARM, Colormap
from repro.render.compositing import binary_swap
from repro.render.png import encode_png
from repro.util.decomp import block_decompose_1d
from repro.util.memory import MemoryTracker
from repro.util.timers import TimerRegistry, timed

# The 6-tet decomposition of a hexahedral cell (corner ids i + 2j + 4k).
_HEX_TETS = np.array(
    [
        [0, 1, 3, 7],
        [0, 1, 7, 5],
        [0, 5, 7, 4],
        [0, 3, 2, 7],
        [0, 2, 6, 7],
        [0, 6, 4, 7],
    ],
    dtype=np.int64,
)


def build_rank_mesh(
    comm, global_cells: tuple[int, int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """This rank's tet mesh of its x-slab of the global box.

    Returns ``(x, y, z, tets)`` where the coordinates are separate 1-D
    arrays (Fortran-style SoA nodal storage) and ``tets`` is an
    ``(ncells, 4)`` connectivity array in *local* node numbering.
    """
    ncx, ncy, ncz = global_cells
    lo, hi = block_decompose_1d(ncx, comm.size, comm.rank)
    if hi <= lo:
        raise ValueError("more ranks than x-cell planes")
    npx = hi - lo + 1  # local node planes (shared boundary nodes duplicated)
    npy, npz = ncy + 1, ncz + 1
    xs = np.linspace(lo / ncx, hi / ncx, npx)
    ys = np.linspace(0.0, 1.0, npy)
    zs = np.linspace(0.0, 1.0, npz)
    X, Y, Z = np.meshgrid(xs, ys, zs, indexing="ij")
    x = np.ascontiguousarray(X.reshape(-1))
    y = np.ascontiguousarray(Y.reshape(-1))
    z = np.ascontiguousarray(Z.reshape(-1))

    def node(i, j, k):
        return (i * npy + j) * npz + k

    ci, cj, ck = np.meshgrid(
        np.arange(npx - 1), np.arange(npy - 1), np.arange(npz - 1), indexing="ij"
    )
    ci, cj, ck = ci.reshape(-1), cj.reshape(-1), ck.reshape(-1)
    corners = np.empty((ci.size, 8), dtype=np.int64)
    for c in range(8):
        oi, oj, ok = (c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1
        corners[:, c] = node(ci + oi, cj + oj, ck + ok)
    tets = corners[:, _HEX_TETS].reshape(-1, 4)
    return x, y, z, tets


def tail_flow(
    x: np.ndarray, y: np.ndarray, z: np.ndarray, t: float, jet_freq: float = 8.0,
    jet_amplitude: float = 0.4,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic unsteady flow over a vertical tail with a pulsing jet.

    Free stream in +x deflected around a thin vertical "tail" at
    x ~ 0.45, plus a synthetic jet near the separation point whose
    frequency/amplitude are the flow-control knobs the paper's engineers
    tuned interactively through SENSEI imagery.
    """
    tail_dist2 = (x - 0.45) ** 2 / 0.002 + (z - 0.5) ** 2 / 0.08
    blockage = np.exp(-tail_dist2)
    u = 1.0 - 0.9 * blockage
    v = 0.15 * np.sin(2 * np.pi * (x - 0.3 * t)) * blockage
    jet = jet_amplitude * np.sin(2 * np.pi * jet_freq * t) * np.exp(
        -((x - 0.47) ** 2 + (y - 0.3) ** 2 + (z - 0.5) ** 2) / 0.004
    )
    w = 0.3 * (z - 0.5) * blockage + jet
    return u, v, w


class PhastaSimulation:
    """One rank's share of the PHASTA proxy.

    ``smoothing_sweeps`` Jacobi passes over the tet connectivity emulate
    the per-element solver cost (the production code's implicit solve costs
    far more per element; the proxy's cost still scales as O(elements)).
    """

    def __init__(
        self,
        comm,
        global_cells: tuple[int, int, int] = (16, 8, 8),
        smoothing_sweeps: int = 2,
        jet_freq: float = 8.0,
        jet_amplitude: float = 0.4,
        timers: TimerRegistry | None = None,
        memory: MemoryTracker | None = None,
    ) -> None:
        self.comm = comm
        self.timers = timers if timers is not None else TimerRegistry()
        self.memory = memory
        self.smoothing_sweeps = smoothing_sweeps
        self.jet_freq = jet_freq
        self.jet_amplitude = jet_amplitude
        with timed(self.timers, "phasta::mesh"):
            self.x, self.y, self.z, self.tets = build_rank_mesh(comm, global_cells)
        # Fortran-style SoA solution storage: one array per component.
        n = self.x.shape[0]
        self.vel_u = np.zeros(n)
        self.vel_v = np.zeros(n)
        self.vel_w = np.zeros(n)
        self.pressure = np.zeros(n)
        if self.memory is not None:
            for a in (self.x, self.y, self.z, self.vel_u, self.vel_v, self.vel_w):
                self.memory.track_array(a, label="phasta::nodal")
            self.memory.track_array(self.tets, label="phasta::connectivity")
        self.time = 0.0
        self.step = 0
        self.dt = 0.01

    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]

    @property
    def num_elements(self) -> int:
        return self.tets.shape[0]

    def advance(self) -> None:
        """One pseudo-step: analytic field update + element-driven smoothing."""
        with timed(self.timers, "phasta::solve"):
            self.time += self.dt
            self.step += 1
            u, v, w = tail_flow(
                self.x, self.y, self.z, self.time,
                jet_freq=self.jet_freq, jet_amplitude=self.jet_amplitude,
            )
            self.vel_u[:] = u
            self.vel_v[:] = v
            self.vel_w[:] = w
            # Element-loop cost: Jacobi smoothing through tet connectivity.
            for _ in range(self.smoothing_sweeps):
                for comp in (self.vel_u, self.vel_v, self.vel_w):
                    elem_mean = comp[self.tets].mean(axis=1)
                    acc = np.zeros_like(comp)
                    cnt = np.zeros_like(comp)
                    np.add.at(acc, self.tets.reshape(-1), np.repeat(elem_mean, 4))
                    np.add.at(cnt, self.tets.reshape(-1), 1.0)
                    comp += 0.05 * (acc / np.maximum(cnt, 1.0) - comp)
            self.pressure[:] = 1.0 - 0.5 * (u * u + v * v + w * w)

    def run(self, n_steps: int, bridge=None) -> None:
        for _ in range(n_steps):
            self.advance()
            if bridge is not None:
                if not bridge.execute(self.time, self.step):
                    break

    def make_data_adaptor(self) -> "PhastaDataAdaptor":
        return PhastaDataAdaptor(self)


class PhastaDataAdaptor(DataAdaptor):
    """SENSEI adaptor: zero-copy nodes/fields, full-copy connectivity.

    "The grid and fields are constructed as needed but the pointers to the
    PHASTA grid data structures are passed every time in situ is accessed"
    -- so the mesh object is rebuilt per step (``release_data`` drops it)
    while the underlying coordinate/field arrays are wrapped by reference.
    """

    FIELDS = ("velocity", "pressure")

    def __init__(self, sim: PhastaSimulation) -> None:
        super().__init__(sim.comm)
        self.sim = sim
        self._mesh: UnstructuredGrid | None = None
        self.mesh_constructions = 0

    def get_mesh(self, structure_only: bool = False) -> UnstructuredGrid:
        if self._mesh is None:
            points = np.column_stack((self.sim.x, self.sim.y, self.sim.z))
            # NOTE: column_stack is the one unavoidable copy for point
            # coordinates because VTK-style points are interleaved; the
            # attribute arrays below stay zero-copy SoA.  Connectivity is a
            # deliberate full copy, matching the paper's PHASTA adaptor.
            self._mesh = UnstructuredGrid.from_cells(
                points, CellType.TETRA, self.sim.tets.copy()
            )
            self.mesh_constructions += 1
        if not structure_only:
            for name in self.FIELDS:
                if not self._mesh.has_array(Association.POINT, name):
                    self._mesh.add_array(
                        Association.POINT, self.get_array(Association.POINT, name)
                    )
        return self._mesh

    def get_array(self, association: Association, name: str) -> DataArray:
        if association is not Association.POINT:
            raise KeyError("PHASTA adaptor exposes point data only")
        if name == "velocity":
            return DataArray.from_soa(
                "velocity", [self.sim.vel_u, self.sim.vel_v, self.sim.vel_w]
            )
        if name == "pressure":
            return DataArray.from_numpy("pressure", self.sim.pressure)
        raise KeyError(f"unknown PHASTA array {name!r}")

    def get_number_of_arrays(self, association: Association) -> int:
        return len(self.FIELDS) if association is Association.POINT else 0

    def get_array_name(self, association: Association, index: int) -> str:
        return self.FIELDS[index]

    def release_data(self) -> None:
        self._mesh = None


class PhastaSliceRender(AnalysisAdaptor):
    """Catalyst-style slice of the unstructured mesh, colored by |velocity|.

    Nodes within half a cell of the slice plane are splatted (depth-tested
    by distance to the plane), partial images are binary-swap composited,
    and rank 0 encodes the PNG -- serially, with zlib, as in the paper.
    """

    def __init__(
        self,
        axis: int = 1,
        coordinate: float = 0.3,
        resolution: tuple[int, int] = (800, 200),
        thickness: float = 0.08,
        colormap: Colormap = COOL_WARM,
        compression_level: int = 6,
        output_dir=None,
        png_workers: int = 0,
    ) -> None:
        super().__init__()
        if axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1, or 2")
        self.axis = axis
        self.coordinate = coordinate
        self.resolution = resolution
        self.thickness = thickness
        self.colormap = colormap
        self.compression_level = compression_level
        self.png_workers = png_workers
        self.output_dir = output_dir
        self._comm = None
        self.images_written = 0
        self.last_png: bytes | None = None

    def initialize(self, comm) -> None:
        self._comm = comm
        if self.output_dir is not None and comm.rank == 0:
            import os

            os.makedirs(self.output_dir, exist_ok=True)

    def execute(self, data: DataAdaptor) -> bool:
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, UnstructuredGrid):
            raise TypeError("PhastaSliceRender requires an UnstructuredGrid")
        with timed(self.timers, "phasta_slice::extract"):
            coords = (mesh.points[:, 0], mesh.points[:, 1], mesh.points[:, 2])
            dist = np.abs(coords[self.axis] - self.coordinate)
            near = dist < self.thickness
            vel = data.get_array(Association.POINT, "velocity")
            vmag_local = vel.magnitude()
            local_min = float(vmag_local.min()) if vmag_local.size else float("inf")
            local_max = float(vmag_local.max()) if vmag_local.size else float("-inf")
        vmin = self._comm.allreduce(local_min, MIN)
        vmax = self._comm.allreduce(local_max, MAX)
        with timed(self.timers, "phasta_slice::render"):
            w, h = self.resolution
            if near.any():
                u_ax, v_ax = [a for a in range(3) if a != self.axis]
                pts2d = np.column_stack((coords[u_ax][near], coords[v_ax][near]))
                colors = self.colormap.map(vmag_local[near], vmin=vmin, vmax=vmax)
                partial = splat_points(
                    pts2d,
                    dist[near].astype(np.float32),
                    colors,
                    w,
                    h,
                    (0.0, 1.0, 0.0, 1.0),
                    radius=2,
                )
            else:
                partial = blank_image(w, h, with_depth=True)
        with timed(self.timers, "phasta_slice::composite"):
            final = binary_swap(self._comm, partial)
        if final is not None:
            with timed(self.timers, "phasta_slice::png"):
                blob = encode_png(
                    final.rgb, self.compression_level, workers=self.png_workers
                )
            self.last_png = blob
            if self.output_dir is not None:
                import os

                path = os.path.join(
                    self.output_dir, f"phasta_{data.get_data_time_step():06d}.png"
                )
                with open(path, "wb") as fh:
                    fh.write(blob)
            self.images_written += 1
        return True

    def finalize(self):
        if self._comm is not None and self._comm.rank == 0:
            return {"images_written": self.images_written}
        return None
