"""Nyx proxy: particle-mesh cosmological gravity on a periodic grid.

Nyx is a "massively parallel ... code for computational cosmology" whose
SENSEI study ran single-level (no AMR) simulations on axis-aligned boxes,
avoided data replication by passing BoxLib pointers straight to VTK, and
blanked ghost cells with a ``vtkGhostLevels`` byte array (Sec. 4.2.3).

The proxy is a classic particle-mesh code with every parallel ingredient
real:

- dark-matter particles on an x-slab decomposition, migrated between ranks
  with an all-to-all after each drift;
- cloud-in-cell (CIC) mass deposition with halo accumulation;
- a Poisson solve by *distributed* FFT: local FFTs over (y, z), a global
  slab transpose via all-to-all, the x-direction FFT, the -1/k^2 filter,
  and the inverse path;
- leapfrog kick-drift integration with gradient forces from halo-exchanged
  potential planes.

The SENSEI adaptor exposes the density field *including one ghost layer*
plus the vtkGhostLevels byte array -- the Nyx blanking pattern the
histogram analysis honours -- at ~``2 * ny * nz * 1`` bytes per rank
(Nyx's reported ~2 MB/rank ghost-array overhead at production sizes).
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptors import DataAdaptor
from repro.data import Association, DataArray, GHOST_ARRAY_NAME, ImageData
from repro.data.ghost import ghost_levels_for_extent
from repro.util.decomp import Extent, block_decompose_1d
from repro.util.memory import MemoryTracker
from repro.util.timers import TimerRegistry, timed


def _slab_bounds(n: int, size: int) -> list[tuple[int, int]]:
    return [block_decompose_1d(n, size, r) for r in range(size)]


class NyxSimulation:
    """One rank's share of the PM proxy.

    Parameters
    ----------
    grid:
        Global cells per axis (``grid^3`` total); must be divisible by
        nothing in particular -- uneven slabs are handled.
    particles_per_cell:
        Initial lattice density of dark-matter particles.
    """

    def __init__(
        self,
        comm,
        grid: int = 32,
        particles_per_cell: float = 1.0,
        perturbation: float = 0.2,
        dt: float = 0.05,
        gravity: float = 1.0,
        seed: int = 42,
        timers: TimerRegistry | None = None,
        memory: MemoryTracker | None = None,
    ) -> None:
        if grid < comm.size:
            raise ValueError("need at least one x-plane of cells per rank")
        self.comm = comm
        self.grid = grid
        self.dt = float(dt)
        self.gravity = float(gravity)
        self.timers = timers if timers is not None else TimerRegistry()
        self.memory = memory
        self.h = 1.0 / grid
        self.bounds = _slab_bounds(grid, comm.size)
        self.x_lo, self.x_hi = self.bounds[comm.rank]
        self.nx_local = self.x_hi - self.x_lo
        self.time = 0.0
        self.step = 0

        # Perturbed-lattice initial particles, owned by x position.
        with timed(self.timers, "nyx::init"):
            rng = np.random.default_rng(seed)  # same lattice on every rank
            per_axis = max(int(round(grid * particles_per_cell ** (1.0 / 3.0))), 1)
            lattice = (np.arange(per_axis) + 0.5) / per_axis
            px, py, pz = np.meshgrid(lattice, lattice, lattice, indexing="ij")
            pos = np.column_stack([px.reshape(-1), py.reshape(-1), pz.reshape(-1)])
            pos += perturbation * self.h * rng.standard_normal(pos.shape)
            pos %= 1.0
            mine = self._owner_ranks(pos[:, 0]) == comm.rank
            self.positions = np.ascontiguousarray(pos[mine])
            self.velocities = np.zeros_like(self.positions)
            self.total_particles = pos.shape[0]
            # Field storage: owned slab + 1 halo plane each side in x.
            self.density = np.zeros((self.nx_local + 2, grid, grid))
            self.potential = np.zeros_like(self.density)
            if self.memory is not None:
                self.memory.track_array(self.positions, label="nyx::particles")
                self.memory.track_array(self.density, label="nyx::density")
                self.memory.track_array(self.potential, label="nyx::potential")

    # -- ownership / migration -------------------------------------------------
    def _owner_ranks(self, x: np.ndarray) -> np.ndarray:
        cell = np.clip((x / self.h).astype(np.int64), 0, self.grid - 1)
        owners = np.empty(cell.shape, dtype=np.int64)
        for r, (lo, hi) in enumerate(self.bounds):
            owners[(cell >= lo) & (cell < hi)] = r
        return owners

    def _migrate(self) -> None:
        owners = self._owner_ranks(self.positions[:, 0])
        outboxes = []
        for r in range(self.comm.size):
            sel = owners == r
            outboxes.append((self.positions[sel], self.velocities[sel]))
        received = self.comm.alltoall(outboxes)
        self.positions = np.concatenate([p for p, _ in received])
        self.velocities = np.concatenate([v for _, v in received])

    # -- CIC deposit ---------------------------------------------------------------
    def deposit(self) -> None:
        """CIC mass deposition into the haloed density slab."""
        with timed(self.timers, "nyx::deposit"):
            self.density.fill(0.0)
            if self.positions.shape[0]:
                g = self.grid
                # Continuous cell coordinates; local x offset by halo.
                cx = self.positions[:, 0] / self.h - 0.5
                cy = self.positions[:, 1] / self.h - 0.5
                cz = self.positions[:, 2] / self.h - 0.5
                i0 = np.floor(cx).astype(np.int64)
                j0 = np.floor(cy).astype(np.int64)
                k0 = np.floor(cz).astype(np.int64)
                fx = cx - i0
                fy = cy - j0
                fz = cz - k0
                li0 = i0 - self.x_lo + 1  # halo offset; may be 0 or nx+1
                for di, wxs in ((0, 1 - fx), (1, fx)):
                    for dj, wys in ((0, 1 - fy), (1, fy)):
                        for dk, wzs in ((0, 1 - fz), (1, fz)):
                            w = wxs * wys * wzs
                            np.add.at(
                                self.density,
                                (
                                    li0 + di,
                                    (j0 + dj) % g,
                                    (k0 + dk) % g,
                                ),
                                w,
                            )
            # Fold halo contributions into the owning neighbors.
            self._fold_halo(self.density)
            # Normalize to overdensity units.
            mean_mass = self.total_particles / self.grid**3
            self.density[1:-1] /= mean_mass

    def _fold_halo(self, field: np.ndarray) -> None:
        size, rank = self.comm.size, self.comm.rank
        left = (rank - 1) % size
        right = (rank + 1) % size
        if size == 1:
            field[-2] += field[0]
            field[1] += field[-1]
            field[0] = field[-1] = 0.0
            return
        got_right = self.comm.sendrecv(
            np.ascontiguousarray(field[0]), dest=left, source=right,
            sendtag=41, recvtag=41,
        )
        got_left = self.comm.sendrecv(
            np.ascontiguousarray(field[-1]), dest=right, source=left,
            sendtag=42, recvtag=42,
        )
        field[-2] += got_right
        field[1] += got_left
        field[0] = 0.0
        field[-1] = 0.0

    def _exchange_halo(self, field: np.ndarray) -> None:
        """Fill x halo planes from periodic neighbors."""
        size, rank = self.comm.size, self.comm.rank
        left = (rank - 1) % size
        right = (rank + 1) % size
        if size == 1:
            field[0] = field[-2]
            field[-1] = field[1]
            return
        got_right = self.comm.sendrecv(
            np.ascontiguousarray(field[1]), dest=left, source=right,
            sendtag=43, recvtag=43,
        )
        got_left = self.comm.sendrecv(
            np.ascontiguousarray(field[-2]), dest=right, source=left,
            sendtag=44, recvtag=44,
        )
        field[-1] = got_right
        field[0] = got_left

    # -- distributed FFT Poisson solve -----------------------------------------------
    def _transpose_x_to_y(self, a: np.ndarray) -> np.ndarray:
        """(x-slab, full y) -> (full x, y-slab) via all-to-all."""
        size = self.comm.size
        ybounds = _slab_bounds(self.grid, size)
        chunks = [
            np.ascontiguousarray(a[:, ylo:yhi, :]) for (ylo, yhi) in ybounds
        ]
        received = self.comm.alltoall(chunks)
        return np.concatenate(received, axis=0)

    def _transpose_y_to_x(self, a: np.ndarray) -> np.ndarray:
        """(full x, y-slab) -> (x-slab, full y): the inverse all-to-all."""
        size = self.comm.size
        xbounds = self.bounds
        chunks = [
            np.ascontiguousarray(a[xlo:xhi, :, :]) for (xlo, xhi) in xbounds
        ]
        received = self.comm.alltoall(chunks)
        return np.concatenate(received, axis=1)

    def solve_poisson(self) -> None:
        """potential = IFFT( -FFT(density) / k^2 ), distributed."""
        with timed(self.timers, "nyx::poisson"):
            g = self.grid
            rho = self.density[1:-1]  # owned slab
            # Local transforms over the fully local axes (y, z).
            f = np.fft.fftn(rho, axes=(1, 2))
            # Transpose to make x local, transform x.
            f = self._transpose_x_to_y(f)
            f = np.fft.fft(f, axis=0)
            # Spectral filter on this rank's (full-x, y-slab, full-z) block.
            kx = 2 * np.pi * np.fft.fftfreq(g, d=self.h)
            ylo, yhi = _slab_bounds(g, self.comm.size)[self.comm.rank]
            ky = 2 * np.pi * np.fft.fftfreq(g, d=self.h)[ylo:yhi]
            kz = 2 * np.pi * np.fft.fftfreq(g, d=self.h)
            k2 = (
                kx[:, None, None] ** 2
                + ky[None, :, None] ** 2
                + kz[None, None, :] ** 2
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                f = np.where(k2 > 0, -self.gravity * f / k2, 0.0)
            # Inverse path.
            f = np.fft.ifft(f, axis=0)
            f = self._transpose_y_to_x(f)
            phi = np.fft.ifftn(f, axes=(1, 2)).real
            self.potential[1:-1] = phi
            self._exchange_halo(self.potential)

    # -- dynamics -----------------------------------------------------------------
    def _accelerations(self) -> np.ndarray:
        """CIC-interpolated -grad(phi) at the particle positions.

        Uses nearest-cell gradient sampling (sufficient for the proxy) with
        central differences; x differences use the halo planes.
        """
        g = self.grid
        grad = np.empty((3,) + self.potential[1:-1].shape)
        grad[0] = (self.potential[2:] - self.potential[:-2]) / (2 * self.h)
        grad[1] = (
            np.roll(self.potential[1:-1], -1, axis=1)
            - np.roll(self.potential[1:-1], 1, axis=1)
        ) / (2 * self.h)
        grad[2] = (
            np.roll(self.potential[1:-1], -1, axis=2)
            - np.roll(self.potential[1:-1], 1, axis=2)
        ) / (2 * self.h)
        if self.positions.shape[0] == 0:
            return np.zeros((0, 3))
        ci = np.clip(
            (self.positions[:, 0] / self.h).astype(np.int64) - self.x_lo,
            0,
            self.nx_local - 1,
        )
        cj = np.clip((self.positions[:, 1] / self.h).astype(np.int64), 0, g - 1)
        ck = np.clip((self.positions[:, 2] / self.h).astype(np.int64), 0, g - 1)
        return -np.column_stack([grad[0][ci, cj, ck], grad[1][ci, cj, ck], grad[2][ci, cj, ck]])

    def advance(self) -> None:
        """One kick-drift-migrate-deposit-solve cycle."""
        self.deposit()
        self.solve_poisson()
        with timed(self.timers, "nyx::push"):
            acc = self._accelerations()
            self.velocities += self.dt * acc
            self.positions += self.dt * self.velocities
            self.positions %= 1.0
        with timed(self.timers, "nyx::migrate"):
            self._migrate()
        self.time += self.dt
        self.step += 1

    def run(self, n_steps: int, bridge=None) -> None:
        for _ in range(n_steps):
            self.advance()
            if bridge is not None:
                if not bridge.execute(self.time, self.step):
                    break

    # -- SENSEI adaptor ----------------------------------------------------------
    def ghosted_extent(self) -> Extent:
        """Owned cells plus the one-cell x halo, clamped to the domain edge
        in index space (periodic wrap is represented as clamp for ghosting
        purposes -- ghost flags, not geometry, are what the analyses use)."""
        g = self.grid
        return Extent(
            max(self.x_lo - 1, 0),
            min(self.x_hi, g - 1),
            0,
            g - 1,
            0,
            g - 1,
        )

    def owned_extent(self) -> Extent:
        g = self.grid
        return Extent(self.x_lo, self.x_hi - 1, 0, g - 1, 0, g - 1)

    def whole_extent(self) -> Extent:
        g = self.grid
        return Extent(0, g - 1, 0, g - 1, 0, g - 1)

    def make_data_adaptor(self) -> "NyxDataAdaptor":
        return NyxDataAdaptor(self)


class NyxDataAdaptor(DataAdaptor):
    """Exposes the haloed density slab with vtkGhostLevels blanking.

    "We avoid data replication by directly passing a pointer to the BoxLib
    data to VTK and blanking out ghost cells ... by associating a
    vtkGhostLevels attribute -- a byte array of flags marking ghost cells."
    The density view handed out is a zero-copy slice of the simulation's
    haloed array; the ghost byte array is the per-rank memory overhead the
    paper quantifies (~2 MB/rank at production sizes).
    """

    def __init__(self, sim: NyxSimulation) -> None:
        super().__init__(sim.comm)
        self.sim = sim
        self._mesh: ImageData | None = None
        self._ghosts: np.ndarray | None = None

    def _view(self) -> np.ndarray:
        """Zero-copy slice of the haloed density covering the ghosted extent.

        The density array's plane 0 holds cell ``x_lo - 1``, so extent index
        ``i`` lives at array plane ``i - (x_lo - 1)``.
        """
        ext = self.sim.ghosted_extent()
        start = ext.i0 - (self.sim.x_lo - 1)
        stop = ext.i1 - (self.sim.x_lo - 1) + 1
        return self.sim.density[start:stop]

    def get_mesh(self, structure_only: bool = False) -> ImageData:
        if self._mesh is None:
            self._mesh = ImageData(
                self.sim.ghosted_extent(),
                spacing=(self.sim.h,) * 3,
                whole_extent=self.sim.whole_extent(),
            )
        return self._mesh

    def get_array(self, association: Association, name: str) -> DataArray:
        if association is not Association.POINT:
            raise KeyError("Nyx adaptor exposes point data only")
        if name == "density":
            return DataArray.from_numpy("density", self._view())
        if name == GHOST_ARRAY_NAME:
            if self._ghosts is None:
                self._ghosts = ghost_levels_for_extent(
                    self.sim.ghosted_extent(), self.sim.owned_extent()
                )
                if self.memory is not None:
                    self.memory.track_array(self._ghosts, label="nyx::ghosts")
            return DataArray.from_soa(GHOST_ARRAY_NAME, [self._ghosts])
        raise KeyError(f"unknown Nyx array {name!r}")

    def get_number_of_arrays(self, association: Association) -> int:
        return 2 if association is Association.POINT else 0

    def get_array_name(self, association: Association, index: int) -> str:
        return ("density", GHOST_ARRAY_NAME)[index]

    def release_data(self) -> None:
        self._mesh = None
