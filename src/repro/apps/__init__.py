"""Science-application proxies (Sec. 4.2).

Three SENSEI-instrumented codes matching the paper's application studies:

- :mod:`phasta_proxy` -- PHASTA stand-in: an explicit flow proxy on an
  unstructured tetrahedral mesh; nodal coordinates and fields map zero-copy,
  connectivity is a full copy (the exact split Sec. 4.2.1 describes); its
  Catalyst output is a velocity-magnitude-colored slice PNG whose zlib
  compression is the measured bottleneck.
- :mod:`avf_leslie_proxy` -- AVF-LESLIE stand-in: a compressible
  finite-volume Euler solver (Rusanov fluxes, RK2) on a Cartesian grid
  simulating a temporally evolving planar mixing layer, with vorticity
  magnitude derived in the adaptor and a Libsim session of 3 isosurfaces +
  3 slice planes run every 5th step.
- :mod:`nyx_proxy` -- Nyx stand-in: particle-mesh gravity (CIC deposit,
  slab-decomposed parallel FFT Poisson solve with an all-to-all transpose,
  leapfrog) whose density grid is exposed with vtkGhostLevels blanking for
  in situ histogram + Catalyst slice.

The proxies are not the production codes; they are cost- and
structure-faithful substitutes (see DESIGN.md's substitution table) whose
purpose is to exercise the identical SENSEI code paths the paper measures.

:mod:`nbody` rounds out the family with the variable-length workload
shape: a leapfrog particle-mesh miniapp whose per-rank particle counts
change every step as particles migrate between domain slabs, with
exact-integer deposits that keep analysis artifacts bit-identical across
rank counts and backends.
"""

from repro.apps.avf_leslie_proxy import AVFLeslieSimulation, mixing_layer_state
from repro.apps.phasta_proxy import PhastaSimulation, PhastaSliceRender
from repro.apps.nyx_proxy import NyxSimulation
from repro.apps.nbody import NBodyDataAdaptor, NBodySimulation, run_nbody

__all__ = [
    "AVFLeslieSimulation",
    "mixing_layer_state",
    "PhastaSimulation",
    "PhastaSliceRender",
    "NyxSimulation",
    "NBodySimulation",
    "NBodyDataAdaptor",
    "run_nbody",
]
