"""AVF-LESLIE proxy: compressible finite-volume temporal mixing layer.

AVF-LESLIE "solves the reactive multi-species compressible Navier-Stokes
equations using a finite volume discretization upon a Cartesian grid"
(Sec. 4.2.2); the benchmark problem is a temporally evolving planar mixing
layer (TML): "two fluid layers slide past one another ... subject to
inviscid instabilities and can evolve from largely 2D laminar flow into
fully developed, 3D homogeneous turbulent flow".

The proxy solves the 3-D compressible Euler equations plus a passive scalar
(5+1 conserved variables) with Rusanov (local Lax-Friedrichs) fluxes and a
two-stage Runge-Kutta integrator -- the same data layout, halo pattern, and
per-cell cost structure as the production LES code, minus
chemistry/viscosity.  Domain decomposition is slab (along x) with periodic
halo exchange over the simulated MPI runtime; y is a reflecting (slip)
boundary sandwiching the shear layer; z is periodic.

The SENSEI adaptor exposes the primitive fields and a derived vorticity
magnitude, removing halo (ghost) cells by slicing -- AVF-LESLIE's adaptor
"calculates vorticity magnitude and exposes data array slices (to remove
ghost cells)".
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fields import vorticity_magnitude
from repro.core.adaptors import DataAdaptor
from repro.mpi import MAX
from repro.data import Association, DataArray, ImageData
from repro.util.decomp import Extent, block_decompose_1d
from repro.util.memory import MemoryTracker
from repro.util.timers import TimerRegistry, timed

GAMMA = 1.4
_NG = 1  # halo width (first-order Rusanov stencil)


def mixing_layer_state(
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    mach: float = 0.4,
    delta: float = 0.05,
    perturbation: float = 0.02,
) -> dict[str, np.ndarray]:
    """Primitive initial condition for the temporal mixing layer.

    Two streams at +/- U (``U = mach * c``) separated by tanh shear layers
    of thickness ``delta``, with a sinusoidal perturbation to seed the
    Kelvin-Helmholtz rollup, uniform density/pressure, and a passive scalar
    marking the fast stream.  The profile uses the standard
    periodic-box double layer (shear at y = 0.25 and y = 0.75) so the whole
    domain is triply periodic -- the usual TML-in-a-box setup.
    """
    c0 = 1.0  # sound speed of the uniform state (rho = 1, p = 1/gamma)
    u_stream = mach * c0
    profile = (
        np.tanh(2.0 * (y - 0.25) / delta)
        - np.tanh(2.0 * (y - 0.75) / delta)
        - 1.0
    )
    u = u_stream * profile
    envelope = np.exp(-(((y - 0.25) / (2 * delta)) ** 2)) + np.exp(
        -(((y - 0.75) / (2 * delta)) ** 2)
    )
    v = perturbation * u_stream * np.sin(2.0 * np.pi * x) * envelope
    w = 0.5 * perturbation * u_stream * np.sin(2.0 * np.pi * z + 1.3) * envelope
    rho = np.ones_like(u)
    p = np.full_like(u, 1.0 / GAMMA)
    scalar = 0.5 * (1.0 + profile)
    return {"rho": rho, "u": u, "v": v, "w": w, "p": p, "scalar": scalar}


def _primitive_to_conserved(prim: dict[str, np.ndarray]) -> np.ndarray:
    """Pack primitives into the (6, ni, nj, nk) conserved-state array."""
    rho = prim["rho"]
    u, v, w, p, s = prim["u"], prim["v"], prim["w"], prim["p"], prim["scalar"]
    e = p / (GAMMA - 1.0) + 0.5 * rho * (u * u + v * v + w * w)
    return np.stack([rho, rho * u, rho * v, rho * w, e, rho * s])


def _conserved_to_primitive(q: np.ndarray) -> dict[str, np.ndarray]:
    rho = q[0]
    u = q[1] / rho
    v = q[2] / rho
    w = q[3] / rho
    kinetic = 0.5 * rho * (u * u + v * v + w * w)
    p = (GAMMA - 1.0) * (q[4] - kinetic)
    return {"rho": rho, "u": u, "v": v, "w": w, "p": p, "scalar": q[5] / rho}


def _flux(q: np.ndarray, axis: int) -> np.ndarray:
    """Euler flux of the conserved state along ``axis`` (0=x, 1=y, 2=z)."""
    prim = _conserved_to_primitive(q)
    vel = (prim["u"], prim["v"], prim["w"])[axis]
    p = prim["p"]
    f = q * vel
    f[1 + axis] = f[1 + axis] + p
    f[4] = f[4] + p * vel
    return f


def _max_wavespeed(q: np.ndarray) -> np.ndarray:
    prim = _conserved_to_primitive(q)
    c = np.sqrt(GAMMA * np.maximum(prim["p"], 1e-12) / q[0])
    speed = np.sqrt(prim["u"] ** 2 + prim["v"] ** 2 + prim["w"] ** 2)
    return speed + c


class AVFLeslieSimulation:
    """One rank's share of the TML proxy.

    Parameters
    ----------
    global_dims:
        Global *cell* counts ``(nx, ny, nz)``; the domain is the unit cube.
    cfl:
        Time-step CFL number against the initial max wavespeed.
    """

    FIELDS = ("rho", "u", "v", "w", "p", "scalar", "vorticity")

    def __init__(
        self,
        comm,
        global_dims: tuple[int, int, int] = (32, 32, 16),
        mach: float = 0.4,
        cfl: float = 0.4,
        timers: TimerRegistry | None = None,
        memory: MemoryTracker | None = None,
    ) -> None:
        self.comm = comm
        self.global_dims = global_dims
        self.timers = timers if timers is not None else TimerRegistry()
        self.memory = memory
        nx, ny, nz = global_dims
        if nx < comm.size:
            raise ValueError("need at least one x-plane of cells per rank")
        lo, hi = block_decompose_1d(nx, comm.size, comm.rank)
        self.x_lo, self.x_hi = lo, hi  # owned cell range along x
        self.nx_local = hi - lo
        self.h = (1.0 / nx, 1.0 / ny, 1.0 / nz)
        # Cell-center coordinates of the owned-plus-halo block.
        gx = (np.arange(lo - _NG, hi + _NG) + 0.5) * self.h[0]
        gy = (np.arange(ny) + 0.5) * self.h[1]
        gz = (np.arange(nz) + 0.5) * self.h[2]
        X = gx[:, None, None] * np.ones((1, ny, nz))
        Y = gy[None, :, None] * np.ones((self.nx_local + 2 * _NG, 1, nz))
        Z = gz[None, None, :] * np.ones((self.nx_local + 2 * _NG, ny, 1))
        prim = mixing_layer_state(X, Y, Z, mach=mach)
        self.q = _primitive_to_conserved(prim)  # (6, nxl+2, ny, nz)
        if self.memory is not None:
            self.memory.track_array(self.q, label="avf::state")
        wavespeed = float(_max_wavespeed(self.q).max())
        wavespeed = self.comm.allreduce(wavespeed, MAX)
        self.dt = cfl * min(self.h) / wavespeed
        self.time = 0.0
        self.step = 0

    # -- halo exchange -------------------------------------------------------
    def _exchange_halo(self, q: np.ndarray) -> None:
        """Periodic halo exchange along the slab (x) axis."""
        size, rank = self.comm.size, self.comm.rank
        left = (rank - 1) % size
        right = (rank + 1) % size
        if size == 1:
            q[:, :_NG] = q[:, -2 * _NG : -_NG]
            q[:, -_NG:] = q[:, _NG : 2 * _NG]
            return
        # Send my low owned planes left, receive my high halo from right.
        got_right = self.comm.sendrecv(
            np.ascontiguousarray(q[:, _NG : 2 * _NG]),
            dest=left,
            source=right,
            sendtag=31,
            recvtag=31,
        )
        got_left = self.comm.sendrecv(
            np.ascontiguousarray(q[:, -2 * _NG : -_NG]),
            dest=right,
            source=left,
            sendtag=32,
            recvtag=32,
        )
        q[:, -_NG:] = got_right
        q[:, :_NG] = got_left

    # -- one conservative update ------------------------------------------------
    def _rusanov_rhs(self, q: np.ndarray) -> np.ndarray:
        """- div F via Rusanov fluxes on the owned+halo block.

        Valid on the interior (owned) cells; halo cells receive garbage and
        are refreshed by the next exchange.
        """
        rhs = np.zeros_like(q)
        for axis, h in enumerate(self.h):
            ax = axis + 1  # conserved array axis
            qm = q
            qp = np.roll(q, -1, axis=ax)
            fm = _flux(qm, axis)
            fp = _flux(qp, axis)
            a = np.maximum(_max_wavespeed(qm), _max_wavespeed(qp))
            # Interface flux between cell i and i+1 (stored at i).
            f_iface = 0.5 * (fm + fp) - 0.5 * a * (qp - qm)
            rhs -= (f_iface - np.roll(f_iface, 1, axis=ax)) / h
        return rhs

    def advance(self) -> None:
        """One RK2 step."""
        with timed(self.timers, "avf_timestep"):
            q = self.q
            self._exchange_halo(q)
            k1 = self._rusanov_rhs(q)
            q1 = q + self.dt * k1
            self._exchange_halo(q1)
            k2 = self._rusanov_rhs(q1)
            self.q = q + 0.5 * self.dt * (k1 + k2)
            self.time += self.dt
            self.step += 1

    def run(self, n_steps: int, bridge=None) -> None:
        for _ in range(n_steps):
            self.advance()
            if bridge is not None:
                with timed(self.timers, "avf_insitu::analyze"):
                    if not bridge.execute(self.time, self.step):
                        break

    # -- SENSEI adaptor ------------------------------------------------------------
    def owned_extent(self) -> Extent:
        nx, ny, nz = self.global_dims
        return Extent(self.x_lo, self.x_hi - 1, 0, ny - 1, 0, nz - 1)

    def whole_extent(self) -> Extent:
        nx, ny, nz = self.global_dims
        return Extent(0, nx - 1, 0, ny - 1, 0, nz - 1)

    def make_data_adaptor(self) -> "AVFDataAdaptor":
        return AVFDataAdaptor(self)


class AVFDataAdaptor(DataAdaptor):
    """SENSEI data adaptor for the AVF proxy.

    Exposes the primitive fields and derived vorticity magnitude on the
    *owned* cells only (ghost/halo removal by slicing).  Primitive and
    derived fields are computed lazily per step and cached until
    ``release_data``.
    """

    def __init__(self, sim: AVFLeslieSimulation) -> None:
        super().__init__(sim.comm)
        self.sim = sim
        self._mesh: ImageData | None = None
        self._cache: dict[str, np.ndarray] = {}
        self.vorticity_computations = 0

    def _owned_primitives(self) -> dict[str, np.ndarray]:
        if not self._cache:
            q_owned = self.sim.q[:, _NG:-_NG]
            prim = _conserved_to_primitive(q_owned)
            self._cache = {k: np.ascontiguousarray(v) for k, v in prim.items()}
        return self._cache

    def get_mesh(self, structure_only: bool = False) -> ImageData:
        if self._mesh is None:
            self._mesh = ImageData(
                self.sim.owned_extent(),
                spacing=self.sim.h,
                whole_extent=self.sim.whole_extent(),
            )
        if not structure_only:
            for name in self.sim.FIELDS:
                if not self._mesh.has_array(Association.POINT, name):
                    self._mesh.add_array(Association.POINT, self.get_array(Association.POINT, name))
        return self._mesh

    def get_array(self, association: Association, name: str) -> DataArray:
        if association is not Association.POINT:
            raise KeyError("AVF adaptor exposes point-association data")
        if name == "vorticity":
            prim = self._owned_primitives()
            if "vorticity" not in prim:
                prim["vorticity"] = vorticity_magnitude(
                    prim["u"], prim["v"], prim["w"], self.sim.h
                )
                self.vorticity_computations += 1
            return DataArray.from_numpy(name, prim["vorticity"])
        prim = self._owned_primitives()
        if name not in prim:
            raise KeyError(f"AVF adaptor exposes {list(self.sim.FIELDS)}; not {name!r}")
        return DataArray.from_numpy(name, prim[name])

    def get_number_of_arrays(self, association: Association) -> int:
        return len(self.sim.FIELDS) if association is Association.POINT else 0

    def get_array_name(self, association: Association, index: int) -> str:
        return self.sim.FIELDS[index]

    def release_data(self) -> None:
        self._cache = {}
        self._mesh = None
