"""Leapfrog particle-mesh N-body miniapp over a ragged particle population.

The missing workload family from the ROADMAP: every other app is
grid-shaped, while the paper's Nyx use case is fundamentally
particle-based, with per-rank payload sizes that vary step to step as
particles migrate between domain slabs.  This miniapp makes that shape a
first-class citizen:

- particle state lives in a :class:`~repro.data.ParticleSet` (ids,
  positions, velocities, masses) with a *variable* per-rank count --
  including legitimately zero;
- domain decomposition is by x-slab; migration after each drift moves
  departing particles over the point-to-point reliable transport
  (``comm.send``/``recv``), so outboxes are gatherv-style ragged ndarray
  payloads that ride the shared-memory path when large enough and inline
  pickling when tiny or empty;
- gravity is cloud-in-cell particle-mesh: masses deposit in *fixed-point
  int64* (exact, order-independent sums), one ``allreduce`` replicates
  the global density, and an FFT Poisson solve + CIC gather produce
  per-particle accelerations.  Because the deposit is exact-integer, the
  density grid -- and everything downstream of it, including particle
  trajectories -- is bit-identical across rank counts and SPMD backends.

The injected ``sim.step`` fault site sits *inside* migration, after the
ownership decision but before the first send of the step: a death there
leaves no torn communication, so checkpoint restore plus one re-issued
step replays particle ownership exactly while surviving peers simply
block until the recovered rank's sends arrive.
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.core.adaptors import DataAdaptor
from repro.data import Association, DataArray, ImageData
from repro.data.particles import (
    DEPOSIT_SCALE,
    PARTICLE_ARRAYS,
    ParticleSet,
    cic_deposit_int,
    cic_gather,
)
from repro.mpi import SUM
from repro.util.decomp import Extent, block_decompose_1d
from repro.util.memory import MemoryTracker
from repro.util.timers import TimerRegistry, timed

#: Point-to-point tag for migration payloads (outside the collective range).
TAG_MIGRATE = 77

#: Dyadic quantum for initial conditions: positions, velocities, and masses
#: start as exact multiples of ``1/IC_QUANT``, so conservation tests can
#: assert *exact* (not approximate) mass totals under any summation order.
IC_QUANT = 4096


def _slab_bounds(grid: int, size: int) -> list[tuple[int, int]]:
    return [block_decompose_1d(grid, size, r) for r in range(size)]


class NBodySimulation:
    """Slab-decomposed leapfrog PM gravity over a ragged particle set.

    Initial conditions are generated *globally* on every rank from the
    seed and then filtered to the local slab, so the global population is
    identical for any rank count -- the precondition for the 1/2/4-rank
    equivalence battery.
    """

    def __init__(
        self,
        comm,
        grid: int = 16,
        n_particles: int = 512,
        seed: int = 42,
        dt: float = 0.05,
        gravity: float = 0.5,
        velocity_scale: float = 1.0 / 16,
        timers: TimerRegistry | None = None,
        memory: MemoryTracker | None = None,
    ) -> None:
        if grid < comm.size:
            raise ValueError("need at least one x-plane of cells per rank")
        if n_particles < 1:
            raise ValueError("need at least one particle")
        self.comm = comm
        self.grid = grid
        self.n_global = n_particles
        self.dt = float(dt)
        self.gravity = float(gravity)
        self.timers = timers if timers is not None else TimerRegistry()
        self.memory = memory
        self.bounds = _slab_bounds(grid, comm.size)
        self.x_lo, self.x_hi = self.bounds[comm.rank]
        #: Slab boundaries in position space; owner via searchsorted.
        self._edges = np.array(
            [lo / grid for lo, _ in self.bounds] + [1.0], dtype=np.float64
        )
        self.time = 0.0
        self.step = 0
        #: Cumulative particles sent away / received by this rank.
        self.migrated_out = 0
        self.migrated_in = 0

        with timed(self.timers, "nbody::init"):
            rng = np.random.Generator(np.random.PCG64(seed))
            q = rng.integers(0, IC_QUANT, size=(n_particles, 3))
            pos = q / IC_QUANT
            v = rng.integers(
                -IC_QUANT // 4, IC_QUANT // 4, size=(n_particles, 3)
            )
            vel = (v / IC_QUANT) * float(velocity_scale)
            mass = rng.integers(1, 17, size=n_particles) / 16.0
            ids = np.arange(n_particles, dtype=np.int64)
            mine = self._owner_ranks(pos[:, 0]) == comm.rank
            self.particles = ParticleSet(
                ids[mine],
                np.ascontiguousarray(pos[mine]),
                np.ascontiguousarray(vel[mine]),
                mass[mine],
            )
            #: Exact global mass (dyadic ICs sum exactly in any order).
            self.total_mass_global = float(mass.sum())
            #: Replicated global density of the last completed deposit.
            self.density = np.zeros((grid, grid, grid), dtype=np.float64)
            if self.memory is not None:
                self.memory.track_array(
                    self.particles.positions, label="nbody::particles"
                )
                self.memory.track_array(self.density, label="nbody::density")

    # -- ownership -------------------------------------------------------------
    def _owner_ranks(self, x: np.ndarray) -> np.ndarray:
        """Owning rank per x coordinate (slab decomposition)."""
        return np.searchsorted(self._edges, x, side="right") - 1

    @property
    def n_local(self) -> int:
        return self.particles.num_particles

    def owned_extent(self) -> Extent:
        g = self.grid
        return Extent(self.x_lo, self.x_hi - 1, 0, g - 1, 0, g - 1)

    def whole_extent(self) -> Extent:
        g = self.grid
        return Extent(0, g - 1, 0, g - 1, 0, g - 1)

    # -- fault hook ------------------------------------------------------------
    def _consult_injector(self) -> None:
        inj = getattr(self.comm, "fault_injector", None)
        if inj is None:
            return
        action = inj.draw(
            "sim.step",
            self.comm._draw_rank(),
            step=self.step + 1,
            trace=self.timers.trace,
        )
        if action is None:
            return
        if action.kind == "die":
            from repro.faults.injector import InjectedRankDeath

            raise InjectedRankDeath(self.comm.rank, self.step + 1)
        if action.kind == "stall":
            _time.sleep(float(action.params.get("seconds", 0.002)))

    # -- migration -------------------------------------------------------------
    def _migrate(self) -> None:
        """Exchange particles that drifted out of the local slab.

        Outboxes are computed first (the ownership decision), then the
        fault site is consulted -- *before the first send* -- so an
        injected death leaves zero bytes on the wire for this step: after
        a checkpoint restore, re-running the step regenerates the exact
        same outboxes and the surviving ranks' blocked receives complete
        with the payloads they were always going to get.  Sends are
        buffered, so send-all-then-receive-all cannot deadlock, and a
        rank owning zero particles still sends its (empty) outboxes --
        empty ndarrays stay on the inline pickle path rather than
        allocating 0-byte shm segments.
        """
        p = self.particles
        owner = self._owner_ranks(p.positions[:, 0])
        outboxes = {
            dest: p.select(owner == dest)
            for dest in range(self.comm.size)
            if dest != self.comm.rank
        }
        self._consult_injector()
        if self.comm.size == 1:
            return
        for dest in range(self.comm.size):
            if dest == self.comm.rank:
                continue
            out = outboxes[dest]
            self.comm.send(
                (out.ids, out.positions, out.velocities, out.masses),
                dest,
                tag=TAG_MIGRATE,
            )
        parts = [p.select(owner == self.comm.rank)]
        sent = sum(o.num_particles for o in outboxes.values())
        received = 0
        for src in range(self.comm.size):
            if src == self.comm.rank:
                continue
            ids, pos, vel, mass = self.comm.recv(src, tag=TAG_MIGRATE)
            parts.append(ParticleSet(ids, pos, vel, mass))
            received += parts[-1].num_particles
        self.particles = ParticleSet.concatenate(parts)
        self.migrated_out += sent
        self.migrated_in += received
        rec = self.timers.trace
        if rec is not None:
            rec.count("nbody::migrated_out", sent)
            rec.count("nbody::migrated_in", received)

    # -- gravity ---------------------------------------------------------------
    def _solve_gravity(self) -> np.ndarray:
        """Accelerations at local particle positions from the global grid.

        Deposit is exact int64 (order-independent), the allreduce
        replicates the global grid, and the FFT Poisson solve runs
        identically on every rank -- so ``self.density`` and the returned
        accelerations are bit-identical functions of the global
        population, independent of decomposition.
        """
        p = self.particles
        g = self.grid
        with timed(self.timers, "nbody::deposit"):
            local = cic_deposit_int(p.positions, p.masses, g)
        with timed(self.timers, "nbody::reduce"):
            total = self.comm.allreduce(local, SUM)
        with timed(self.timers, "nbody::solve"):
            rho = total.astype(np.float64) / DEPOSIT_SCALE
            np.copyto(self.density, rho)
            mean = rho.mean()
            delta = rho / mean - 1.0 if mean > 0 else rho
            fk = np.fft.rfftn(delta)
            kx = 2.0 * np.pi * np.fft.fftfreq(g, d=1.0 / g)
            kz = 2.0 * np.pi * np.fft.rfftfreq(g, d=1.0 / g)
            k2 = (
                kx[:, None, None] ** 2
                + kx[None, :, None] ** 2
                + kz[None, None, :] ** 2
            )
            k2[0, 0, 0] = 1.0  # zero mode: potential gauge, forced to 0
            phi_k = -self.gravity * fk / k2
            phi_k[0, 0, 0] = 0.0
            acc = [
                np.fft.irfftn(-1j * k * phi_k, s=(g, g, g), axes=(0, 1, 2))
                for k in (
                    kx[:, None, None],
                    kx[None, :, None],
                    kz[None, None, :],
                )
            ]
        with timed(self.timers, "nbody::gather"):
            return cic_gather(acc, p.positions)

    # -- time integration ------------------------------------------------------
    def advance(self) -> None:
        """One leapfrog step: migrate, deposit+solve, kick, drift.

        Migration runs *first* (and holds the fault site) so that a death
        recovery never has to replay a partially communicated step; see
        :meth:`_migrate`.
        """
        rec = self.timers.trace
        if rec is not None:
            rec.set_step(self.step + 1)
        with timed(self.timers, "nbody::advance"):
            with timed(self.timers, "nbody::migrate"):
                self._migrate()
            a = self._solve_gravity()
            with timed(self.timers, "nbody::kick_drift"):
                p = self.particles
                p.velocities += a * self.dt
                pos = p.positions
                pos += p.velocities * self.dt
                pos %= 1.0
                # float64 wrap pitfall: (x % 1.0) rounds to exactly 1.0
                # for tiny negative x; clamp back into [0, 1).
                pos[pos >= 1.0] = 0.0
            self.time += self.dt
            self.step += 1

    def run(self, n_steps: int, bridge=None) -> None:
        for _ in range(n_steps):
            self.advance()
            if bridge is not None:
                bridge.execute(self.time, self.step)

    # -- checkpoint/restart ----------------------------------------------------
    def snapshot(self) -> dict:
        """Value-semantics checkpoint, including exact particle ownership."""
        return {
            "time": self.time,
            "step": self.step,
            "particles": self.particles.copy(),
            "density": self.density.copy(),
            "migrated_out": self.migrated_out,
            "migrated_in": self.migrated_in,
        }

    def restore(self, snap: dict) -> None:
        self.time = snap["time"]
        self.step = snap["step"]
        self.particles = snap["particles"].copy()
        np.copyto(self.density, snap["density"])
        self.migrated_out = snap["migrated_out"]
        self.migrated_in = snap["migrated_in"]

    def make_data_adaptor(self) -> "NBodyDataAdaptor":
        return NBodyDataAdaptor(self)


class NBodyDataAdaptor(DataAdaptor):
    """SENSEI adaptor over the nbody state: grid mesh + ragged particles.

    Two kinds of data behind one adaptor:

    - the mesh is this rank's x-slab of the (replicated) density grid as
      an :class:`ImageData` -- the shape all four infrastructure
      endpoints (Catalyst slice, libsim session, ADIOS BP/FlexPath,
      GLEAN aggregation) already consume;
    - the ``position`` / ``velocity`` / ``mass`` / ``id`` point arrays
      are zero-copy views of the rank's *ragged* particle population,
      whose length has nothing to do with the mesh and varies per rank
      and per step.  Particle analyses fetch them by name; the
      sanitizer's write guard leases and fingerprints them like any
      other array.
    """

    #: Mesh-attached scalar the infrastructure endpoints render/ship.
    DENSITY = "density"

    def __init__(self, sim: NBodySimulation) -> None:
        super().__init__(sim.comm)
        self.sim = sim
        self._mesh: ImageData | None = None
        self._mapped: dict[tuple[Association, str], DataArray] = {}

    def _density_view(self) -> np.ndarray:
        """Zero-copy x-slab of the replicated global density grid."""
        return self.sim.density[self.sim.x_lo : self.sim.x_hi]

    def get_mesh(self, structure_only: bool = False) -> ImageData:
        if self._mesh is None:
            h = 1.0 / self.sim.grid
            self._mesh = ImageData(
                self.sim.owned_extent(),
                spacing=(h, h, h),
                whole_extent=self.sim.whole_extent(),
            )
        # Consumers attach the arrays they fetch (via get_array, so the
        # sanitizer sees every access); the mesh itself is geometry only.
        return self._mesh

    def get_array(self, association: Association, name: str) -> DataArray:
        if association is not Association.POINT:
            raise KeyError("nbody adaptor exposes point data only")
        key = (association, name)
        cached = self._mapped.get(key)
        if cached is not None:
            return cached
        if name == self.DENSITY:
            arr = DataArray.from_numpy(self.DENSITY, self._density_view())
        elif name in PARTICLE_ARRAYS:
            arr = self.sim.particles.get_array(Association.POINT, name)
        else:
            raise KeyError(f"unknown nbody array {name!r}")
        self._mapped[key] = arr
        rec = getattr(self.comm, "trace_recorder", None)
        if rec is not None:
            if arr.is_zero_copy:
                rec.count("sensei::bytes_zero_copy", arr.nbytes)
            else:
                rec.count("sensei::bytes_copied", arr.nbytes_copied)
        return arr

    def get_number_of_arrays(self, association: Association) -> int:
        if association is Association.POINT:
            return 1 + len(PARTICLE_ARRAYS)
        return 0

    def get_array_name(self, association: Association, index: int) -> str:
        return ((self.DENSITY,) + PARTICLE_ARRAYS)[index]

    def release_data(self) -> None:
        """Drop per-step mappings; migration replaces the particle arrays
        every step, so stale views must not survive into the next one."""
        self._mesh = None
        self._mapped.clear()


#: The four infrastructure endpoints the harness can attach.
INFRASTRUCTURES = ("catalyst", "libsim", "adios", "glean")


def run_nbody(
    out_dir: str,
    ranks: int = 2,
    steps: int = 4,
    grid: int = 16,
    n_particles: int = 400,
    seed: int = 42,
    backend: str | None = None,
    infrastructures: tuple[str, ...] = INFRASTRUCTURES,
    sanitize: bool = True,
    trace=None,
    dt: float = 0.05,
    gravity: float = 0.5,
    linking_length: float = 0.06,
    timeout: float = 120.0,
) -> dict:
    """The nbody miniapp through the bridge with every requested endpoint.

    One SPMD world runs the simulation with the three particle analyses
    plus any of the four infrastructure endpoints, all behind a single
    (optionally sanitized) SENSEI bridge.  Returns a manifest of artifact
    checksums -- density-projection PNG CRCs, the final power spectrum,
    per-step halo counts, and the Catalyst/libsim image CRCs -- which is
    what the cross-backend / cross-rank-count equivalence tests compare,
    and writes it to ``out_dir/manifest.json``.
    """
    import json
    import os
    import zlib

    from repro.analysis.particles import (
        DensityProjectionAnalysis,
        FriendsOfFriendsAnalysis,
        PowerSpectrumAnalysis,
    )
    from repro.analysis.slice_ import SlicePlane
    from repro.core.bridge import Bridge
    from repro.mpi import run_spmd

    unknown = set(infrastructures) - set(INFRASTRUCTURES)
    if unknown:
        raise ValueError(f"unknown infrastructures: {sorted(unknown)}")
    os.makedirs(out_dir, exist_ok=True)
    session_path = os.path.join(out_dir, "libsim_session.json")
    if "libsim" in infrastructures:
        from repro.infrastructure.libsim import write_session_file

        write_session_file(
            session_path,
            [{"type": "pseudocolor_slice", "axis": 2, "index": grid // 2}],
            resolution=(200, 200),
        )

    def program(comm):
        timers = TimerRegistry()
        sim = NBodySimulation(
            comm,
            grid=grid,
            n_particles=n_particles,
            seed=seed,
            dt=dt,
            gravity=gravity,
            timers=timers,
        )
        bridge = Bridge(
            comm, sim.make_data_adaptor(), timers=timers, sanitize=sanitize
        )
        projection = DensityProjectionAnalysis(
            grid=grid, output_dir=out_dir
        )
        bridge.add_analysis(projection)
        bridge.add_analysis(
            PowerSpectrumAnalysis(grid=grid, output_dir=out_dir)
        )
        bridge.add_analysis(
            FriendsOfFriendsAnalysis(
                linking_length=linking_length, output_dir=out_dir
            )
        )
        catalyst = None
        if "catalyst" in infrastructures:
            from repro.infrastructure.catalyst import CatalystAdaptor

            catalyst = CatalystAdaptor(
                plane=SlicePlane(2, grid // 2),
                array=NBodyDataAdaptor.DENSITY,
                resolution=(200, 200),
                output_dir=os.path.join(out_dir, "catalyst"),
            )
            bridge.add_analysis(catalyst)
        libsim = None
        if "libsim" in infrastructures:
            from repro.infrastructure.libsim import LibsimAdaptor

            libsim = LibsimAdaptor(
                session_path,
                array=NBodyDataAdaptor.DENSITY,
                output_dir=os.path.join(out_dir, "libsim"),
            )
            bridge.add_analysis(libsim)
        if "adios" in infrastructures:
            from repro.infrastructure.adios import AdiosBPAdaptor

            bridge.add_analysis(
                AdiosBPAdaptor(
                    os.path.join(out_dir, "steps.bp"),
                    array=NBodyDataAdaptor.DENSITY,
                )
            )
        if "glean" in infrastructures:
            from repro.infrastructure.glean import GleanAdaptor

            bridge.add_analysis(
                GleanAdaptor(
                    os.path.join(out_dir, "glean"),
                    array=NBodyDataAdaptor.DENSITY,
                    ranks_per_aggregator=2,
                )
            )
        bridge.initialize()
        sim.run(steps, bridge)
        results = bridge.finalize()
        out = {
            "rank": comm.rank,
            "n_local": sim.n_local,
            "migrated_out": sim.migrated_out,
            "migrated_in": sim.migrated_in,
            "results": results,
        }
        if catalyst is not None and catalyst.last_png is not None:
            out["catalyst_png_crc"] = zlib.crc32(catalyst.last_png)
        if libsim is not None and getattr(libsim, "last_png", None) is not None:
            out["libsim_png_crc"] = zlib.crc32(libsim.last_png)
        return out

    per_rank = run_spmd(
        ranks, program, backend=backend, trace=trace, timeout=timeout
    )
    root = per_rank[0]
    manifest = {
        "ranks": ranks,
        "steps": steps,
        "grid": grid,
        "n_particles": n_particles,
        "seed": seed,
        "infrastructures": sorted(infrastructures),
        "density_png_crcs": root["results"]["DensityProjectionAnalysis"][
            "png_crcs"
        ],
        "power_spectrum": root["results"]["PowerSpectrumAnalysis"]["power"][-1],
        "halo_counts": root["results"]["FriendsOfFriendsAnalysis"][
            "halo_counts"
        ],
        "halo_sizes": root["results"]["FriendsOfFriendsAnalysis"]["halo_sizes"][
            -1
        ],
        "migrated": sum(r["migrated_out"] for r in per_rank),
        "final_counts": [r["n_local"] for r in per_rank],
    }
    for key in ("catalyst_png_crc", "libsim_png_crc"):
        if key in root:
            manifest[key] = root[key]
    with open(
        os.path.join(out_dir, "manifest.json"), "w", encoding="utf-8"
    ) as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    return manifest
