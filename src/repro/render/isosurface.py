"""Isosurface extraction via marching tetrahedra.

The AVF-LESLIE visualization renders "3 isosurfaces and 3 slice planes of
vorticity magnitude" (Sec. 4.2.2).  Marching tetrahedra (each hexahedral
cell split into 6 tetrahedra) gives a watertight triangulation with only
3 case families per tet, which vectorizes cleanly over all cells at once --
no per-cell Python loop.
"""

from __future__ import annotations

import numpy as np

# The 6-tetrahedra decomposition of a unit cube.  Corner ids use the
# (i, j, k)-bit convention: corner = i + 2j + 4k.
_CUBE_TETS = np.array(
    [
        [0, 1, 3, 7],
        [0, 1, 7, 5],
        [0, 5, 7, 4],
        [0, 3, 2, 7],
        [0, 2, 6, 7],
        [0, 6, 4, 7],
    ],
    dtype=np.int64,
)

_CORNER_OFFSETS = np.array(
    [[i, j, k] for k in (0, 1) for j in (0, 1) for i in (0, 1)], dtype=np.int64
)
# _CORNER_OFFSETS is ordered k-major: corner = i + 2j + 4k indexes into it.
_CORNER_OFFSETS = np.array(
    [[(c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1] for c in range(8)], dtype=np.int64
)

# For each of the 16 sign patterns of a tet's 4 vertices (bit v set when
# value[v] > iso), the triangles to emit as pairs of vertex indices whose
# connecting edge crosses the isosurface.  One-vs-three splits emit one
# triangle; two-vs-two splits emit two (a quad).
_TET_TRIANGLES: dict[int, list[list[tuple[int, int]]]] = {
    0b0000: [],
    0b1111: [],
    0b0001: [[(0, 1), (0, 2), (0, 3)]],
    0b1110: [[(0, 1), (0, 3), (0, 2)]],
    0b0010: [[(1, 0), (1, 3), (1, 2)]],
    0b1101: [[(1, 0), (1, 2), (1, 3)]],
    0b0100: [[(2, 0), (2, 1), (2, 3)]],
    0b1011: [[(2, 0), (2, 3), (2, 1)]],
    0b1000: [[(3, 0), (3, 2), (3, 1)]],
    0b0111: [[(3, 0), (3, 1), (3, 2)]],
    0b0011: [[(0, 2), (1, 2), (1, 3)], [(0, 2), (1, 3), (0, 3)]],
    0b1100: [[(0, 2), (1, 3), (1, 2)], [(0, 2), (0, 3), (1, 3)]],
    0b0101: [[(0, 1), (2, 3), (2, 1)], [(0, 1), (0, 3), (2, 3)]],
    0b1010: [[(0, 1), (2, 1), (2, 3)], [(0, 1), (2, 3), (0, 3)]],
    0b0110: [[(1, 0), (2, 0), (2, 3)], [(1, 0), (2, 3), (1, 3)]],
    0b1001: [[(1, 0), (2, 3), (2, 0)], [(1, 0), (1, 3), (2, 3)]],
}


def marching_tetrahedra(
    field: np.ndarray,
    iso: float,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> np.ndarray:
    """Extract the ``field == iso`` surface from a 3-D point-sampled field.

    Returns triangles as an ``(ntri, 3, 3)`` float array of world-space
    vertices.  The surface is empty when ``iso`` is outside the field's
    range.
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 3 or min(f.shape) < 2:
        raise ValueError("field must be 3-D with at least 2 points per axis")
    ni, nj, nk = f.shape
    # Corner values for every cell: shape (8, ncells).
    ci, cj, ck = np.meshgrid(
        np.arange(ni - 1), np.arange(nj - 1), np.arange(nk - 1), indexing="ij"
    )
    ci = ci.reshape(-1)
    cj = cj.reshape(-1)
    ck = ck.reshape(-1)
    corner_vals = np.empty((8, ci.size), dtype=np.float64)
    corner_pos = np.empty((8, ci.size, 3), dtype=np.float64)
    for c in range(8):
        oi, oj, ok = _CORNER_OFFSETS[c]
        corner_vals[c] = f[ci + oi, cj + oj, ck + ok]
        corner_pos[c, :, 0] = origin[0] + spacing[0] * (ci + oi)
        corner_pos[c, :, 1] = origin[1] + spacing[1] * (cj + oj)
        corner_pos[c, :, 2] = origin[2] + spacing[2] * (ck + ok)

    # Quick cull: only cells whose value range brackets iso can contribute.
    cmin = corner_vals.min(axis=0)
    cmax = corner_vals.max(axis=0)
    live = (cmin <= iso) & (cmax >= iso) & (cmin < cmax)
    if not live.any():
        return np.empty((0, 3, 3))
    corner_vals = corner_vals[:, live]
    corner_pos = corner_pos[:, live, :]

    triangles: list[np.ndarray] = []
    for tet in _CUBE_TETS:
        vals = corner_vals[tet]  # (4, n)
        pos = corner_pos[tet]  # (4, n, 3)
        code = (
            (vals[0] > iso).astype(np.int64)
            | ((vals[1] > iso).astype(np.int64) << 1)
            | ((vals[2] > iso).astype(np.int64) << 2)
            | ((vals[3] > iso).astype(np.int64) << 3)
        )
        for pattern, tris in _TET_TRIANGLES.items():
            if not tris:
                continue
            sel = np.nonzero(code == pattern)[0]
            if sel.size == 0:
                continue
            for tri in tris:
                verts = np.empty((sel.size, 3, 3))
                for e, (a, b) in enumerate(tri):
                    va = vals[a][sel]
                    vb = vals[b][sel]
                    denom = vb - va
                    t = np.where(denom != 0.0, (iso - va) / np.where(denom == 0, 1, denom), 0.5)
                    t = np.clip(t, 0.0, 1.0)
                    verts[:, e, :] = (
                        pos[a][sel] + t[:, None] * (pos[b][sel] - pos[a][sel])
                    )
                triangles.append(verts)
    if not triangles:
        return np.empty((0, 3, 3))
    return np.concatenate(triangles, axis=0)


def isosurface_points(
    field: np.ndarray,
    iso: float,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> np.ndarray:
    """Triangle centroids of the isosurface -- the point cloud the splat
    renderer consumes."""
    tris = marching_tetrahedra(field, iso, origin=origin, spacing=spacing)
    if tris.shape[0] == 0:
        return np.empty((0, 3))
    return tris.mean(axis=1)
