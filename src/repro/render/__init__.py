"""Software rendering substrate.

The Catalyst-slice and Libsim-slice configurations render pseudocolored
slice geometry, composite partial images across ranks, and write a PNG on
rank 0 (Secs. 4.1.3, 4.2.1).  This package provides those stages without
OSMesa/VTK:

- :mod:`colormap` -- scalar-to-RGB lookup tables;
- :mod:`rasterize` -- orthographic rasterization of slice data and point
  splats into RGBA framebuffers;
- :mod:`compositing` -- parallel image compositing (binary-swap and
  direct-send, the two algorithm families behind Catalyst's and Libsim's
  different scaling in Fig. 6);
- :mod:`png` -- a real PNG encoder/decoder on stdlib zlib.  PNG encoding is
  serial on rank 0 in the paper's runs and its zlib compression is the
  Table 2 bottleneck, so this is a measured code path, not a detail;
- :mod:`isosurface` -- marching-tetrahedra isosurface extraction for the
  AVF-LESLIE visualization (3 isosurfaces + 3 slice planes, Sec. 4.2.2).
"""

from repro.render.colormap import Colormap, COOL_WARM, GRAY, VIRIDIS
from repro.render.rasterize import (
    RenderedImage,
    rasterize_slice,
    splat_points,
    blank_image,
)
from repro.render.compositing import (
    FramebufferPool,
    binary_swap,
    composite_over,
    composite_over_into,
    direct_send,
)
from repro.render.png import encode_png, decode_png, resolve_codec
from repro.render.isosurface import marching_tetrahedra

__all__ = [
    "Colormap",
    "VIRIDIS",
    "COOL_WARM",
    "GRAY",
    "RenderedImage",
    "blank_image",
    "rasterize_slice",
    "splat_points",
    "binary_swap",
    "direct_send",
    "composite_over",
    "composite_over_into",
    "FramebufferPool",
    "encode_png",
    "decode_png",
    "resolve_codec",
    "marching_tetrahedra",
]
