"""Orthographic rasterization of slice data and point splats.

Rendering in the paper's slice configurations is "a two-stage process":
ranks intersecting the slice plane rasterize their geometry locally, then a
compositing stage (see :mod:`repro.render.compositing`) merges the partial
images.  :class:`RenderedImage` is the unit those stages exchange: an RGB
framebuffer plus an alpha/coverage mask and an optional depth buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.colormap import Colormap, VIRIDIS


@dataclass
class RenderedImage:
    """A (partial) framebuffer: RGB, coverage alpha, optional depth.

    ``rgb`` is (h, w, 3) uint8; ``alpha`` is (h, w) uint8 where 255 marks a
    rendered pixel and 0 background; ``depth`` (float32, +inf = empty) is
    present when geometry carries view depth.
    """

    rgb: np.ndarray
    alpha: np.ndarray
    depth: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.rgb.ndim != 3 or self.rgb.shape[2] != 3 or self.rgb.dtype != np.uint8:
            raise ValueError("rgb must be (h, w, 3) uint8")
        if self.alpha.shape != self.rgb.shape[:2] or self.alpha.dtype != np.uint8:
            raise ValueError("alpha must be (h, w) uint8")
        if self.depth is not None and self.depth.shape != self.alpha.shape:
            raise ValueError("depth must match the framebuffer shape")

    @property
    def shape(self) -> tuple[int, int]:
        return self.alpha.shape  # type: ignore[return-value]

    @property
    def nbytes(self) -> int:
        n = self.rgb.nbytes + self.alpha.nbytes
        if self.depth is not None:
            n += self.depth.nbytes
        return n

    def coverage(self) -> float:
        """Fraction of pixels rendered."""
        return float((self.alpha > 0).mean())

    def copy(self) -> "RenderedImage":
        return RenderedImage(
            self.rgb.copy(),
            self.alpha.copy(),
            None if self.depth is None else self.depth.copy(),
        )


def blank_image(width: int, height: int, with_depth: bool = False) -> RenderedImage:
    """An empty framebuffer of the given resolution."""
    if width <= 0 or height <= 0:
        raise ValueError("image dimensions must be positive")
    depth = np.full((height, width), np.inf, dtype=np.float32) if with_depth else None
    return RenderedImage(
        np.zeros((height, width, 3), dtype=np.uint8),
        np.zeros((height, width), dtype=np.uint8),
        depth,
    )


def rasterize_slice(
    values: np.ndarray,
    extent2d: tuple[int, int, int, int],
    global_extent2d: tuple[int, int, int, int],
    width: int,
    height: int,
    colormap: Colormap = VIRIDIS,
    vmin: float | None = None,
    vmax: float | None = None,
) -> RenderedImage:
    """Rasterize one rank's slice fragment into its region of the viewport.

    The global slice plane ``global_extent2d = (gu0, gu1, gv0, gv1)`` maps
    onto the full ``width x height`` viewport.  Each pixel is owned by the
    grid node nearest its center and sampled from that node
    (nearest-neighbor): ownership is a pure function of the pixel position,
    so a decomposed render composites to *exactly* the image a single rank
    would produce -- the invariant the compositing tests rely on.  Pixels
    whose nearest node lies outside this fragment remain background (alpha
    0); they belong to other ranks.
    """
    u0, u1, v0, v1 = extent2d
    gu0, gu1, gv0, gv1 = global_extent2d
    if values.shape != (u1 - u0 + 1, v1 - v0 + 1):
        raise ValueError("values shape does not match extent2d")
    img = blank_image(width, height)
    gnu = gu1 - gu0
    gnv = gv1 - gv0
    if gnu <= 0 or gnv <= 0:
        return img
    # Pixel centers in global index space.  u maps to x (width), v to y.
    px = (np.arange(width) + 0.5) / width * gnu + gu0
    py = (np.arange(height) + 0.5) / height * gnv + gv0
    # Nearest grid node owns the pixel (floor(x + 0.5): ties break upward,
    # identically on every rank).
    nx = np.floor(px + 0.5).astype(np.int64)
    ny = np.floor(py + 0.5).astype(np.int64)
    in_x = (nx >= u0) & (nx <= u1)
    in_y = (ny >= v0) & (ny <= v1)
    if not in_x.any() or not in_y.any():
        return img
    xs = nx[in_x] - u0
    ys = ny[in_y] - v0
    sampled = values[xs[None, :], ys[:, None]]
    rgb = colormap.map(sampled, vmin=vmin, vmax=vmax)
    rows = np.nonzero(in_y)[0]
    cols = np.nonzero(in_x)[0]
    img.rgb[np.ix_(rows, cols)] = rgb
    img.alpha[np.ix_(rows, cols)] = 255
    return img


def splat_points(
    points_xy: np.ndarray,
    depths: np.ndarray,
    colors: np.ndarray,
    width: int,
    height: int,
    bounds: tuple[float, float, float, float],
    radius: int = 1,
) -> RenderedImage:
    """Depth-tested point-sprite rendering (isosurface point clouds).

    ``points_xy`` is (n, 2) in world units inside ``bounds = (x0, x1, y0,
    y1)``; nearer (smaller depth) points win per pixel.  ``radius`` grows
    each splat into a square of ``(2r+1)^2`` pixels so sparse clouds read as
    surfaces.
    """
    img = blank_image(width, height, with_depth=True)
    pts = np.asarray(points_xy, dtype=np.float64)
    if pts.size == 0:
        return img
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("points_xy must be (n, 2)")
    x0, x1, y0, y1 = bounds
    if x1 <= x0 or y1 <= y0:
        raise ValueError("bounds must be non-degenerate")
    cx = ((pts[:, 0] - x0) / (x1 - x0) * (width - 1)).round().astype(np.int64)
    cy = ((pts[:, 1] - y0) / (y1 - y0) * (height - 1)).round().astype(np.int64)
    keep = (cx >= 0) & (cx < width) & (cy >= 0) & (cy < height)
    cx, cy = cx[keep], cy[keep]
    d = np.asarray(depths, dtype=np.float32)[keep]
    cols = np.asarray(colors, dtype=np.uint8)[keep]
    # Far-to-near painter ordering: sorting by descending depth makes the
    # final write at each pixel the nearest point.
    order = np.argsort(-d, kind="stable")
    cx, cy, d, cols = cx[order], cy[order], d[order], cols[order]
    for dx in range(-radius, radius + 1):
        for dy in range(-radius, radius + 1):
            px = cx + dx
            py = cy + dy
            # Mask splat pixels that fall outside the viewport; clamping
            # them instead would re-write border pixels once per
            # out-of-bounds offset and smear sprite edges along the frame.
            ok = (px >= 0) & (px < width) & (py >= 0) & (py < height)
            img.rgb[py[ok], px[ok]] = cols[ok]
            img.alpha[py[ok], px[ok]] = 255
            img.depth[py[ok], px[ok]] = d[ok]
    return img
