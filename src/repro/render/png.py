"""PNG encode/decode on stdlib ``zlib``.

The paper traces PHASTA's surprising per-step in situ cost to "the ZLIB
compression time in generating the PNG file ... a serial process only
computed on rank 0" (Sec. 4.2.1, Table 2 discussion: 4.03 s -> 0.518 s per
step when skipping compression).  A real encoder keeps that effect
measurable here: ``compression_level=0`` reproduces the "skip compression"
ablation, and the opt-in ``workers`` parameter makes the *parallel-encoder*
ablation a first-class measurable config: pigz-style row-band chunking,
each band raw-deflated in parallel, stitched into a single valid zlib
stream in one IDAT chunk.  Each band's compressor is primed (``zdict``)
with the 32 KiB of raw data preceding the band, so back-references across
band boundaries resolve exactly as they would in a serial stream and any
standard inflater decodes the result.

Two parallel codecs share that banding, selected by ``codec``:

- ``"thread"``: bands compress on a :class:`ThreadPoolExecutor`.  zlib
  releases the GIL *inside* ``compress()``, but the per-band Python
  bookkeeping (slicing, dict priming, stitching) still serializes --
  which is exactly the red ``png_parallel_deflate`` benchmark.
- ``"process"``: bands compress on a persistent
  :class:`ProcessPoolExecutor` codec pool, fully off the GIL.  The raw
  scanline buffer ships to the workers through a named shared-memory
  segment (the same shm layer the process SPMD backend uses) so no band
  bytes are pickled; each worker attaches, deflates its zdict-primed
  band, and returns only the compressed bytes.  The pool persists across
  encodes (fork/spawn cost is amortized; a forked child never reuses the
  parent's pool), while the staging segment is created and unlinked per
  encode so nothing survives in ``/dev/shm``.
- ``"auto"`` (default): ``"process"`` for raw buffers of at least
  :data:`_PROCESS_MIN_BYTES` on hosts with at least
  :data:`_PROCESS_MIN_CPUS` usable CPUs, ``"thread"`` otherwise -- small
  images never pay process-pool dispatch, and core-starved hosts (where
  the pool measured *slower* than serial) never fork a pool at all.  The
  resolution rule is exposed as :func:`resolve_codec`.

Band compression is deterministic, so both codecs produce *byte-identical*
streams for the same (image, level, workers, chunk_rows); the serial
(``workers=0``) single-stream output is byte-different but decodes to the
identical pixels.

Supported: 8-bit grayscale (color type 0) and 8-bit RGB (color type 2),
which covers every image the infrastructures write.  The decoder implements
all five PNG row filters so it can read PNGs produced by other tools in
these formats.
"""

from __future__ import annotations

import itertools
import os
import struct
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.mpi.shm import segment_name

_SIGNATURE = b"\x89PNG\r\n\x1a\n"

#: Raw-deflate window size; how far back a chunk's compressor may reference.
_WINDOW = 32768


class PNGError(ValueError):
    """Malformed or unsupported PNG data."""


def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def _raw_scanlines(a: np.ndarray, h: int, stride: int) -> np.ndarray:
    """``(h, 1 + stride)`` uint8 scanline buffer: filter byte 0 + row bytes.

    Built in one vectorized shot rather than a per-row Python loop; the
    bytes are identical either way, so serial-encoder output is unchanged.
    """
    buf = np.zeros((h, stride + 1), dtype=np.uint8)
    buf[:, 1:] = a.reshape(h, stride)
    return buf


def _zlib_header(level: int) -> bytes:
    """A standard 2-byte zlib header (CMF/FLG) advertising ``level``.

    Inflaters ignore the FLEVEL hint; the check bits must make
    ``CMF*256 + FLG`` divisible by 31 (RFC 1950).
    """
    cmf = 0x78  # deflate, 32K window
    if level >= 7:
        flevel = 3
    elif level == 6:
        flevel = 2
    elif level >= 2:
        flevel = 1
    else:
        flevel = 0
    flg = flevel << 6
    flg += (31 - (cmf * 256 + flg) % 31) % 31
    return bytes((cmf, flg))


#: ``codec="auto"`` dispatches to the process pool only for raw scanline
#: buffers at least this large; below it, pool dispatch costs more than the
#: GIL contention it removes.
_PROCESS_MIN_BYTES = 1 << 20

#: ``codec="auto"`` also requires at least this many usable CPUs before
#: choosing the process pool: with a single core there is no parallelism to
#: buy, only fork/dispatch/shm overhead (the ``codec_pool`` benchmark
#: measured 0.90x vs serial on a 1-CPU host).
_PROCESS_MIN_CPUS = 2

_CODECS = ("auto", "thread", "process", "serial")


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_codec(
    codec: str, workers: int | None, raw_bytes: int, cpus: int | None = None
) -> str:
    """Resolve ``codec="auto"`` to the executor ``encode_png`` will use.

    The process pool is chosen only when all of: ``workers > 1``, the raw
    scanline buffer is at least :data:`_PROCESS_MIN_BYTES`, and the host has
    at least :data:`_PROCESS_MIN_CPUS` usable CPUs (``cpus`` overrides the
    detected count, for tests and planners).  Everything else resolves to
    the thread codec; non-"auto" codecs pass through unchanged.
    """
    if codec != "auto":
        return codec
    if workers and workers > 1 and raw_bytes >= _PROCESS_MIN_BYTES:
        if (cpus if cpus is not None else _usable_cpus()) >= _PROCESS_MIN_CPUS:
            return "process"
    return "thread"

#: The persistent codec pool (created on first process-codec encode).  A
#: forked child inherits the parent's pool object but not its workers'
#: queues in a usable state, so the pid stamp invalidates it on fork.
_POOL: "ProcessPoolExecutor | None" = None
_POOL_WORKERS = 0
_POOL_PID = 0

#: Staging segments are named per encode and unlinked before the encode
#: returns; the counter only guarantees uniqueness within this process.
_STAGE_COUNTER = itertools.count()


def _codec_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent process codec pool, (re)built as needed.

    Rebuilds when this is a forked child of the pool's creator (the
    inherited executor is unusable and its processes belong to the parent)
    or when more workers are requested than the pool holds.  A larger
    existing pool is reused as-is -- band bounds, not pool size, determine
    the output bytes, so the stream stays deterministic.
    """
    global _POOL, _POOL_WORKERS, _POOL_PID
    if _POOL is not None and (_POOL_PID != os.getpid() or _POOL_WORKERS < workers):
        if _POOL_PID == os.getpid():
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
    if _POOL is None:
        # One shared resource tracker *before* the pool forks, for the same
        # reason the process SPMD backend does it: per-child trackers never
        # observe the parent's unlink and warn about clean consumes.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
        _POOL_PID = os.getpid()
    return _POOL


def _compress_band_shm(name: str, b0: int, b1: int, level: int, last: bool) -> bytes:
    """Codec-pool worker: deflate one zdict-primed band out of a segment.

    Runs in a pool process; attaches the staging segment by name, reads
    only its band plus the 32 KiB priming window, and returns the
    compressed bytes.  Identical inputs to the thread codec's band closure,
    so identical output bytes.
    """
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(name=name)
    try:
        lo = max(0, b0 - _WINDOW)
        blob = bytes(seg.buf[lo:b1])
        split = b0 - lo
        co = zlib.compressobj(
            level, zlib.DEFLATED, -15, 9, zlib.Z_DEFAULT_STRATEGY, blob[:split]
        )
        body = co.compress(blob[split:])
        return body + co.flush(zlib.Z_FINISH if last else zlib.Z_SYNC_FLUSH)
    finally:
        seg.close()


def _deflate_bands_process(
    raw: bytes, bounds: list[tuple[int, int]], level: int, workers: int
) -> list[bytes]:
    """Compress all bands on the codec pool; raw bytes ride shared memory.

    The staging segment exists only for the duration of this call: created,
    filled, read by the workers, and unlinked before returning -- nothing
    survives in ``/dev/shm``.
    """
    from multiprocessing import resource_tracker, shared_memory

    resource_tracker.ensure_running()
    pool = _codec_pool(workers)
    name = segment_name(f"png{os.getpid():x}", 0, next(_STAGE_COUNTER))
    seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, len(raw)))
    try:
        seg.buf[: len(raw)] = raw
        last = len(bounds) - 1
        futures = [
            pool.submit(_compress_band_shm, name, b0, b1, level, i == last)
            for i, (b0, b1) in enumerate(bounds)
        ]
        return [f.result() for f in futures]
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - external sweep raced
            pass


def _deflate_parallel(
    raw: bytes,
    row_bytes: int,
    level: int,
    workers: int,
    chunk_rows: int | None,
    codec: str = "thread",
) -> bytes:
    """pigz-style chunked deflate of ``raw`` into one valid zlib stream.

    ``raw`` is split at scanline boundaries into row bands; each band is
    compressed as an independent *raw* deflate member and terminated with
    ``Z_SYNC_FLUSH`` (byte-aligned, no final block), except the last band
    which finishes the stream.  Because band ``i``'s compressor is primed
    with the 32 KiB of raw input immediately preceding it, its
    back-references point at bytes the inflater has already reconstructed
    -- so the concatenation, wrapped with a zlib header and the adler32 of
    the whole raw buffer, inflates to exactly ``raw``.

    ``codec`` picks where the bands compress (see the module docstring);
    both executors produce byte-identical streams.  The process codec
    falls back to threads if the pool or the staging segment cannot be
    created (e.g. shared memory exhausted).
    """
    n_rows = len(raw) // row_bytes
    if chunk_rows is None:
        # ~4 bands per worker for load balance, pigz-style.
        chunk_rows = max(1, -(-n_rows // (workers * 4)))
    if chunk_rows <= 0:
        raise PNGError("chunk_rows must be positive")
    starts = [r * row_bytes for r in range(0, n_rows, chunk_rows)]
    bounds = list(zip(starts, starts[1:] + [len(raw)]))
    last = len(bounds) - 1
    parts: "list[bytes] | None" = None
    if codec == "process":
        try:
            parts = _deflate_bands_process(raw, bounds, level, workers)
        except OSError:  # pragma: no cover - shm/pool exhausted
            parts = None
    if parts is None:

        def compress(item: tuple[int, tuple[int, int]]) -> bytes:
            i, (b0, b1) = item
            zdict = raw[max(0, b0 - _WINDOW) : b0]
            co = zlib.compressobj(
                level, zlib.DEFLATED, -15, 9, zlib.Z_DEFAULT_STRATEGY, zdict
            )
            body = co.compress(raw[b0:b1])
            return body + co.flush(
                zlib.Z_FINISH if i == last else zlib.Z_SYNC_FLUSH
            )

        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(compress, enumerate(bounds)))
    adler = zlib.adler32(raw) & 0xFFFFFFFF
    return _zlib_header(level) + b"".join(parts) + struct.pack(">I", adler)


def encode_png(
    image: np.ndarray,
    compression_level: int = 6,
    workers: int | None = None,
    chunk_rows: int | None = None,
    codec: str = "auto",
) -> bytes:
    """Encode ``(h, w)`` grayscale or ``(h, w, 3)`` RGB uint8 to PNG bytes.

    ``compression_level`` maps straight to zlib (0 = store, 9 = max); the
    Table 2 ablation sweeps it.  ``workers=None``/``0`` is the paper's
    serial rank-0 encoder; ``workers >= 1`` opts into the parallel chunked
    deflate (``chunk_rows`` rows per band, default ~4 bands per worker),
    with ``codec`` selecting the executor: ``"thread"``, ``"process"``
    (persistent codec pool, bands via shared memory), ``"serial"`` (ignore
    ``workers``), or ``"auto"`` -- resolved by :func:`resolve_codec`: the
    process pool for raw buffers of at least :data:`_PROCESS_MIN_BYTES`
    when ``workers > 1`` and the host has enough usable CPUs, threads
    otherwise.
    All paths decode to identical pixels; the two parallel codecs produce
    byte-identical files.
    """
    a = np.asarray(image)
    if a.dtype != np.uint8:
        raise PNGError(f"image must be uint8, got {a.dtype}")
    if a.ndim == 2:
        color_type = 0
        channels = 1
    elif a.ndim == 3 and a.shape[2] == 3:
        color_type = 2
        channels = 3
    else:
        raise PNGError(f"unsupported image shape {a.shape}")
    if not 0 <= compression_level <= 9:
        raise PNGError("compression_level must be in 0..9")
    if workers is not None and workers < 0:
        raise PNGError("workers must be non-negative")
    if codec not in _CODECS:
        raise PNGError(f"codec must be one of {_CODECS}, got {codec!r}")
    h, w = a.shape[:2]
    if h == 0 or w == 0:
        raise PNGError("image must be non-empty")
    ihdr = struct.pack(">IIBBBBB", w, h, 8, color_type, 0, 0, 0)
    # Raw scanlines, each prefixed with filter type 0 (None).
    raw = _raw_scanlines(a, h, w * channels).tobytes()
    if workers and codec != "serial":
        codec = resolve_codec(codec, workers, len(raw))
        idat = _deflate_parallel(
            raw, w * channels + 1, compression_level, workers, chunk_rows, codec
        )
    else:
        idat = zlib.compress(raw, compression_level)
    return (
        _SIGNATURE
        + _chunk(b"IHDR", ihdr)
        + _chunk(b"IDAT", idat)
        + _chunk(b"IEND", b"")
    )


def _paeth(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    p = a.astype(np.int32) + b.astype(np.int32) - c.astype(np.int32)
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    out = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return out.astype(np.uint8)


def _defilter(
    filtered: np.ndarray, h: int, stride: int, bpp: int
) -> np.ndarray:
    """Undo PNG row filters; ``filtered`` is (h, 1 + stride) uint8."""
    out = np.zeros((h, stride), dtype=np.uint8)
    for r in range(h):
        ftype = int(filtered[r, 0])
        line = filtered[r, 1:].astype(np.int32)
        prev = out[r - 1].astype(np.int32) if r > 0 else np.zeros(stride, np.int32)
        cur = np.zeros(stride, dtype=np.int32)
        if ftype == 0:  # None
            cur = line
        elif ftype == 2:  # Up
            cur = (line + prev) & 0xFF
        elif ftype in (1, 3, 4):  # Sub / Average / Paeth need left neighbors
            for x in range(stride):
                left = cur[x - bpp] if x >= bpp else 0
                up = prev[x]
                ul = prev[x - bpp] if x >= bpp else 0
                if ftype == 1:
                    cur[x] = (line[x] + left) & 0xFF
                elif ftype == 3:
                    cur[x] = (line[x] + ((left + up) // 2)) & 0xFF
                else:
                    pa = abs(up - ul)
                    pb = abs(left - ul)
                    pc = abs(left + up - 2 * ul)
                    pred = left if pa <= pb and pa <= pc else (up if pb <= pc else ul)
                    cur[x] = (line[x] + pred) & 0xFF
        else:
            raise PNGError(f"unknown filter type {ftype}")
        out[r] = cur.astype(np.uint8)
    return out


def decode_png(data: bytes) -> np.ndarray:
    """Decode PNG bytes to a ``(h, w)`` or ``(h, w, 3)`` uint8 array."""
    if data[:8] != _SIGNATURE:
        raise PNGError("not a PNG: bad signature")
    pos = 8
    width = height = None
    color_type = None
    idat = bytearray()
    while pos < len(data):
        if pos + 8 > len(data):
            raise PNGError("truncated chunk header")
        (length,) = struct.unpack(">I", data[pos : pos + 4])
        tag = data[pos + 4 : pos + 8]
        payload = data[pos + 8 : pos + 8 + length]
        if len(payload) != length:
            raise PNGError("truncated chunk payload")
        crc = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])[0]
        if crc != (zlib.crc32(tag + payload) & 0xFFFFFFFF):
            raise PNGError(f"bad CRC in {tag!r} chunk")
        if tag == b"IHDR":
            width, height, depth, color_type, comp, filt, interlace = struct.unpack(
                ">IIBBBBB", payload
            )
            if depth != 8:
                raise PNGError(f"unsupported bit depth {depth}")
            if color_type not in (0, 2):
                raise PNGError(f"unsupported color type {color_type}")
            if comp != 0 or filt != 0:
                raise PNGError("unsupported compression/filter method")
            if interlace != 0:
                raise PNGError("interlaced PNGs not supported")
        elif tag == b"IDAT":
            idat += payload
        elif tag == b"IEND":
            break
        pos += 12 + length
    if width is None or color_type is None:
        raise PNGError("missing IHDR")
    channels = 1 if color_type == 0 else 3
    stride = width * channels
    raw = zlib.decompress(bytes(idat))
    if len(raw) != height * (stride + 1):
        raise PNGError("decompressed size mismatch")
    filtered = np.frombuffer(raw, dtype=np.uint8).reshape(height, stride + 1)
    out = _defilter(filtered, height, stride, channels)
    if channels == 1:
        return out.reshape(height, width)
    return out.reshape(height, width, 3)


def write_png(
    path,
    image: np.ndarray,
    compression_level: int = 6,
    workers: int | None = None,
    codec: str = "auto",
) -> int:
    """Encode and write; returns the encoded byte count."""
    blob = encode_png(image, compression_level, workers=workers, codec=codec)
    with open(path, "wb") as fh:
        fh.write(blob)
    return len(blob)
