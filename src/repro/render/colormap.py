"""Scalar-to-color lookup tables for pseudocolor ("heatmap") rendering."""

from __future__ import annotations

import numpy as np


class Colormap:
    """Piecewise-linear RGB colormap over [0, 1].

    Built from control points; :meth:`map` normalizes scalars into the
    (vmin, vmax) range and interpolates a 256-entry LUT, vectorized over the
    whole field.
    """

    def __init__(self, name: str, control_points: list[tuple[float, tuple[int, int, int]]]):
        if len(control_points) < 2:
            raise ValueError("colormap needs at least two control points")
        pts = sorted(control_points)
        if pts[0][0] != 0.0 or pts[-1][0] != 1.0:
            raise ValueError("control points must span [0, 1]")
        self.name = name
        xs = np.array([p[0] for p in pts])
        cols = np.array([p[1] for p in pts], dtype=np.float64)
        t = np.linspace(0.0, 1.0, 256)
        lut = np.empty((256, 3), dtype=np.float64)
        for c in range(3):
            lut[:, c] = np.interp(t, xs, cols[:, c])
        self.lut = np.clip(np.round(lut), 0, 255).astype(np.uint8)

    def map(
        self, values: np.ndarray, vmin: float | None = None, vmax: float | None = None
    ) -> np.ndarray:
        """RGB (uint8) colors for ``values``; shape ``values.shape + (3,)``.

        NaNs map to black.  A degenerate range maps everything to the low
        end of the table.
        """
        v = np.asarray(values, dtype=np.float64)
        finite = np.isfinite(v)
        lo = float(np.nanmin(v)) if vmin is None else float(vmin)
        hi = float(np.nanmax(v)) if vmax is None else float(vmax)
        if hi > lo:
            t = (v - lo) / (hi - lo)
        else:
            t = np.zeros_like(v)
        t = np.clip(np.where(finite, t, 0.0), 0.0, 1.0)
        idx = (t * 255.0 + 0.5).astype(np.int64)
        np.clip(idx, 0, 255, out=idx)
        out = self.lut[idx]
        if not finite.all():
            out = out.copy()
            out[~finite] = 0
        return out


#: A viridis-like perceptually ordered map (anchor colors from the
#: matplotlib viridis table).
VIRIDIS = Colormap(
    "viridis",
    [
        (0.00, (68, 1, 84)),
        (0.25, (59, 82, 139)),
        (0.50, (33, 145, 140)),
        (0.75, (94, 201, 98)),
        (1.00, (253, 231, 37)),
    ],
)

#: The ParaView default diverging "cool to warm" map.
COOL_WARM = Colormap(
    "cool_warm",
    [
        (0.0, (59, 76, 192)),
        (0.5, (221, 221, 221)),
        (1.0, (180, 4, 38)),
    ],
)

GRAY = Colormap("gray", [(0.0, (0, 0, 0)), (1.0, (255, 255, 255))])
