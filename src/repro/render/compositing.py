"""Parallel image compositing over the simulated MPI runtime.

"There is a costly compositing operation that involves communication of
image-sized buffers among a hierarchical set of ranks to ultimately produce
a final composite image on a single rank ... Catalyst and Libsim use
different compositing algorithms" (Sec. 4.1.3).  We implement the two
classic families so that difference is reproducible:

- :func:`binary_swap` -- log2(P) rounds; each round pairs exchange image
  halves, so every rank ends holding 1/P of the final image, then the
  pieces are gathered to the root.  Per-rank traffic is O(pixels) total.
- :func:`direct_send` -- every rank ships its full partial image straight
  to the root, which composites all P of them.  Root-side cost grows
  linearly in P, which is what makes its scaling curve differ.

Both accept :class:`~repro.render.rasterize.RenderedImage` partials and
resolve overlap with depth when present, else alpha priority (any rendered
pixel beats background; between two rendered pixels the lower rank wins,
a stable convention for disjoint-domain slice rendering).
"""

from __future__ import annotations

import numpy as np

from repro.render.rasterize import RenderedImage


def composite_over(front: RenderedImage, back: RenderedImage) -> RenderedImage:
    """Composite ``front`` over ``back`` into a new image.

    With depth buffers the nearer pixel wins; otherwise ``front`` wins
    wherever it rendered, and ``back`` fills the rest.
    """
    if front.shape != back.shape:
        raise ValueError("cannot composite images of different shapes")
    if (front.depth is None) != (back.depth is None):
        raise ValueError("both images must carry depth, or neither")
    if front.depth is not None:
        take_front = front.depth <= back.depth
        # Pixels empty on both sides keep +inf depth and alpha 0.
        rgb = np.where(take_front[..., None], front.rgb, back.rgb)
        alpha = np.where(take_front, front.alpha, back.alpha)
        depth = np.where(take_front, front.depth, back.depth)
        return RenderedImage(rgb.astype(np.uint8), alpha.astype(np.uint8), depth)
    take_front = front.alpha > 0
    rgb = np.where(take_front[..., None], front.rgb, back.rgb)
    alpha = np.where(take_front, front.alpha, back.alpha)
    return RenderedImage(rgb.astype(np.uint8), alpha.astype(np.uint8))


def _split_rows(img: RenderedImage, parts: int) -> list[RenderedImage]:
    """Split a framebuffer into ``parts`` contiguous row bands."""
    h = img.shape[0]
    bounds = [h * p // parts for p in range(parts + 1)]
    out = []
    for p in range(parts):
        sl = slice(bounds[p], bounds[p + 1])
        out.append(
            RenderedImage(
                img.rgb[sl].copy(),
                img.alpha[sl].copy(),
                None if img.depth is None else img.depth[sl].copy(),
            )
        )
    return out


def direct_send(comm, partial: RenderedImage, root: int = 0) -> RenderedImage | None:
    """Every rank sends its partial to the root; root composites in rank order."""
    pieces = comm.gather(
        (partial.rgb, partial.alpha, partial.depth), root=root
    )
    if comm.rank != root:
        return None
    images = [RenderedImage(r, a, d) for (r, a, d) in pieces]
    result = images[0]
    for img in images[1:]:
        result = composite_over(result, img)
    return result


def binary_swap(comm, partial: RenderedImage, root: int = 0) -> RenderedImage | None:
    """Binary-swap compositing; final image assembled on ``root``.

    Works for any communicator size: ranks beyond the largest power of two
    first fold, in rank order, into the *highest* active rank, then the
    active power-of-two set runs log2 rounds of half-image exchanges.
    Folding everything behind the highest-priority position is what keeps
    the rank-order overlap convention identical to direct send's -- folding
    each extra rank into an arbitrary partner would let a high rank's
    pixels outrank a lower active rank's.  (The funnel serializes up to
    size - 2^floor(log2 size) receives on one rank; production compositors
    avoid that with depth-carrying payloads instead.)
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return partial if rank == root else None
    # Fold excess ranks into the power-of-two active set.
    active = 1 << (size.bit_length() - 1)
    if active != size:
        funnel = active - 1
        if rank >= active:
            comm.send((partial.rgb, partial.alpha, partial.depth), dest=funnel, tag=900)
        elif rank == funnel:
            for src in range(active, size):
                r, a, d = comm.recv(source=src, tag=900)
                partial = composite_over(partial, RenderedImage(r, a, d))
    if rank >= active:
        # Folded ranks still participate in the final gather collective.
        comm.gather(None, root=root)
        return None

    # log2(active) rounds of half exchanges, pairing ADJACENT ranks first
    # (peer = rank XOR stride, stride doubling).  At stride s each rank's
    # band already holds the composite of its aligned rank block of size s,
    # and the peer's block is the adjacent one -- so compositing lower
    # block as front preserves the global rank-priority order exactly.
    # (Pairing distant ranks first interleaves blocks and breaks it.)
    my = partial
    row0 = 0  # global starting row of my band
    stride = 1
    while stride < active:
        peer = rank ^ stride
        in_low = (rank & stride) == 0
        low_band, high_band = _split_rows(my, 2)
        keep, send_img = (low_band, high_band) if in_low else (high_band, low_band)
        got = comm.sendrecv(
            (send_img.rgb, send_img.alpha, send_img.depth),
            dest=peer,
            source=peer,
            sendtag=901,
            recvtag=901,
        )
        other = RenderedImage(*got)
        # Lower rank block composites as front (rank-order convention).
        if rank < peer:
            my = composite_over(keep, other)
        else:
            my = composite_over(other, keep)
        if not in_low:
            row0 += low_band.shape[0]
        stride *= 2

    # Gather the per-rank bands to root and stitch.
    bands = comm.gather((row0, my.rgb, my.alpha, my.depth), root=root)
    if rank != root:
        return None
    bands = [b for b in bands if b is not None]
    total_h = sum(b[1].shape[0] for b in bands)
    width = bands[0][1].shape[1]
    with_depth = bands[0][3] is not None
    from repro.render.rasterize import blank_image

    out = blank_image(width, total_h, with_depth=with_depth)
    for r0, rgb, alpha, depth in bands:
        h = rgb.shape[0]
        out.rgb[r0 : r0 + h] = rgb
        out.alpha[r0 : r0 + h] = alpha
        if with_depth:
            out.depth[r0 : r0 + h] = depth
    return out
