"""Parallel image compositing over the simulated MPI runtime.

"There is a costly compositing operation that involves communication of
image-sized buffers among a hierarchical set of ranks to ultimately produce
a final composite image on a single rank ... Catalyst and Libsim use
different compositing algorithms" (Sec. 4.1.3).  We implement the two
classic families so that difference is reproducible:

- :func:`binary_swap` -- log2(P) rounds; each round pairs exchange image
  halves, so every rank ends holding 1/P of the final image, then the
  pieces are gathered to the root.  Per-rank traffic is O(pixels) total.
- :func:`direct_send` -- every rank ships its full partial image straight
  to the root, which composites all P of them.  Root-side cost grows
  linearly in P, which is what makes its scaling curve differ.

Both accept :class:`~repro.render.rasterize.RenderedImage` partials and
resolve overlap with depth when present, else alpha priority (any rendered
pixel beats background; between two rendered pixels the lower rank wins,
a stable convention for disjoint-domain slice rendering).
"""

from __future__ import annotations

import numpy as np

from repro import accel
from repro.render.rasterize import RenderedImage, blank_image
from repro.util.memory import MemoryTracker


def composite_over(front: RenderedImage, back: RenderedImage) -> RenderedImage:
    """Composite ``front`` over ``back`` into a new image.

    With depth buffers the nearer pixel wins; otherwise ``front`` wins
    wherever it rendered, and ``back`` fills the rest.
    """
    if front.shape != back.shape:
        raise ValueError("cannot composite images of different shapes")
    if (front.depth is None) != (back.depth is None):
        raise ValueError("both images must carry depth, or neither")
    if front.depth is not None:
        take_front = front.depth <= back.depth
        # Pixels empty on both sides keep +inf depth and alpha 0.
        rgb = np.where(take_front[..., None], front.rgb, back.rgb)
        alpha = np.where(take_front, front.alpha, back.alpha)
        depth = np.where(take_front, front.depth, back.depth)
        return RenderedImage(rgb.astype(np.uint8), alpha.astype(np.uint8), depth)
    take_front = front.alpha > 0
    rgb = np.where(take_front[..., None], front.rgb, back.rgb)
    alpha = np.where(take_front, front.alpha, back.alpha)
    return RenderedImage(rgb.astype(np.uint8), alpha.astype(np.uint8))


def composite_over_into(
    front: RenderedImage, back: RenderedImage, out: RenderedImage | None = None
) -> RenderedImage:
    """Composite ``front`` over ``back`` into ``out`` (default: ``back``).

    The zero-alloc counterpart of :func:`composite_over`: no framebuffer
    triple is created -- only a boolean selection mask.  ``out`` may alias
    ``front`` or ``back``; its depth-carrying-ness must match theirs.  The
    pixel semantics are identical to :func:`composite_over`.
    """
    if front.shape != back.shape:
        raise ValueError("cannot composite images of different shapes")
    if (front.depth is None) != (back.depth is None):
        raise ValueError("both images must carry depth, or neither")
    if out is None:
        out = back
    if out.shape != front.shape or (out.depth is None) != (front.depth is None):
        raise ValueError("out must match the composited images' shape and depth")
    # Numba tier (byte-identical fused per-pixel pass, no mask temporary);
    # returns False when inactive and the reference path below runs.
    if accel.composite_into(
        out.rgb, out.alpha, out.depth,
        front.rgb, front.alpha, front.depth,
        back.rgb, back.alpha, back.depth,
    ):
        return out
    if front.depth is not None:
        take_front = front.depth <= back.depth
    else:
        take_front = front.alpha > 0
    # Materialized 3-channel mask: copyto over a stride-0 broadcast mask is
    # ~40% slower than over a contiguous one.
    mask3 = np.repeat(take_front[..., None], 3, axis=2)
    if out is not front:
        np.copyto(out.rgb, front.rgb, where=mask3)
        np.copyto(out.alpha, front.alpha, where=take_front)
        if front.depth is not None:
            np.copyto(out.depth, front.depth, where=take_front)
    if out is not back:
        np.copyto(out.rgb, back.rgb, where=~mask3)
        np.copyto(out.alpha, back.alpha, where=~take_front)
        if back.depth is not None:
            np.copyto(out.depth, back.depth, where=~take_front)
    return out


class FramebufferPool:
    """Reusable framebuffer allocator keyed by resolution and depth-ness.

    Per-step rendering (Catalyst slice every timestep, Cinema camera
    sweeps) re-creates identically shaped RGB/alpha/depth triples each
    frame; the pool hands back released buffers instead.  With a
    :class:`~repro.util.memory.MemoryTracker` attached, pooled buffers are
    charged once at first allocation (a persistent footprint, the honest
    way the space-for-time trade shows up in the fig04/fig07-style memory
    experiments) rather than churning the high-water mark every frame.
    """

    #: Free buffers retained per (height, width, depth) key; releases
    #: beyond this are dropped (*evicted*), so a resolution change cannot
    #: pin every old resolution's buffers forever.
    MAX_FREE_PER_KEY = 4

    def __init__(
        self,
        memory: MemoryTracker | None = None,
        label: str = "render::framebuffer_pool",
        max_free: int | None = None,
    ) -> None:
        self.memory = memory
        self.label = label
        #: Per-instance pool depth; defaults to the class-level
        #: :data:`MAX_FREE_PER_KEY` and may be retuned between steps (the
        #: autotuning controller's memory-for-time knob).
        self.max_free = self.MAX_FREE_PER_KEY if max_free is None else int(max_free)
        if self.max_free < 0:
            raise ValueError("max_free must be non-negative")
        self._free: dict[tuple[int, int, bool], list[RenderedImage]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.allocated_nbytes = 0

    def acquire(
        self, width: int, height: int, with_depth: bool = False, clear: bool = True
    ) -> RenderedImage:
        """A ``width x height`` framebuffer, reused when one is free.

        ``clear=True`` resets it to the :func:`blank_image` state; pass
        ``False`` when every pixel will be overwritten anyway.
        """
        stack = self._free.get((height, width, with_depth))
        if stack:
            self.hits += 1
            img = stack.pop()
            if clear:
                img.rgb.fill(0)
                img.alpha.fill(0)
                if img.depth is not None:
                    img.depth.fill(np.inf)
            return img
        self.misses += 1
        img = blank_image(width, height, with_depth=with_depth)
        self.allocated_nbytes += img.nbytes
        if self.memory is not None:
            self.memory.allocate(img.nbytes, label=self.label)
        return img

    def release(self, img: RenderedImage) -> None:
        """Return a framebuffer for reuse; the caller must drop its ref.

        A release beyond ``max_free`` free buffers of that shape is
        evicted instead -- dropped, with its bytes returned to the memory
        tracker.
        """
        key = (img.shape[0], img.shape[1], img.depth is not None)
        stack = self._free.setdefault(key, [])
        if len(stack) >= self.max_free:
            self.evictions += 1
            self.allocated_nbytes -= img.nbytes
            if self.memory is not None:
                self.memory.free(img.nbytes, label=self.label)
            return
        stack.append(img)

    def record_gauges(self, rec, prefix: str | None = None) -> None:
        """Sample hit/miss/evict/footprint gauges on a trace recorder.

        Names are ``<prefix>::{hits,misses,evictions,allocated_nbytes}``
        with ``prefix`` defaulting to the pool's label, so ``repro report``
        shows pool behavior per step alongside the phase timings.
        """
        stem = self.label if prefix is None else prefix
        rec.gauge(f"{stem}::hits", self.hits)
        rec.gauge(f"{stem}::misses", self.misses)
        rec.gauge(f"{stem}::evictions", self.evictions)
        rec.gauge(f"{stem}::allocated_nbytes", self.allocated_nbytes)

    def drain(self) -> None:
        """Drop all pooled buffers and return their bytes to the tracker."""
        if self.memory is not None:
            self.memory.free(self.allocated_nbytes, label=self.label)
        self.allocated_nbytes = 0
        self._free.clear()


def _split_rows(img: RenderedImage, parts: int) -> list[RenderedImage]:
    """Split a framebuffer into ``parts`` contiguous row-band *views*.

    No pixel data is copied; callers may read the bands or hand them to the
    communicator (which copies payloads on send, as real MPI would).
    """
    h = img.shape[0]
    bounds = [h * p // parts for p in range(parts + 1)]
    out = []
    for p in range(parts):
        sl = slice(bounds[p], bounds[p + 1])
        out.append(
            RenderedImage(
                img.rgb[sl],
                img.alpha[sl],
                None if img.depth is None else img.depth[sl],
            )
        )
    return out


def direct_send(comm, partial: RenderedImage, root: int = 0) -> RenderedImage | None:
    """Every rank sends its partial to the root; root composites in rank order.

    The gathered pieces are root-owned copies (the communicator copies
    payloads, as real MPI would), so the rank-order fold composites in
    place instead of allocating a fresh framebuffer per rank.
    """
    pieces = comm.gather(
        (partial.rgb, partial.alpha, partial.depth), root=root
    )
    if comm.rank != root:
        return None
    images = [RenderedImage(r, a, d) for (r, a, d) in pieces]
    result = images[0]
    for img in images[1:]:
        result = composite_over_into(result, img, out=img)
    return result


def binary_swap(
    comm, partial: RenderedImage, root: int = 0, pool: FramebufferPool | None = None
) -> RenderedImage | None:
    """Binary-swap compositing; final image assembled on ``root``.

    Works for any communicator size: ranks beyond the largest power of two
    first fold, in rank order, into the *highest* active rank, then the
    active power-of-two set runs log2 rounds of half-image exchanges.
    Folding everything behind the highest-priority position is what keeps
    the rank-order overlap convention identical to direct send's -- folding
    each extra rank into an arbitrary partner would let a high rank's
    pixels outrank a lower active rank's.  (The funnel serializes up to
    size - 2^floor(log2 size) receives on one rank; production compositors
    avoid that with depth-carrying payloads instead.)

    The rounds are allocation-free on the compositing side: each rank keeps
    its retained half as a *view*, sends the other half (the communicator
    copies payloads, modeling the network buffer), and composites in place
    into the received copy it owns.  A :class:`FramebufferPool` additionally
    recycles the root's stitched output across frames; the caller releases
    it back to the pool when done with the frame.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return partial if rank == root else None
    # Fold excess ranks into the power-of-two active set.
    active = 1 << (size.bit_length() - 1)
    if active != size:
        funnel = active - 1
        if rank >= active:
            comm.send((partial.rgb, partial.alpha, partial.depth), dest=funnel, tag=900)
        elif rank == funnel:
            for src in range(active, size):
                r, a, d = comm.recv(source=src, tag=900)
                # The received triple is a rank-local copy: composite into
                # it in place (funnel pixels are front, rank order).
                img = RenderedImage(r, a, d)
                partial = composite_over_into(partial, img, out=img)
    if rank >= active:
        # Folded ranks still participate in the final gather collective --
        # every rank reaches this gather (active ranks call it after the
        # exchange rounds below), so the branch is not divergent.
        comm.gather(None, root=root)  # lint: allow(collective-in-rank-branch)
        return None

    # log2(active) rounds of half exchanges, pairing ADJACENT ranks first
    # (peer = rank XOR stride, stride doubling).  At stride s each rank's
    # band already holds the composite of its aligned rank block of size s,
    # and the peer's block is the adjacent one -- so compositing lower
    # block as front preserves the global rank-priority order exactly.
    # (Pairing distant ranks first interleaves blocks and breaks it.)
    my = partial
    row0 = 0  # global starting row of my band
    stride = 1
    while stride < active:
        peer = rank ^ stride
        in_low = (rank & stride) == 0
        low_band, high_band = _split_rows(my, 2)
        keep, send_img = (low_band, high_band) if in_low else (high_band, low_band)
        got = comm.sendrecv(
            (send_img.rgb, send_img.alpha, send_img.depth),
            dest=peer,
            source=peer,
            sendtag=901,
            recvtag=901,
        )
        # ``other`` is this rank's own copy of the peer's band; ``keep`` is
        # a read-only view into ``my`` -- so compositing writes into
        # ``other`` and no framebuffer is allocated this round.
        other = RenderedImage(*got)
        # Lower rank block composites as front (rank-order convention).
        if rank < peer:
            my = composite_over_into(keep, other, out=other)
        else:
            my = composite_over_into(other, keep, out=other)
        if not in_low:
            row0 += low_band.shape[0]
        stride *= 2

    # Gather the per-rank bands to root and stitch.
    bands = comm.gather((row0, my.rgb, my.alpha, my.depth), root=root)
    if rank != root:
        return None
    bands = [b for b in bands if b is not None]
    total_h = sum(b[1].shape[0] for b in bands)
    width = bands[0][1].shape[1]
    with_depth = bands[0][3] is not None
    if pool is not None:
        # Every pixel is overwritten by the stitch below.
        out = pool.acquire(width, total_h, with_depth=with_depth, clear=False)
    else:
        out = blank_image(width, total_h, with_depth=with_depth)
    for r0, rgb, alpha, depth in bands:
        h = rgb.shape[0]
        out.rgb[r0 : r0 + h] = rgb
        out.alpha[r0 : r0 + h] = alpha
        if with_depth:
            out.depth[r0 : r0 + h] = depth
    return out
