"""repro: a reproduction of "Performance Analysis, Design Considerations,
and Applications of Extreme-scale In Situ Infrastructures" (SC 2016).

Top-level convenience re-exports cover the instrument-once workflow::

    from repro import Bridge, run_spmd
    from repro.analysis import HistogramAnalysis
    from repro.miniapp import OscillatorSimulation

See README.md for the architecture, DESIGN.md for the system inventory and
substitution table, and EXPERIMENTS.md for the per-table/figure
paper-vs-measured record.
"""

from repro.core import (
    AnalysisAdaptor,
    Bridge,
    ConfigurableAnalysis,
    DataAdaptor,
    LazyStructuredDataAdaptor,
    LiveConnection,
    SteeringAnalysis,
)
from repro.mpi import Communicator, run_spmd

__version__ = "1.0.0"

__all__ = [
    "Bridge",
    "DataAdaptor",
    "AnalysisAdaptor",
    "LazyStructuredDataAdaptor",
    "ConfigurableAnalysis",
    "LiveConnection",
    "SteeringAnalysis",
    "Communicator",
    "run_spmd",
    "__version__",
]
