"""Experiment registry: every paper table/figure as a callable that returns
its rows.

Used by both the benchmark harness and the CLI (``python -m repro``), so
the series the paper reports can be regenerated without pytest.
"""

from __future__ import annotations

from typing import Callable

from repro.perf.apps_model import (
    AVFRun,
    NYX_RUNS,
    PHASTA_RUNS,
    avf_periteration_series,
    avf_strong_scaling,
    nyx_scaling,
    phasta_table2,
)
from repro.perf.iomodel import IOModel
from repro.perf.machine import CORI
from repro.perf.miniapp_model import SCALES, MiniappConfig, MiniappModel

ExperimentFn = Callable[[], tuple[str, list[str]]]

_REGISTRY: dict[str, tuple[str, ExperimentFn]] = {}


def experiment(name: str, description: str):
    def deco(fn: ExperimentFn) -> ExperimentFn:
        _REGISTRY[name] = (description, fn)
        return fn

    return deco


def available_experiments() -> dict[str, str]:
    return {name: desc for name, (desc, _) in sorted(_REGISTRY.items())}


def run_experiment(name: str) -> tuple[str, list[str]]:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name][1]()


def _models():
    return {s: MiniappModel(MiniappConfig.at_scale(s)) for s in ("1K", "6K", "45K")}


@experiment("fig03", "time to solution, Original vs SENSEI Autocorrelation")
def _fig03():
    rows = []
    for scale, m in _models().items():
        ac = m.autocorrelation()
        t_orig = (
            m.original().time_to_solution(m.cfg.steps)
            + m.cfg.steps * (ac.analysis_per_step - m.sensei_overhead_step)
            + ac.finalize
        )
        t_sensei = ac.time_to_solution(m.cfg.steps)
        rows.append(f"{scale:<5}{m.cfg.cores:>8}{t_orig:>14.2f}{t_sensei:>14.2f}")
    return (
        f"{'scale':<5}{'cores':>8}{'original(s)':>14}{'sensei(s)':>14}",
        rows,
    )


@experiment("fig04", "memory footprint, Original vs SENSEI Autocorrelation")
def _fig04():
    rows = []
    for scale, m in _models().items():
        hw = m.autocorrelation().high_water_bytes_per_rank * m.cfg.cores
        rows.append(f"{scale:<5}{m.cfg.cores:>8}{hw / 1e12:>14.3f}{hw / 1e12:>14.3f}")
    return (
        f"{'scale':<5}{'cores':>8}{'original(TB)':>14}{'sensei(TB)':>14}",
        rows,
    )


@experiment("fig05", "one-time costs per configuration")
def _fig05():
    rows = []
    for scale, m in _models().items():
        for b in m.all_insitu_configs():
            rows.append(
                f"{scale:<5}{b.config_name:<17}{b.sim_initialize:>12.3f}"
                f"{b.analysis_initialize:>12.3f}{b.finalize:>12.3f}"
            )
    return (
        f"{'scale':<5}{'configuration':<17}{'sim init(s)':>12}"
        f"{'ana init(s)':>12}{'finalize(s)':>12}",
        rows,
    )


@experiment("fig06", "per-timestep costs per configuration")
def _fig06():
    rows = []
    for scale, m in _models().items():
        for b in m.all_insitu_configs():
            rows.append(
                f"{scale:<5}{b.config_name:<17}{b.sim_per_step:>12.4f}"
                f"{b.analysis_per_step:>17.4f}"
            )
    return (
        f"{'scale':<5}{'configuration':<17}{'sim/step(s)':>12}"
        f"{'analysis/step(s)':>17}",
        rows,
    )


@experiment("fig07", "memory overhead: startup vs high-water")
def _fig07():
    rows = []
    for scale, m in _models().items():
        for b in m.all_insitu_configs():
            rows.append(
                f"{scale:<5}{b.config_name:<17}"
                f"{b.startup_bytes_per_rank * m.cfg.cores / 1e12:>13.3f}"
                f"{b.high_water_bytes_per_rank * m.cfg.cores / 1e12:>15.3f}"
            )
    return (
        f"{'scale':<5}{'configuration':<17}{'startup(TB)':>13}{'high-water(TB)':>15}",
        rows,
    )


@experiment("fig08", "ADIOS FlexPath writer costs (histogram endpoint)")
def _fig08():
    rows = []
    for scale, m in _models().items():
        fp = m.flexpath("histogram")
        rows.append(
            f"{scale:<5}{fp['writer_initialize']:>14.3f}"
            f"{fp['adios_advance']:>12.6f}{fp['adios_analysis']:>13.6f}"
        )
    return (
        f"{'scale':<5}{'initialize(s)':>14}{'advance(s)':>12}{'analysis(s)':>13}",
        rows,
    )


@experiment("fig09", "ADIOS FlexPath endpoint costs per analysis")
def _fig09():
    rows = []
    for scale, m in _models().items():
        for analysis in ("histogram", "autocorrelation", "catalyst-slice"):
            fp = m.flexpath(analysis)
            rows.append(
                f"{scale:<5}{analysis:<17}{fp['endpoint_initialize']:>15.3f}"
                f"{fp['endpoint_analysis']:>17.4f}"
            )
    return (
        f"{'scale':<5}{'analysis':<17}{'reader init(s)':>15}"
        f"{'analysis/step(s)':>17}",
        rows,
    )


@experiment("fig10", "per-step write costs vs the simulation")
def _fig10():
    rows = []
    for scale, m in _models().items():
        b = m.baseline_with_writes()
        rows.append(
            f"{scale:<5}{b.sim_per_step:>12.3f}{b.write_per_step:>14.3f}"
            f"{b.write_per_step / b.sim_per_step:>10.1f}"
        )
    return (
        f"{'scale':<5}{'sim/step(s)':>12}{'write/step(s)':>14}{'write/sim':>10}",
        rows,
    )


@experiment("table1", "one-step write: VTK multi-file vs MPI-IO")
def _table1():
    rows = []
    for scale, m in _models().items():
        wp = m.write_paths()
        rows.append(
            f"{scale:<5}{SCALES[scale][0]:>8}{wp['size_gb']:>10.1f}"
            f"{wp['vtk_io']:>12.2f}{wp['mpi_io']:>11.2f}"
        )
    return (
        f"{'scale':<5}{'cores':>8}{'size(GB)':>10}{'VTK I/O(s)':>12}{'MPI-IO(s)':>11}",
        rows,
    )


@experiment("fig11", "post hoc read/process/write at 10% cores")
def _fig11():
    rows = []
    for scale, m in _models().items():
        for analysis in ("histogram", "autocorrelation", "slice"):
            ph = m.posthoc(analysis)
            rows.append(
                f"{scale:<5}{analysis:<17}{ph['readers']:>8}{ph['read']:>10.1f}"
                f"{ph['process']:>11.2f}{ph['write']:>10.2f}"
            )
    return (
        f"{'scale':<5}{'analysis':<17}{'readers':>8}{'read(s)':>10}"
        f"{'process(s)':>11}{'write(s)':>10}",
        rows,
    )


@experiment("fig12", "in situ vs post hoc time to solution")
def _fig12():
    matching = {
        "histogram": "histogram",
        "autocorrelation": "autocorrelation",
        "catalyst-slice": "slice",
        "libsim-slice": "slice",
    }
    rows = []
    for scale, m in _models().items():
        for b in m.all_insitu_configs():
            if b.config_name not in matching:
                continue
            insitu = b.time_to_solution(m.cfg.steps)
            writes = m.cfg.steps * m.io.file_per_process_write(
                m.cfg.cores, m.cfg.step_bytes
            )
            ph = m.posthoc(matching[b.config_name])
            posthoc = (
                m.cfg.steps * b.sim_per_step
                + writes
                + ph["read"]
                + ph["process"]
                + ph["write"]
            )
            rows.append(
                f"{scale:<5}{b.config_name:<17}{insitu:>12.1f}{posthoc:>13.1f}"
            )
    return (
        f"{'scale':<5}{'configuration':<17}{'in situ(s)':>12}{'post hoc(s)':>13}",
        rows,
    )


@experiment("table2", "PHASTA in situ execution times (Mira)")
def _table2():
    rows = []
    for name, run in PHASTA_RUNS.items():
        r = phasta_table2(run)
        rows.append(
            f"{name:<5}{r.onetime_cost:>11.2f}{r.insitu_per_step:>15.2f}"
            f"{r.total_time:>10.0f}{r.percent_insitu:>10.1f}"
        )
    return (
        f"{'run':<5}{'onetime(s)':>11}{'insitu/step(s)':>15}{'total(s)':>10}"
        f"{'% in situ':>10}",
        rows,
    )


@experiment("fig15", "AVF-LESLIE strong scaling with Libsim (Titan)")
def _fig15():
    rows = []
    for cores in (8_192, 16_384, 32_768, 65_536, 131_072):
        r = avf_strong_scaling(AVFRun(cores=cores))
        rows.append(
            f"{cores:>8}{r.solver_per_step:>15.2f}{r.libsim_per_invocation:>16.2f}"
            f"{r.avg_added_per_step:>18.2f}"
        )
    return (
        f"{'cores':>8}{'solver/step(s)':>15}{'libsim/invoc(s)':>16}"
        f"{'avg added/step(s)':>18}",
        rows,
    )


@experiment("fig16", "AVF per-iteration SENSEI cost at 65K")
def _fig16():
    series = avf_periteration_series(AVFRun(cores=65_536, steps=20))
    rows = [
        f"step {i:>3}: {t:7.2f}s" + ("  <- Libsim" if i % 5 == 0 else "")
        for i, t in enumerate(series, start=1)
    ]
    return ("per-iteration SENSEI cost at 65K (s)", rows)


@experiment("fig17", "Nyx scaling with in situ histogram and slice (Cori)")
def _fig17():
    rows = []
    for run in NYX_RUNS:
        r = nyx_scaling(run)
        rows.append(
            f"{r.grid:>5}^3{r.cores:>8}{r.solver_per_step:>15.1f}"
            f"{r.histogram_per_step:>13.3f}{r.slice_per_step:>14.3f}"
            f"{r.plotfile_write:>12.0f}"
        )
    return (
        f"{'grid':>6}{'cores':>8}{'solver/step(s)':>15}{'hist/step(s)':>13}"
        f"{'slice/step(s)':>14}{'plotfile(s)':>12}",
        rows,
    )


@experiment("burstbuffer", "burst-buffer staging vs direct writes (extension)")
def _burstbuffer():
    io = IOModel(CORI)
    rows = []
    for scale, m in _models().items():
        direct = io.file_per_process_write(m.cfg.cores, m.cfg.step_bytes)
        bb, keeps_up = io.burst_buffer_write(
            m.cfg.cores, m.cfg.step_bytes, step_interval=m.sim_step
        )
        rows.append(
            f"{scale:<5}{direct:>11.3f}{bb:>16.4f}{str(keeps_up):>9}"
        )
    return (
        f"{'scale':<5}{'direct(s)':>11}{'burst buffer(s)':>16}{'drains?':>9}",
        rows,
    )
