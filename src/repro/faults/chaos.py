"""The end-to-end chaos harness behind ``repro chaos``.

One seeded run exercises every resilience mechanism at once: the oscillator
miniapp drives an in-line histogram, a retried ADIOS-BP file writer, and a
FlexPath in-transit Catalyst slice -- while the fault plan kills a writer
rank mid-run (recovered by checkpoint/restart), disconnects the staging
endpoint (degraded to in-line Catalyst by the circuit breaker), fails and
truncates storage writes (absorbed by retry with backoff + jitter), and
salts the fabric with message delay/duplication/drop (absorbed by the
reliable-transport emulation).  The run must complete, every simulation
step must be accounted for, and -- because fault draws are counter-hashed
-- the same seed reproduces the identical schedule, recovery actions, and
byte-identical artifacts.

``ready_timeout`` is the one wall-clock-sensitive knob: it must comfortably
exceed a healthy endpoint's per-round latency (milliseconds here) or a
loaded machine could degrade a step spuriously and perturb the report.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.analysis.histogram import HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.core.bridge import Bridge
from repro.faults.checkpoint import CheckpointManager
from repro.faults.injector import FaultInjector, InjectedRankDeath
from repro.faults.plan import FaultPlan, chaos_plan
from repro.faults.policies import CircuitBreaker, RetryPolicy
from repro.infrastructure.adios import StagingResilience, run_flexpath_job
from repro.infrastructure.catalyst import CatalystAdaptor
from repro.miniapp.oscillator import default_oscillators
from repro.miniapp.simulation import OscillatorSimulation
from repro.trace.recorder import TraceSession
from repro.util.timers import TimerRegistry


class ChaosError(AssertionError):
    """The chaos run completed but its accounting invariants failed."""


def _make_catalyst(
    out_dir: str, sub: str, index: int, array: str = "data"
) -> CatalystAdaptor:
    return CatalystAdaptor(
        plane=SlicePlane(2, index),
        array=array,
        resolution=(320, 180),
        output_dir=os.path.join(out_dir, sub),
        compression_level=6,
    )


def run_chaos(
    seed: int = 42,
    ranks: int = 4,
    steps: int = 10,
    out_dir: str = "chaos_artifacts",
    ready_timeout: float = 0.25,
    checkpoint_interval: int = 3,
    global_dims: tuple[int, int, int] = (16, 16, 16),
    timeout: float = 60.0,
    plan: FaultPlan | None = None,
    backend: str | None = None,
    controller: bool = False,
    sense: str = "outcomes",
    app: str = "oscillator",
) -> dict[str, Any]:
    """Run the seeded chaos job; returns (and writes) the recovery report.

    ``ranks`` is the world size: ``ranks - 1`` writers plus one staging
    endpoint.  ``plan`` overrides the default :func:`chaos_plan` schedule.
    ``backend`` selects the SPMD execution backend ("thread"/"process");
    fault draws are counter-hashed per (site, rank, occurrence), so the
    recovery report and artifacts are byte-identical across backends for
    the same seed.  Raises :class:`ChaosError` if the job completes but a
    step goes unaccounted for.

    With ``controller=True`` the circuit breaker's attempt/skip policy is
    replaced by the online autotuning controller (:mod:`repro.control`) in
    discrete-outcome mode: staging attempts are gated by its adopted
    placement and seeded probes, the in-line fallback's PNG/framebuffer
    knobs become its actuators, and every writer's decision journal --
    which must be identical across the group -- is written to
    ``decision_journal.json`` alongside the recovery report.

    ``app`` selects the simulation under test: the grid-shaped
    ``"oscillator"`` miniapp (default) or the ``"nbody"`` particle miniapp,
    whose ragged migration payloads exercise the fault sites with
    variable-length traffic.  For nbody the checkpoint interval is forced
    to 1: recovery must never replay a step that communicates, so the
    retained snapshot has to be the step immediately before any death.

    ``sense`` picks the controller's verify feed: ``"outcomes"`` (default)
    observes only the discrete staged/degraded consensus, which keeps the
    journal a pure function of the seed (byte-identical across repeat
    runs -- what CI's chaos-smoke diffs); ``"spans"`` additionally attaches
    a :class:`~repro.control.sensor.SpanSensor` to each writer's trace
    recorder, so decisions also see measured per-phase seconds
    (group-reduced, hence still identical across the writer group within
    one run, but wall-clock-dependent across runs).
    """
    if sense not in ("outcomes", "spans"):
        raise ValueError(f"sense must be 'outcomes' or 'spans', got {sense!r}")
    if app not in ("oscillator", "nbody"):
        raise ValueError(f"app must be 'oscillator' or 'nbody', got {app!r}")
    if ranks < 2:
        raise ValueError("chaos needs at least 2 ranks (1 writer + 1 endpoint)")
    if steps < 3:
        raise ValueError("chaos needs at least 3 steps")
    n_writers = ranks - 1
    if app == "nbody":
        # Recovery for the particle app must never *replay* steps: a
        # replayed step would re-send migration payloads to peers who are
        # already past it.  With interval 1 the retained snapshot is always
        # the step right before the death, so recovery is restore plus one
        # re-issued step -- and that step's fault site fires before its
        # first send, so no bytes from the dead attempt are on the wire.
        checkpoint_interval = 1
    if plan is None:
        plan = chaos_plan(seed, n_writers, steps)
    injector = FaultInjector(plan)
    trace = TraceSession("chaos")
    os.makedirs(out_dir, exist_ok=True)
    retry = RetryPolicy(max_attempts=8, base_delay=0.001, max_delay=0.01, seed=seed)
    slice_index = global_dims[2] // 2
    array = "data" if app == "oscillator" else "density"

    def _make_sim(group, timers):
        if app == "nbody":
            from repro.apps.nbody import NBodySimulation

            return NBodySimulation(
                group,
                grid=global_dims[0],
                n_particles=16 * global_dims[0] ** 2,
                seed=seed,
                timers=timers,
            )
        return OscillatorSimulation(
            group, global_dims, default_oscillators(), dt=0.01, timers=timers
        )

    def writer_program(group, writer_adaptor):
        timers = TimerRegistry()
        sim = _make_sim(group, timers)
        bridge = Bridge(group, sim.make_data_adaptor(), timers=timers)
        bridge.add_analysis(HistogramAnalysis(bins=32, array=array))
        bridge.add_analysis(
            _bp_adaptor(os.path.join(out_dir, "steps.bp"), retry, array)
        )
        bridge.add_analysis(writer_adaptor)
        bridge.initialize()
        ckpt = CheckpointManager(interval=checkpoint_interval)
        ckpt.save(sim)
        rec = getattr(group, "trace_recorder", None)
        deaths = 0
        replayed = 0
        for _ in range(steps):
            try:
                sim.advance()
            except InjectedRankDeath:
                # The paper-scale recovery contract: rewind to the last
                # periodic checkpoint, recompute forward (the field is a
                # pure function of time, so replay is exact), then
                # re-issue the step that died -- its one-shot death event
                # has fired and will not fire again.
                deaths += 1
                replayed += ckpt.recover_step(sim, sim.advance, trace=rec)
                sim.advance()
            ckpt.maybe_save(sim)
            bridge.execute(sim.time, sim.step)
        results = bridge.finalize()
        out = {
            "rank": group.rank,
            "results": results,
            "deaths": deaths,
            "replayed_steps": replayed,
            "checkpoint_saves": ckpt.saves,
            "checkpoint_restores": ckpt.restores,
        }
        if app == "nbody":
            # Exact post-run particle state: the chaos determinism tests
            # compare these against a fault-free run to prove recovery
            # replayed particle ownership bit-for-bit.
            out["n_local"] = sim.n_local
            out["particles_fingerprint"] = sim.particles.fingerprint()
            out["migrated_out"] = sim.migrated_out
            out["migrated_in"] = sim.migrated_in
        return out

    def resilience_factory(group):
        fallback = _make_catalyst(out_dir, "inline", slice_index, array)
        ctrl = None
        if controller:
            from repro.control import Controller

            ctrl = Controller(seed=seed, group=group, mode=sense)
            if sense == "spans":
                rec = getattr(group, "trace_recorder", None)
                if rec is not None:
                    ctrl.attach(rec)
            ctrl.register_actuator(
                lambda old, new: fallback.reconfigure(
                    png_workers=new.png_workers,
                    png_codec=new.png_codec,
                    framebuffer_depth=new.framebuffer_depth,
                )
            )
        return StagingResilience(
            group,
            ready_timeout=ready_timeout,
            breaker=CircuitBreaker(failure_threshold=2, probe_interval=4),
            fallback=fallback,
            controller=ctrl,
        )

    job = run_flexpath_job(
        n_writers,
        1,
        writer_program,
        lambda endpoint_comm: _make_catalyst(
            out_dir, "staged", slice_index, array
        ),
        array=array,
        timeout=timeout,
        faults=injector,
        resilience_factory=resilience_factory,
        trace=trace,
        backend=backend,
    )

    report = _build_report(
        seed, ranks, steps, injector, trace, job, out_dir
    )
    report["app"] = app
    report["checkpoint_interval"] = checkpoint_interval
    if app == "nbody":
        report["nbody"] = {
            "final_counts": [
                w["n_local"]
                for w in sorted(job.writer_results, key=lambda w: w["rank"])
            ],
            "particles_fingerprints": [
                w["particles_fingerprint"]
                for w in sorted(job.writer_results, key=lambda w: w["rank"])
            ],
            "migrated": sum(
                w["migrated_out"] for w in job.writer_results
            ),
        }
    _check_accounting(report, steps, n_writers)
    _write_artifacts(report, job, out_dir)
    return report


def _bp_adaptor(path, retry, array="data"):
    from repro.infrastructure.adios import AdiosBPAdaptor

    return AdiosBPAdaptor(path, array=array, retry=retry)


def _build_report(seed, ranks, steps, injector, trace, job, out_dir):
    writers = sorted(job.writer_results, key=lambda w: w["rank"])
    endpoint = job.endpoint_results[0]
    flex = [w["results"]["AdiosFlexPathWriter"] for w in writers]
    staged = [f["staged_steps"] for f in flex]
    degraded = [f["degraded_steps"] for f in flex]
    skipped = [f["skipped_steps"] for f in flex]
    counters: dict[str, float] = {}
    for rank in trace.ranks:
        rec = trace.recorder(rank)
        for name in rec.counter_names():
            if name.startswith(("fault::", "resilience::")):
                counters[name] = counters.get(name, 0.0) + rec.total(name)
    report = {
        "seed": seed,
        "ranks": ranks,
        "steps": steps,
        "n_writers": len(writers),
        "fault_schedule": injector.schedule(),
        "fault_counts": injector.counts_by_kind(),
        "writers": [
            {
                "rank": w["rank"],
                "staged_steps": f["staged_steps"],
                "degraded_steps": f["degraded_steps"],
                "skipped_steps": f["skipped_steps"],
                "deaths": w["deaths"],
                "replayed_steps": w["replayed_steps"],
                "checkpoint_saves": w["checkpoint_saves"],
                "checkpoint_restores": w["checkpoint_restores"],
                "breaker": f["breaker"],
            }
            for w, f in zip(writers, flex)
        ],
        "endpoint": {
            "steps_analyzed": endpoint["steps_analyzed"],
            "disconnected_at_step": endpoint["disconnected_at_step"],
        },
        "accounting": {
            "staged_steps": staged[0] if staged else 0,
            "degraded_steps": degraded[0] if degraded else 0,
            "skipped_steps": skipped[0] if skipped else 0,
            "lost_in_flight": (staged[0] - endpoint["steps_analyzed"]) if staged else 0,
            "deaths": sum(w["deaths"] for w in writers),
            "checkpoint_restores": sum(w["checkpoint_restores"] for w in writers),
        },
        "trace_counters": dict(sorted(counters.items())),
        "completed": True,
    }
    ctrl = [f.get("controller") for f in flex]
    if any(c is not None for c in ctrl):
        texts = [
            json.dumps(c["journal"], indent=2, sort_keys=True) for c in ctrl
        ]
        journal = ctrl[0]["journal"]
        report["controller"] = {
            "final_config": ctrl[0]["final_config"],
            "decisions": len(journal["decisions"]),
            "actions": [
                [d["step"], d["action"]]
                for d in journal["decisions"]
                if d["action"] != "hold"
            ],
            "journals_identical": len(set(texts)) == 1,
        }
    return report


def _check_accounting(report, steps, n_writers):
    """Every simulation step must be staged, degraded, or skipped -- on
    every writer identically (the degrade decision is collective) -- and
    at most one staged round may be lost in flight to a dying endpoint."""
    acct = report["accounting"]
    per_writer = [
        (w["staged_steps"], w["degraded_steps"], w["skipped_steps"])
        for w in report["writers"]
    ]
    if len(set(per_writer)) != 1:
        raise ChaosError(
            f"writer accounting diverged across the group: {per_writer} -- "
            "the degrade consensus should make these identical"
        )
    total = acct["staged_steps"] + acct["degraded_steps"] + acct["skipped_steps"]
    if total != steps:
        raise ChaosError(
            f"{steps - total} of {steps} steps unaccounted for "
            f"(staged {acct['staged_steps']}, degraded "
            f"{acct['degraded_steps']}, skipped {acct['skipped_steps']})"
        )
    if not 0 <= acct["lost_in_flight"] <= 1:
        raise ChaosError(
            f"{acct['lost_in_flight']} staged rounds lost in flight; a "
            "single endpoint disconnect can strand at most one"
        )
    ctrl = report.get("controller")
    if ctrl is not None and not ctrl["journals_identical"]:
        raise ChaosError(
            "controller decision journals diverged across the writer "
            "group -- lockstep consensus should make them byte-identical"
        )


def _write_artifacts(report, job, out_dir):
    with open(
        os.path.join(out_dir, "recovery_report.json"), "w", encoding="utf-8"
    ) as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    if report.get("controller") is not None:
        writers = sorted(job.writer_results, key=lambda w: w["rank"])
        journal = writers[0]["results"]["AdiosFlexPathWriter"]["controller"][
            "journal"
        ]
        with open(
            os.path.join(out_dir, "decision_journal.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(journal, fh, indent=2, sort_keys=True)
            fh.write("\n")
    # Rank 0's histogram history: the in-line analysis that must survive
    # every injected fault byte-for-byte.
    hist = job.writer_results and sorted(
        job.writer_results, key=lambda w: w["rank"]
    )[0]["results"].get("HistogramAnalysis")
    if hist:
        doc = [
            {
                "vmin": h.vmin,
                "vmax": h.vmax,
                "counts": [int(c) for c in h.counts],
            }
            for h in hist
        ]
        with open(
            os.path.join(out_dir, "histograms.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)


def render_report(report: dict[str, Any]) -> str:
    """Human-readable summary of a chaos run for the CLI."""
    acct = report["accounting"]
    ep = report["endpoint"]
    lines = [
        f"chaos run: seed={report['seed']} ranks={report['ranks']} "
        f"steps={report['steps']}",
        f"  faults injected: {sum(report['fault_counts'].values())} "
        f"({', '.join(f'{k}={v}' for k, v in report['fault_counts'].items()) or 'none'})",
        f"  staged in-transit: {acct['staged_steps']} steps "
        f"(endpoint analyzed {ep['steps_analyzed']}, "
        f"lost in flight {acct['lost_in_flight']})",
        f"  degraded to in-line: {acct['degraded_steps']} steps; "
        f"skipped: {acct['skipped_steps']}",
        f"  endpoint disconnect: "
        + (
            f"at round {ep['disconnected_at_step']}"
            if ep["disconnected_at_step"] is not None
            else "none"
        ),
        f"  rank deaths recovered: {acct['deaths']} "
        f"(checkpoint restores {acct['checkpoint_restores']})",
        "  all steps accounted for: yes",
    ]
    ctrl = report.get("controller")
    if ctrl is not None:
        acts = (
            ", ".join(f"step {s}: {a}" for s, a in ctrl["actions"]) or "none"
        )
        lines.append(
            f"  controller: {ctrl['decisions']} decisions ({acts}); "
            f"final placement {ctrl['final_config']['placement']}"
        )
    return "\n".join(lines)
