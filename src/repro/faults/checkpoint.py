"""Periodic checkpoint/restart of simulation state.

Rank death is the one fault retry cannot absorb: the work is gone.  The
recovery contract here is the standard HPC one -- checkpoint every ``k``
steps, and on death restore the last checkpoint and recompute forward.
:class:`CheckpointManager` holds per-rank in-memory snapshots of any object
exposing the ``snapshot()`` / ``restore(snap)`` pair
(:class:`~repro.miniapp.simulation.OscillatorSimulation` does); the chaos
harness drives the catch-up replay.
"""

from __future__ import annotations

from typing import Any, Protocol, TYPE_CHECKING, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import TraceRecorder


@runtime_checkable
class Checkpointable(Protocol):
    """Anything with value-semantics snapshot/restore of its state."""

    step: int

    def snapshot(self) -> dict: ...

    def restore(self, snap: dict) -> None: ...


class CheckpointManager:
    """Keeps the latest periodic snapshot of one rank's simulation.

    ``interval`` is in steps; :meth:`maybe_save` snapshots whenever the
    object's step is a multiple of it.  Only the most recent checkpoint is
    retained (the miniapp's state is one field block; production codes
    would rotate N).  :meth:`restore` rewinds and counts the restore --
    the count feeds the recovery report and the
    ``resilience::checkpoint_restores`` trace counter.
    """

    def __init__(self, interval: int = 5) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1 step")
        self.interval = interval
        self._snap: dict | None = None
        self._snap_step: int | None = None
        self.saves = 0
        self.restores = 0

    @property
    def last_step(self) -> int | None:
        """Step of the retained checkpoint (None before the first save)."""
        return self._snap_step

    def save(self, sim: Checkpointable) -> None:
        """Unconditionally checkpoint ``sim`` now."""
        self._snap = sim.snapshot()
        self._snap_step = sim.step
        self.saves += 1

    def maybe_save(self, sim: Checkpointable) -> bool:
        """Checkpoint if ``sim.step`` falls on the interval; returns
        whether a snapshot was taken."""
        if sim.step % self.interval == 0 and sim.step != self._snap_step:
            self.save(sim)
            return True
        return False

    def restore(
        self, sim: Checkpointable, trace: "TraceRecorder | None" = None
    ) -> int:
        """Rewind ``sim`` to the retained checkpoint; returns its step."""
        if self._snap is None:
            raise RuntimeError("no checkpoint to restore from")
        sim.restore(self._snap)
        self.restores += 1
        if trace is not None:
            trace.count("resilience::checkpoint_restores", 1)
        return sim.step

    def recover_step(
        self,
        sim: Any,
        advance: "callable",
        trace: "TraceRecorder | None" = None,
    ) -> int:
        """Restore and replay forward to just before the step that died.

        ``advance`` is the sim's step function (called with no arguments);
        the caller re-issues the failed step itself.  Returns the number of
        replayed steps.  One-shot death events do not re-fire during the
        replay (see :class:`~repro.faults.plan.FaultEvent`), so the replay
        terminates.
        """
        target = sim.step  # the step counter before the failed advance
        self.restore(sim, trace=trace)
        replayed = 0
        while sim.step < target:
            advance()
            replayed += 1
        return replayed
