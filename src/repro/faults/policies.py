"""Resilience policies: retry with backoff + jitter, circuit breaking.

These are the recovery half of the faults subsystem.  Policies are
deliberately deterministic where it matters for reproducibility: a
:class:`RetryPolicy`'s jitter is a pure hash of (seed, key, attempt), and a
:class:`CircuitBreaker`'s transitions are a pure function of the
success/failure sequence fed to it -- so two runs that observe the same
fault schedule take byte-identical recovery decisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

from repro.faults.plan import unit_draw

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import TraceRecorder


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter (the AWS-style scheme).

    Attempt ``k`` (0-based) may sleep up to ``min(max_delay, base_delay *
    2**k)`` seconds; the actual sleep is a uniform draw over [0, cap) --
    full jitter, which decorrelates retry storms across ranks hammering the
    same metadata server.  The draw is seeded + keyed, so a given (key,
    attempt) always jitters identically.
    """

    max_attempts: int = 4
    base_delay: float = 0.005
    max_delay: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry ``attempt`` (0 = first retry)."""
        cap = min(self.max_delay, self.base_delay * (2.0**attempt))
        return cap * unit_draw(self.seed, "retry", 0, attempt, salt=key)


def retry_call(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    retryable: tuple[type[BaseException], ...] = (OSError,),
    key: str = "",
    trace: "TraceRecorder | None" = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``fn``, retrying ``retryable`` failures under ``policy``.

    Counts each retry as ``resilience::retry`` on ``trace``.  The final
    attempt's exception propagates unwrapped so callers see the real error
    (with ``__context__`` chaining the earlier tries).
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retryable:
            if attempt >= policy.max_attempts - 1:
                raise
            if trace is not None:
                trace.count("resilience::retry", 1)
            backoff = policy.delay(attempt, key=key)
            if backoff > 0:
                sleep(backoff)
            attempt += 1


class CircuitBreaker:
    """Classic three-state breaker over a failing dependency.

    - **closed**: operations attempt normally; ``failure_threshold``
      consecutive failures trip the breaker open.
    - **open**: operations are refused (``allow()`` is False) for
      ``probe_interval`` refusals, avoiding a timeout penalty per step.
    - **half-open**: exactly one probe attempt is admitted; success closes
      the breaker, failure re-opens it.  Further ``allow()`` calls while
      that probe is unresolved are refused, so peers polling at different
      rates still admit the same single probe per episode.

    Transitions are a pure function of the ``allow``/``record_*`` call
    sequence, so peers fed the same consensus outcome stay in lockstep --
    the property the staging transport's collective fallback requires.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 2, probe_interval: int = 4) -> None:
        if failure_threshold < 1 or probe_interval < 1:
            raise ValueError("threshold and probe interval must be >= 1")
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.times_opened = 0
        self._refusals = 0
        #: True while a half-open probe has been admitted but not yet
        #: resolved by a ``record_*`` call -- the single-probe latch.
        self._probe_inflight = False

    def allow(self) -> bool:
        """Whether the next operation should be attempted."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.HALF_OPEN:
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True
        self._refusals += 1
        if self._refusals >= self.probe_interval:
            self.state = self.HALF_OPEN
            self._refusals = 0
            self._probe_inflight = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED
        self._probe_inflight = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self._probe_inflight = False
        if self.state == self.HALF_OPEN or (
            self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != self.OPEN:
                self.times_opened += 1
            self.state = self.OPEN
            self._refusals = 0

    def snapshot(self) -> dict:
        """Deterministic state summary for recovery reports."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "times_opened": self.times_opened,
        }
