"""The fault injector: draws scheduled faults and logs every injection.

One :class:`FaultInjector` is shared by every rank of a job (it travels on
the communicator context, see ``run_spmd(faults=...)``).  Call sites consult
it with :meth:`draw`; the injector resolves the plan's decision for that
site/rank occurrence, records the injection in a deterministic log, and
bumps the site's ``fault::injected`` trace counter when the caller passes
its rank's trace recorder.

The disabled path is a single ``is None`` check at every call site -- a job
run without faults pays one pointer comparison per hook and nothing else.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.faults.plan import FaultAction, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import TraceRecorder


class InjectedFault(RuntimeError):
    """Base class for exceptions raised *by* injected faults, so recovery
    code can distinguish synthetic failures from real bugs."""


class InjectedWriteError(InjectedFault, OSError):
    """An injected storage failure (failed or partial write)."""


class InjectedRankDeath(InjectedFault):
    """An injected rank death; carries the rank and step for recovery."""

    def __init__(self, rank: int, step: int) -> None:
        super().__init__(f"injected death of rank {rank} at step {step}")
        self.rank = rank
        self.step = step

    def __reduce__(self):
        # Default exception pickling would replay __init__ with the
        # formatted message; the process backend ships these across rank
        # boundaries, so reconstruct from (rank, step) instead.
        return (type(self), (self.rank, self.step))


class FaultInjector:
    """Mutable draw state + injection log over one immutable :class:`FaultPlan`.

    Thread safety: per-(site, rank) occurrence counters are only ever
    advanced from that rank's thread, but the counters dict, one-shot event
    set, and log are shared -- all mutations happen under one lock.  The
    lock is only taken when a plan is present, so it never touches the
    fault-free hot path.
    """

    def __init__(self, plan: FaultPlan) -> None:
        if isinstance(plan, FaultInjector):  # pragma: no cover - defensive
            raise TypeError("pass a FaultPlan, not an injector")
        self.plan = plan
        self._lock = threading.Lock()
        self._occurrences: dict[tuple[str, int], int] = {}
        self._fired_events: set[int] = set()
        #: Keyed (rule_index, rank): caps are per rank, so they drain in
        #: each rank's program order -- never in thread-scheduling order.
        self._rule_firings: dict[tuple[int, int], int] = {}
        self._log: list[dict] = []

    def draw(
        self,
        site: str,
        rank: int,
        step: int | None = None,
        trace: "TraceRecorder | None" = None,
    ) -> FaultAction | None:
        """Resolve the fault (if any) for this occurrence of ``site`` on
        ``rank``; log it and count ``fault::injected`` on ``trace``."""
        with self._lock:
            key = (site, rank)
            occurrence = self._occurrences.get(key, 0)
            self._occurrences[key] = occurrence + 1
            hit = self.plan.match(
                site,
                rank,
                occurrence,
                step,
                frozenset(self._fired_events),
                self._rule_firings,
            )
            if hit is None:
                return None
            action, event_idx, rule_idx = hit
            if event_idx is not None:
                self._fired_events.add(event_idx)
            if rule_idx is not None:
                key_rr = (rule_idx, rank)
                self._rule_firings[key_rr] = self._rule_firings.get(key_rr, 0) + 1
            self._log.append(
                {
                    "site": site,
                    "kind": action.kind,
                    "rank": rank,
                    "occurrence": occurrence,
                    "step": step,
                }
            )
        if trace is not None:
            trace.count("fault::injected", 1)
            trace.count(f"fault::{site}::{action.kind}", 1)
        return action

    def absorb_log(self, entries: list[dict]) -> None:
        """Merge injection-log entries drawn by another process.

        The process backend gives every rank process its own injector built
        from the same plan; per-(site, rank) draws are partitioned by rank,
        so folding the per-rank logs into the launcher's injector yields the
        same deterministic :meth:`schedule` the shared-injector thread
        backend produces.
        """
        with self._lock:
            self._log.extend(dict(e) for e in entries)

    # -- reporting ---------------------------------------------------------
    @property
    def injections(self) -> int:
        with self._lock:
            return len(self._log)

    def schedule(self) -> list[dict]:
        """The injection log in deterministic order.

        Log *append* order depends on thread scheduling; sorting by
        (site, rank, occurrence) -- a total key, since occurrence counters
        are per (site, rank) -- restores a schedule that is identical for
        identical runs, which the chaos determinism check relies on.
        """
        with self._lock:
            return sorted(
                (dict(e) for e in self._log),
                key=lambda e: (e["site"], e["rank"], e["occurrence"]),
            )

    def counts_by_kind(self) -> dict[str, int]:
        """Injection totals keyed ``site::kind`` (deterministic)."""
        out: dict[str, int] = {}
        with self._lock:
            for e in self._log:
                key = f"{e['site']}::{e['kind']}"
                out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items()))
