"""repro.faults -- deterministic fault injection + resilience policies.

The subsystem has two halves:

- **Injection** (:mod:`~repro.faults.plan`, :mod:`~repro.faults.injector`):
  a seeded, immutable :class:`FaultPlan` describes *what goes wrong when*
  (one-shot :class:`FaultEvent`\\ s and probabilistic :class:`FaultRule`\\ s
  over named sites); a :class:`FaultInjector` threads it through the MPI
  runtime, storage writers, the I/O model, and the staging transport.
  Every hook is behind a single ``is None`` check, so fault-free runs pay
  one pointer comparison per site.

- **Recovery** (:mod:`~repro.faults.policies`,
  :mod:`~repro.faults.checkpoint`): retry with exponential backoff + full
  jitter, circuit breaking for the staging transport's in-transit ->
  in-line degradation, and periodic checkpoint/restart for rank death.

Draws are counter-hashed (seed, site, rank, occurrence), never wall-clock
or RNG-stream based, so a given seed produces an identical fault schedule
and identical recovery decisions regardless of thread scheduling.
"""

from repro.faults.checkpoint import Checkpointable, CheckpointManager
from repro.faults.injector import (
    FaultInjector,
    InjectedFault,
    InjectedRankDeath,
    InjectedWriteError,
)
from repro.faults.plan import (
    KNOWN_SITES,
    SITE_MPI_COLLECTIVE,
    SITE_MPI_SEND,
    SITE_SERVICE_CLIENT,
    SITE_SERVICE_FRAME,
    SITE_SERVICE_STEP,
    SITE_SIM_STEP,
    SITE_STAGING_ENDPOINT,
    SITE_STAGING_QUEUE,
    SITE_STORAGE_WRITE,
    FaultAction,
    FaultEvent,
    FaultPlan,
    FaultRule,
    chaos_plan,
    unit_draw,
)
from repro.faults.policies import CircuitBreaker, RetryPolicy, retry_call

__all__ = [
    "Checkpointable",
    "CheckpointManager",
    "CircuitBreaker",
    "FaultAction",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InjectedRankDeath",
    "InjectedWriteError",
    "KNOWN_SITES",
    "RetryPolicy",
    "SITE_MPI_COLLECTIVE",
    "SITE_MPI_SEND",
    "SITE_SERVICE_CLIENT",
    "SITE_SERVICE_FRAME",
    "SITE_SERVICE_STEP",
    "SITE_SIM_STEP",
    "SITE_STAGING_ENDPOINT",
    "SITE_STAGING_QUEUE",
    "SITE_STORAGE_WRITE",
    "chaos_plan",
    "retry_call",
    "unit_draw",
]
