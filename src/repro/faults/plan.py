"""Deterministic, seed-driven fault schedules.

Extreme-scale in situ runs fail at three boundaries the paper measures:
the staging transport (a FlexPath endpoint disappears mid-stream, Sec.
2.2.3 / Figs. 8-9), the parallel filesystem (failed or wildly variable
Lustre writes, Table 1 / Figs. 10-11), and the MPI fabric itself
(stragglers, lost messages, dead ranks).  A :class:`FaultPlan` is a
*reproducible* schedule of such events: given the same seed and spec, every
run injects exactly the same faults at exactly the same program points,
which is what lets the chaos harness assert byte-identical recovery.

Determinism does not come from a shared RNG -- rank threads would race on
it -- but from counter hashing: each injection *site* keeps a per-rank
occurrence counter, and the decision for occurrence ``n`` is a pure
function ``blake2b(seed, site, rank, n)``.  Thread scheduling can reorder
wall-clock interleavings but never the per-rank draw sequence, because each
rank's calls at a site happen in that rank's program order.

Two scheduling forms:

- :class:`FaultEvent` -- an explicit one-shot event ("endpoint 0
  disconnects before ingesting step 4", "rank 2 dies at step 5").  Events
  fire exactly once; a checkpoint-restore replay passes through them.
- :class:`FaultRule` -- a probabilistic rule ("2% of sends are dropped"),
  drawn per occurrence via the counter hash, optionally capped.

Injection sites (the strings components pass to
:meth:`~repro.faults.injector.FaultInjector.draw`):

========================  =====================================================
site                      faults injected there
========================  =====================================================
``mpi.send``              ``drop`` / ``delay`` / ``duplicate`` (message level)
``mpi.collective``        ``stall`` (straggler rank entering a collective)
``sim.step``              ``die`` / ``stall`` (rank death, compute straggler)
``storage.write``         ``write_fail`` / ``write_partial`` / ``write_slow``
``staging.endpoint``      ``disconnect`` / ``stale_step`` (reader side)
``staging.queue``         ``queue_full`` (bounded staging queue, writer side)
``service.frame``         ``corrupt`` / ``duplicate`` / ``drop`` / ``delay``
                          (socket-transport wire faults, per tenant channel)
``service.client``        ``disconnect`` (client hangs up mid-step)
``service.step``          ``analysis_fail`` / ``stall`` (tenant endpoint
                          analysis failures behind the service bridge)
========================  =====================================================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Message-level faults on the simulated fabric.
SITE_MPI_SEND = "mpi.send"
#: Straggler injection at collective entry.
SITE_MPI_COLLECTIVE = "mpi.collective"
#: Rank-level faults in the simulation step loop.
SITE_SIM_STEP = "sim.step"
#: Filesystem faults in the storage writers.
SITE_STORAGE_WRITE = "storage.write"
#: Reader-side staging faults (the in-transit endpoint).
SITE_STAGING_ENDPOINT = "staging.endpoint"
#: Writer-side bounded-queue faults on the staging transport.
SITE_STAGING_QUEUE = "staging.queue"
#: Wire-level faults on the service socket transport (per tenant channel).
SITE_SERVICE_FRAME = "service.frame"
#: Client-side faults on the service transport (disconnect mid-step).
SITE_SERVICE_CLIENT = "service.client"
#: Tenant-endpoint analysis faults behind the service bridge.
SITE_SERVICE_STEP = "service.step"

KNOWN_SITES = frozenset(
    {
        SITE_MPI_SEND,
        SITE_MPI_COLLECTIVE,
        SITE_SIM_STEP,
        SITE_STORAGE_WRITE,
        SITE_STAGING_ENDPOINT,
        SITE_STAGING_QUEUE,
        SITE_SERVICE_FRAME,
        SITE_SERVICE_CLIENT,
        SITE_SERVICE_STEP,
    }
)


def unit_draw(seed: int, site: str, rank: int, occurrence: int, salt: str = "") -> float:
    """Uniform [0, 1) draw, a pure function of its arguments.

    The same (seed, site, rank, occurrence) always yields the same value,
    on any platform: blake2b is specified byte-exactly, unlike Python's
    ``hash``.  ``salt`` separates independent decision streams that share a
    site (e.g. "does a rule fire" vs "which jitter delay").
    """
    key = f"{seed}:{site}:{rank}:{occurrence}:{salt}".encode()
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class FaultAction:
    """What the injector tells a call site to do: a fault ``kind`` plus its
    parameters (delay seconds, partial-write fraction, ...)."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FaultEvent:
    """An explicit, one-shot scheduled fault.

    ``rank`` is the site-local rank (sender rank for ``mpi.send``, endpoint
    index for ``staging.endpoint``).  Either ``step`` or ``occurrence`` (or
    both) select *when* it fires: ``step`` matches the simulation/stream
    step the call site reports, ``occurrence`` the per-(site, rank) call
    count.  An event with neither fires on the rank's first draw at the
    site.  Events fire exactly once -- replayed work (checkpoint restart)
    passes through them, which is what makes rank-death recoverable.
    """

    site: str
    kind: str
    rank: int
    step: int | None = None
    occurrence: int | None = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def matches(self, site: str, rank: int, occurrence: int, step: int | None) -> bool:
        if site != self.site or rank != self.rank:
            return False
        if self.step is not None and step != self.step:
            return False
        if self.occurrence is not None and occurrence != self.occurrence:
            return False
        return True


@dataclass(frozen=True)
class FaultRule:
    """A probabilistic fault: fires on a fraction of a site's occurrences.

    ``ranks=None`` applies to every rank; ``max_firings`` caps how many
    times the rule fires per rank (None = unlimited).  The decision for a
    given occurrence is the counter hash -- independent of wall clock and
    thread schedule.
    """

    site: str
    kind: str
    probability: float
    ranks: frozenset[int] | None = None
    max_firings: int | None = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def applies_to(self, site: str, rank: int) -> bool:
        return site == self.site and (self.ranks is None or rank in self.ranks)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault events and rules.

    Immutable; all mutable draw state (occurrence counters, fired events,
    the injection log) lives in the :class:`~repro.faults.injector
    .FaultInjector` so one plan can drive many independent runs.
    """

    seed: int
    events: tuple[FaultEvent, ...] = ()
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        for spec in (*self.events, *self.rules):
            if spec.site not in KNOWN_SITES:
                raise ValueError(
                    f"unknown fault site {spec.site!r}; known: "
                    + ", ".join(sorted(KNOWN_SITES))
                )

    @property
    def empty(self) -> bool:
        return not self.events and not self.rules

    def match(
        self,
        site: str,
        rank: int,
        occurrence: int,
        step: int | None,
        fired_events: frozenset[int],
        rule_firings: Mapping[tuple[int, int], int],
    ) -> tuple[FaultAction, int | None, int | None] | None:
        """The pure scheduling decision for one occurrence.

        Returns ``(action, event_index, rule_index)`` for the first match
        (events take precedence over rules, in declaration order), or None.
        ``fired_events`` / ``rule_firings`` (keyed ``(rule_index, rank)``)
        carry the injector's one-shot and cap bookkeeping so this function
        stays side-effect free.  The firing cap is per rank by design, not
        merely by documentation: a cap shared across ranks would be eaten
        in thread-scheduling order and wreck schedule determinism.
        """
        for idx, ev in enumerate(self.events):
            if idx in fired_events:
                continue
            if ev.matches(site, rank, occurrence, step):
                return FaultAction(ev.kind, ev.params), idx, None
        for idx, rule in enumerate(self.rules):
            if not rule.applies_to(site, rank):
                continue
            cap = rule.max_firings
            if cap is not None and rule_firings.get((idx, rank), 0) >= cap:
                continue
            if unit_draw(self.seed, site, rank, occurrence, salt=f"rule{idx}") < rule.probability:
                return FaultAction(rule.kind, rule.params), None, idx
        return None


def chaos_plan(
    seed: int,
    n_writers: int,
    steps: int,
    kill_rank: bool = True,
    kill_endpoint: bool = True,
) -> FaultPlan:
    """The default end-to-end chaos schedule for ``repro chaos``.

    Seeded but structurally guaranteed: one endpoint disconnect and one
    writer-rank death always occur (at seed-chosen steps in the middle
    third of the run), layered over background message-level noise (delay /
    duplicate / drop on the fabric) and storage write failures -- the full
    set of failure modes the resilience policies must absorb.
    """
    if n_writers <= 0 or steps <= 2:
        raise ValueError("chaos_plan needs >= 1 writer and >= 3 steps")
    events: list[FaultEvent] = []
    lo, hi = steps // 3, max(steps // 3 + 1, 2 * steps // 3)
    if kill_rank:
        victim = int(unit_draw(seed, SITE_SIM_STEP, 0, 0, salt="victim") * n_writers)
        death_step = lo + int(
            unit_draw(seed, SITE_SIM_STEP, 0, 0, salt="death") * (hi - lo)
        )
        events.append(
            FaultEvent(SITE_SIM_STEP, "die", rank=victim, step=max(death_step, 2))
        )
    if kill_endpoint:
        disco_step = lo + int(
            unit_draw(seed, SITE_STAGING_ENDPOINT, 0, 0, salt="disco") * (hi - lo)
        )
        events.append(
            FaultEvent(SITE_STAGING_ENDPOINT, "disconnect", rank=0, step=disco_step)
        )
    rules = (
        FaultRule(SITE_MPI_SEND, "delay", 0.06, params={"seconds": 0.002}),
        FaultRule(SITE_MPI_SEND, "duplicate", 0.04),
        FaultRule(SITE_MPI_SEND, "drop", 0.02, params={"retransmit_after": 0.005}),
        FaultRule(SITE_STORAGE_WRITE, "write_fail", 0.15, max_firings=3),
        FaultRule(SITE_STORAGE_WRITE, "write_partial", 0.10, max_firings=2,
                  params={"fraction": 0.5}),
        FaultRule(SITE_SIM_STEP, "stall", 0.05, params={"seconds": 0.002}),
    )
    return FaultPlan(seed=seed, events=tuple(events), rules=rules)
