"""Separable oscillator field cache: trade memory for per-step time.

The miniapp's refill is O(m N^3) per rank per step (Sec. 3.3): every step
re-evaluates each oscillator's Gaussian footprint over the whole local
block.  But :meth:`Oscillator.evaluate` is separable,

    evaluate(x, y, z, t) = time_value(t) * gaussian(x, y, z),

and the Gaussian factor is time-invariant.  Stacking the m Gaussian basis
vectors once per rank turns each step's refill into a single BLAS
matrix-vector product::

    field.ravel() = basis @ [time_value_1(t), ..., time_value_m(t)]

which is the same space-time tradeoff libyt makes when it caches derived
fields across in situ invocations instead of recomputing them.  The cache
is opt-in and budgeted: the basis costs ``m * N^3 * 8`` bytes per rank,
which the paper's memory-footprint experiments (Figs. 4/7 methodology) must
see, so the basis registers with the per-rank
:class:`~repro.util.memory.MemoryTracker` under ``miniapp::kernel_cache``
and construction falls back (returns ``None``) when the basis would exceed
the configured byte budget.
"""

from __future__ import annotations

import numpy as np

from repro import accel
from repro.miniapp.oscillator import Oscillator
from repro.util.memory import MemoryTracker

#: MemoryTracker label under which the stacked Gaussian basis is charged.
MEMORY_LABEL = "miniapp::kernel_cache"


class FieldKernelCache:
    """Precomputed ``(n_points, m)`` Gaussian basis for a fixed local block.

    Parameters
    ----------
    oscillators:
        The oscillator set; column ``j`` of the basis is oscillator ``j``'s
        Gaussian footprint over the block.
    x, y, z:
        Broadcastable local physical coordinate arrays (the simulation's
        precomputed ``_x/_y/_z``).
    memory:
        Optional per-rank tracker; the basis is charged on construction and
        released by :meth:`release`.
    """

    def __init__(
        self,
        oscillators: list[Oscillator],
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
        memory: MemoryTracker | None = None,
    ) -> None:
        if not oscillators:
            raise ValueError("kernel cache requires at least one oscillator")
        self.oscillators = list(oscillators)
        # Column-per-oscillator layout keeps the hot matvec a contiguous
        # C-order GEMV: (n_points, m) @ (m,) -> (n_points,).
        cols = [osc.gaussian(x, y, z).reshape(-1) for osc in oscillators]
        self.basis = np.ascontiguousarray(np.stack(cols, axis=1))
        self._time_values = np.empty(len(oscillators), dtype=np.float64)
        self.memory = memory
        self._released = False
        if memory is not None:
            memory.allocate(self.basis.nbytes, label=MEMORY_LABEL)

    # -- sizing / budget ---------------------------------------------------
    @staticmethod
    def estimate_nbytes(n_points: int, n_oscillators: int) -> int:
        """Bytes the stacked basis would take, without building it."""
        return int(n_points) * int(n_oscillators) * 8

    @classmethod
    def build(
        cls,
        oscillators: list[Oscillator],
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
        max_bytes: int | None = None,
        memory: MemoryTracker | None = None,
    ) -> "FieldKernelCache | None":
        """Build the cache, or return ``None`` when it would bust the budget.

        ``max_bytes=None`` means unbudgeted; callers treat ``None`` as "use
        the streaming O(m N^3) path instead".
        """
        shape = np.broadcast_shapes(x.shape, y.shape, z.shape)
        need = cls.estimate_nbytes(int(np.prod(shape)), len(oscillators))
        if max_bytes is not None and need > max_bytes:
            return None
        return cls(oscillators, x, y, z, memory=memory)

    @property
    def nbytes(self) -> int:
        return self.basis.nbytes

    @property
    def n_points(self) -> int:
        return self.basis.shape[0]

    # -- evaluation --------------------------------------------------------
    def time_values(self, t: float) -> np.ndarray:
        """The m per-oscillator time signals at ``t`` (reused buffer)."""
        for j, osc in enumerate(self.oscillators):
            self._time_values[j] = osc.time_value(t)
        return self._time_values

    def evaluate_into(self, t: float, out: np.ndarray) -> np.ndarray:
        """Fill flat ``out`` with the summed convolved field at time ``t``.

        ``out`` must be a contiguous float64 view of length ``n_points``
        (e.g. ``field.reshape(-1)``); no temporaries are allocated.  The
        matvec dispatches through :mod:`repro.accel` (numba tier when
        available, BLAS otherwise; equivalent to rtol 1e-12).
        """
        if out.shape != (self.n_points,):
            raise ValueError(
                f"out must be flat with {self.n_points} points, got {out.shape}"
            )
        return accel.matvec_into(self.basis, self.time_values(t), out)

    def evaluate(self, t: float) -> np.ndarray:
        """Allocating convenience wrapper around :meth:`evaluate_into`."""
        return self.evaluate_into(t, np.empty(self.n_points, dtype=np.float64))

    # -- lifecycle ---------------------------------------------------------
    def release(self) -> None:
        """Return the basis' bytes to the tracker (idempotent)."""
        if self.memory is not None and not self._released:
            self.memory.free(self.basis.nbytes, label=MEMORY_LABEL)
        self._released = True
