"""Oscillator input files: parse on root, broadcast to all ranks.

"The oscillator parameters are specified as the input, which is read and
broadcast from the root process."  (Sec. 3.3.)

File format (one oscillator per line, ``#`` comments)::

    # kind   x    y    z    radius  omega   [zeta]
    damped   0.3  0.3  0.5  0.2     6.2832  0.1
    periodic 0.6  0.2  0.7  0.1     12.566
"""

from __future__ import annotations

from repro.miniapp.oscillator import Oscillator, OscillatorKind


class OscillatorInputError(ValueError):
    """Malformed oscillator input file."""


def parse_oscillators(text: str) -> list[Oscillator]:
    """Parse oscillator definitions from input text."""
    oscillators: list[Oscillator] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) not in (6, 7):
            raise OscillatorInputError(
                f"line {lineno}: expected 6 or 7 fields, got {len(fields)}"
            )
        try:
            kind = OscillatorKind(fields[0].lower())
        except ValueError:
            raise OscillatorInputError(
                f"line {lineno}: unknown oscillator kind {fields[0]!r}"
            ) from None
        try:
            x, y, z, radius, omega = (float(v) for v in fields[1:6])
            zeta = float(fields[6]) if len(fields) == 7 else 0.0
        except ValueError:
            raise OscillatorInputError(
                f"line {lineno}: non-numeric oscillator parameter"
            ) from None
        try:
            oscillators.append(Oscillator(kind, (x, y, z), radius, omega, zeta))
        except ValueError as exc:
            raise OscillatorInputError(f"line {lineno}: {exc}") from None
    if not oscillators:
        raise OscillatorInputError("input defines no oscillators")
    return oscillators


def format_oscillators(oscillators: list[Oscillator]) -> str:
    """Inverse of :func:`parse_oscillators` (for writing example inputs)."""
    lines = ["# kind x y z radius omega [zeta]"]
    for o in oscillators:
        base = (
            f"{o.kind.value} {o.center[0]:.17g} {o.center[1]:.17g} "
            f"{o.center[2]:.17g} {o.radius:.17g} {o.omega:.17g}"
        )
        if o.kind is OscillatorKind.DAMPED:
            base += f" {o.zeta:.17g}"
        lines.append(base)
    return "\n".join(lines) + "\n"


def read_oscillators(comm, path) -> list[Oscillator]:
    """Read the input file on rank 0 and broadcast the parsed oscillators.

    Errors on the root are broadcast too, so every rank raises consistently
    instead of rank 0 failing while others hang in the bcast.
    """
    payload: list[Oscillator] | OscillatorInputError | None = None
    if comm.rank == 0:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = parse_oscillators(fh.read())
        except (OSError, OscillatorInputError) as exc:
            payload = OscillatorInputError(str(exc))
    payload = comm.bcast(payload, root=0)
    if isinstance(payload, OscillatorInputError):
        raise payload
    return payload
