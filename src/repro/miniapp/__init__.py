"""The oscillator miniapplication (Sec. 3.3).

"As a prototypical data source, we implemented a miniapplication ... that
simulates a collection of periodic, damped, or decaying oscillators.  Placed
on a grid, each oscillator is convolved with a Gaussian of a prescribed
width. ... The code iteratively fills the grid cells with the sum of the
convolved oscillator values; the computation on each rank takes O(mN^3) per
time step."

This package reproduces that code: :class:`Oscillator` evaluates one
oscillator's time signal and Gaussian footprint; :func:`read_oscillators` /
:func:`parse_oscillators` handle the input file read-and-broadcast; and
:class:`OscillatorSimulation` is the SPMD miniapp with regular decomposition,
optional per-step synchronization, and a SENSEI data adaptor.
"""

from repro.miniapp.oscillator import Oscillator, OscillatorKind
from repro.miniapp.input import parse_oscillators, read_oscillators, format_oscillators
from repro.miniapp.kernel_cache import FieldKernelCache
from repro.miniapp.simulation import OscillatorSimulation

__all__ = [
    "Oscillator",
    "OscillatorKind",
    "parse_oscillators",
    "read_oscillators",
    "format_oscillators",
    "FieldKernelCache",
    "OscillatorSimulation",
]
