"""The oscillator miniapp SPMD driver.

Per Sec. 3.3: the user specifies the time resolution, duration, and grid
dimensions; the grid is partitioned between processes with a regular
decomposition; each step fills the local subgrid with the sum of the
convolved oscillator values (O(m N^3) per rank per step); ranks may
optionally synchronize after every step (off by default, as in the paper's
experiments).

The simulation owns its field array; the SENSEI instrumentation path exposes
it through a :class:`~repro.core.generic.LazyStructuredDataAdaptor`, so the
*Original* (no SENSEI) and *Baseline/analysis* (SENSEI) configurations of
Sec. 4.1.1 are both available from this one class.
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.core.generic import LazyStructuredDataAdaptor
from repro.data import Association
from repro.miniapp.oscillator import Oscillator
from repro.util.decomp import regular_decompose_3d
from repro.util.memory import MemoryTracker
from repro.util.timers import TimerRegistry, timed


class OscillatorSimulation:
    """One rank's share of the oscillator miniapp.

    Parameters
    ----------
    comm:
        Simulated MPI communicator.
    global_dims:
        Global grid point dimensions ``(nx, ny, nz)``.
    oscillators:
        The oscillator set (identical on all ranks; see
        :func:`repro.miniapp.input.read_oscillators`).
    dt:
        Time resolution.
    domain:
        Physical domain edge lengths; the grid spans ``[0, domain]``.
    sync:
        Synchronize (barrier) after every step.  "this synchronization is
        off in the experiments below" -- default False.
    kernel_cache:
        Opt in to the separable-kernel fast path: precompute the stacked
        Gaussian basis once (see
        :class:`~repro.miniapp.kernel_cache.FieldKernelCache`) and turn each
        :meth:`advance` into one BLAS matvec.  Numerically equivalent to the
        streaming path to machine precision.
    kernel_cache_budget:
        Byte budget for the basis; when the basis would exceed it the
        simulation silently falls back to the streaming O(m N^3) path
        (``use_kernel_cache`` reports which path is live).  ``None`` means
        unbudgeted.
    """

    FIELD_NAME = "data"

    def __init__(
        self,
        comm,
        global_dims: tuple[int, int, int],
        oscillators: list[Oscillator],
        dt: float = 0.01,
        domain: tuple[float, float, float] = (1.0, 1.0, 1.0),
        sync: bool = False,
        timers: TimerRegistry | None = None,
        memory: MemoryTracker | None = None,
        kernel_cache: bool = False,
        kernel_cache_budget: int | None = None,
    ) -> None:
        if not oscillators:
            raise ValueError("simulation requires at least one oscillator")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.comm = comm
        self.global_dims = global_dims
        self.oscillators = list(oscillators)
        self.dt = float(dt)
        self.sync = sync
        self.timers = timers if timers is not None else TimerRegistry()
        self.memory = memory
        self.time = 0.0
        self.step = 0
        # Inherit the rank's structured-trace recorder (run_spmd(trace=...))
        # unless the caller already wired one into the registry.
        if self.timers.trace is None:
            self.timers.attach_trace(getattr(comm, "trace_recorder", None))

        with timed(self.timers, "simulation::initialize"):
            self.extent, self.proc_grid, self.proc_coord = regular_decompose_3d(
                global_dims, comm.size, comm.rank
            )
            from repro.util.decomp import Extent

            self.whole_extent = Extent(
                0, global_dims[0] - 1, 0, global_dims[1] - 1, 0, global_dims[2] - 1
            )
            self.spacing = tuple(
                domain[a] / max(global_dims[a] - 1, 1) for a in range(3)
            )
            ni, nj, nk = self.extent.shape
            self.field = np.zeros((ni, nj, nk), dtype=np.float64)
            if self.memory is not None:
                self.memory.track_array(self.field, label="miniapp::field")
            # Precompute local physical coordinates (broadcastable 3-D).
            self._x = (
                self.spacing[0] * (self.extent.i0 + np.arange(ni))
            )[:, None, None]
            self._y = (
                self.spacing[1] * (self.extent.j0 + np.arange(nj))
            )[None, :, None]
            self._z = (
                self.spacing[2] * (self.extent.k0 + np.arange(nk))
            )[None, None, :]
            if self.memory is not None:
                for c in (self._x, self._y, self._z):
                    self.memory.track_array(np.ascontiguousarray(c.reshape(-1)))
            self.kernel_cache = None
            if kernel_cache:
                from repro.miniapp.kernel_cache import FieldKernelCache

                self.kernel_cache = FieldKernelCache.build(
                    self.oscillators,
                    self._x,
                    self._y,
                    self._z,
                    max_bytes=kernel_cache_budget,
                    memory=self.memory,
                )

    # -- SENSEI instrumentation -------------------------------------------------
    def make_data_adaptor(self, eager: bool = False) -> LazyStructuredDataAdaptor:
        """The miniapp's concrete SENSEI data adaptor (zero-copy provider)."""
        adaptor = LazyStructuredDataAdaptor(
            self.comm,
            self.extent,
            self.whole_extent,
            spacing=self.spacing,
            eager=eager,
        )
        adaptor.register_array(
            Association.POINT, self.FIELD_NAME, lambda: self.field
        )
        return adaptor

    # -- the solver -----------------------------------------------------------------
    @property
    def use_kernel_cache(self) -> bool:
        """Whether advance() runs on the cached-basis matvec fast path."""
        return self.kernel_cache is not None

    def advance(self) -> None:
        """One time step: refill the local block, advance the clock.

        Streaming path: O(m N^3) per step, the paper's cost model.  With the
        opt-in kernel cache the refill is a single matvec into the field's
        flat view -- same values to machine precision, no temporaries.
        """
        inj = getattr(self.comm, "fault_injector", None)
        if inj is not None:
            # Consulted before any state mutation: a death here leaves the
            # sim exactly at the last completed step, so checkpoint
            # restore + replay reconstructs it without a torn update.
            self._consult_injector(inj)
        rec = self.timers.trace
        if rec is not None:
            # Tag the span about to open (and everything nested under it)
            # with the step it computes, before the timer hook fires.
            rec.set_step(self.step + 1)
        with timed(self.timers, "simulation::advance"):
            self.time += self.dt
            self.step += 1
            if self.kernel_cache is not None:
                self.kernel_cache.evaluate_into(self.time, self.field.reshape(-1))
            else:
                self.field.fill(0.0)
                for osc in self.oscillators:
                    self.field += osc.evaluate(self._x, self._y, self._z, self.time)
            if self.sync:
                self.comm.barrier()

    def _consult_injector(self, inj) -> None:
        action = inj.draw(
            "sim.step",
            self.comm._draw_rank(),
            step=self.step + 1,
            trace=self.timers.trace,
        )
        if action is None:
            return
        if action.kind == "die":
            from repro.faults.injector import InjectedRankDeath

            raise InjectedRankDeath(self.comm.rank, self.step + 1)
        if action.kind == "stall":
            _time.sleep(float(action.params.get("seconds", 0.002)))

    # -- checkpoint/restart ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Value-semantics checkpoint of the rank's solver state."""
        return {
            "time": self.time,
            "step": self.step,
            "field": self.field.copy(),
        }

    def restore(self, snap: dict) -> None:
        """Rewind to a :meth:`snapshot`.  The field buffer is written in
        place so adaptors holding a reference stay valid."""
        self.time = float(snap["time"])
        self.step = int(snap["step"])
        np.copyto(self.field, snap["field"])

    def run(self, n_steps: int, bridge=None) -> None:
        """Run ``n_steps``; when a bridge is given, hand it every step.

        The bridge calling pattern is the paper's: per step, pass current
        data/time to the data adaptor and execute all analyses.
        """
        for _ in range(n_steps):
            self.advance()
            if bridge is not None:
                if not bridge.execute(self.time, self.step):
                    break

    # -- conveniences used by analyses/tests ------------------------------------------
    def local_values(self) -> np.ndarray:
        """The rank's current field block (no copy)."""
        return self.field

    def global_num_points(self) -> int:
        nx, ny, nz = self.global_dims
        return nx * ny * nz
