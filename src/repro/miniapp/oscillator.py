"""Oscillator kinds and their space-time evaluation.

Follows the SENSEI miniapp's oscillator semantics: each oscillator has a
center, a Gaussian ``radius``, an angular frequency ``omega``, and (for the
damped kind) a damping ratio ``zeta``:

- ``periodic``:  ``cos(omega t)``
- ``damped``:    underdamped harmonic response
  ``exp(-zeta omega t) (cos(w_d t) + zeta/sqrt(1-zeta^2) sin(w_d t))`` with
  ``w_d = omega sqrt(1 - zeta^2)``
- ``decaying``:  pure exponential decay ``exp(-omega t)``

The spatial footprint is a Gaussian ``exp(-|p - center|^2 / (2 radius^2))``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np


class OscillatorKind(enum.Enum):
    PERIODIC = "periodic"
    DAMPED = "damped"
    DECAYING = "decaying"


@dataclass(frozen=True)
class Oscillator:
    """One oscillator: kind, center, Gaussian radius, omega, zeta."""

    kind: OscillatorKind
    center: tuple[float, float, float]
    radius: float
    omega: float
    zeta: float = 0.0

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("oscillator radius must be positive")
        if self.omega <= 0:
            raise ValueError("oscillator omega must be positive")
        if self.kind is OscillatorKind.DAMPED and not 0.0 < self.zeta < 1.0:
            raise ValueError("damped oscillator requires 0 < zeta < 1")
        # Derived constants for the damped response, computed once here so
        # time_value (called every step on the solver hot path) does not pay
        # two sqrt calls per invocation.  The dataclass is frozen, hence
        # object.__setattr__.
        if self.kind is OscillatorKind.DAMPED:
            root = math.sqrt(1.0 - self.zeta * self.zeta)
            object.__setattr__(self, "_wd", self.omega * root)
            object.__setattr__(self, "_zeta_ratio", self.zeta / root)
        else:
            object.__setattr__(self, "_wd", self.omega)
            object.__setattr__(self, "_zeta_ratio", 0.0)

    def time_value(self, t: float) -> float:
        """The oscillator's (spatially unweighted) signal at time ``t``."""
        if self.kind is OscillatorKind.PERIODIC:
            return math.cos(self.omega * t)
        if self.kind is OscillatorKind.DAMPED:
            decay = math.exp(-self.zeta * self.omega * t)
            return decay * (
                math.cos(self._wd * t) + self._zeta_ratio * math.sin(self._wd * t)
            )
        return math.exp(-self.omega * t)  # decaying

    def gaussian(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> np.ndarray:
        """Gaussian spatial weight at broadcastable coordinate arrays."""
        d2 = (
            (x - self.center[0]) ** 2
            + (y - self.center[1]) ** 2
            + (z - self.center[2]) ** 2
        )
        return np.exp(-d2 / (2.0 * self.radius * self.radius))

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray, t: float
    ) -> np.ndarray:
        """Convolved contribution at time ``t``: ``time_value * gaussian``."""
        return self.time_value(t) * self.gaussian(x, y, z)


def default_oscillators() -> list[Oscillator]:
    """The three-oscillator default input used by tests and examples,
    patterned after SENSEI's ``sample.osc``."""
    return [
        Oscillator(OscillatorKind.DAMPED, (0.3, 0.3, 0.5), 0.2, 2.0 * math.pi, 0.1),
        Oscillator(OscillatorKind.DECAYING, (0.7, 0.7, 0.3), 0.15, 3.0),
        Oscillator(OscillatorKind.PERIODIC, (0.6, 0.2, 0.7), 0.1, 4.0 * math.pi),
    ]
