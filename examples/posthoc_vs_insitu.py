#!/usr/bin/env python
"""In situ vs post hoc, end to end (Secs. 4.1.5, Figs. 10-12).

Runs the same workload twice at laptop scale:

1. **in situ** -- miniapp + SENSEI histogram, nothing written but results;
2. **post hoc** -- miniapp + file-per-process write every step, then a
   separate reader job on 1/4 of the cores that reads everything back and
   computes the identical histogram.

Prints the phase breakdown and the end-to-end comparison; also validates
that the two paths produce bit-identical histograms.

Usage::

    python examples/posthoc_vs_insitu.py [nranks] [grid_edge] [steps]
"""

import sys
import tempfile

import numpy as np

from repro.analysis import HistogramAnalysis
from repro.core import Bridge
from repro.data import Association
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.posthoc import run_posthoc_analysis
from repro.storage import write_timestep
from repro.util import TimerRegistry

NRANKS = int(sys.argv[1]) if len(sys.argv) > 1 else 4
EDGE = int(sys.argv[2]) if len(sys.argv) > 2 else 24
STEPS = int(sys.argv[3]) if len(sys.argv) > 3 else 6
DIMS = (EDGE, EDGE, EDGE)
BINS = 32


def insitu_job(comm):
    timers = TimerRegistry()
    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.05, timers=timers)
    bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
    hist = HistogramAnalysis(bins=BINS)
    bridge.add_analysis(hist)
    bridge.initialize()
    sim.run(STEPS, bridge)
    bridge.finalize()
    return {
        "sim": timers.total("simulation::advance"),
        "analysis": timers.total("sensei::execute"),
        "hist": hist.history if comm.rank == 0 else None,
    }


def writer_job(comm, directory):
    timers = TimerRegistry()
    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.05, timers=timers)
    adaptor = sim.make_data_adaptor()
    for _ in range(STEPS):
        sim.advance()
        with timers.time("io::write"):
            mesh = adaptor.get_mesh()
            mesh.add_array(Association.POINT, adaptor.get_array(Association.POINT, "data"))
            write_timestep(comm, directory, sim.step, sim.time, mesh, "data")
        adaptor.release_data()
    return {
        "sim": timers.total("simulation::advance"),
        "write": timers.total("io::write"),
    }


def main():
    directory = tempfile.mkdtemp(prefix="posthoc_demo_")
    readers = max(NRANKS // 4, 1)

    insitu = run_spmd(NRANKS, insitu_job)
    writes = run_spmd(NRANKS, writer_job, directory)
    posthoc = run_spmd(
        readers,
        lambda comm: run_posthoc_analysis(
            comm, directory, steps=list(range(1, STEPS + 1)),
            analysis="histogram", bins=BINS,
        ),
    )

    sim_t = max(r["sim"] for r in insitu)
    ana_t = max(r["analysis"] for r in insitu)
    write_t = max(r["write"] for r in writes)
    read_t = max(r.read_time for r in posthoc)
    proc_t = max(r.process_time for r in posthoc)

    print(f"workload: {DIMS} grid, {STEPS} steps, {NRANKS} writers, {readers} readers\n")
    print(f"in situ   : sim {sim_t:7.4f}s + analysis {ana_t:7.4f}s = {sim_t + ana_t:7.4f}s")
    print(
        f"post hoc  : sim {sim_t:7.4f}s + write {write_t:7.4f}s"
        f" + read {read_t:7.4f}s + process {proc_t:7.4f}s"
        f" = {sim_t + write_t + read_t + proc_t:7.4f}s"
    )
    overhead = (write_t + read_t + proc_t) / max(ana_t, 1e-9)
    print(f"\npost hoc I/O+analysis costs {overhead:,.0f}x the in situ analysis here")

    # Correctness: identical histograms through both paths.
    ref = insitu[0]["hist"]
    got = posthoc[0].histograms
    for a, b in zip(ref, got):
        assert np.array_equal(a.counts, b.counts), "histogram mismatch!"
    print("histograms from both paths are bit-identical over every step")


if __name__ == "__main__":
    main()
