#!/usr/bin/env python
"""PHASTA-style live flow-control exploration (Sec. 4.2.1 / Fig. 13).

Simulates flow over a vertical tail with a synthetic jet at the separation
point, rendering a velocity-magnitude slice through the tail each step --
the imagery PHASTA's engineers used to "interactively determine the
combination [of jet frequency and amplitude] that ... provide the most
improvement".  We run the proxy at two jet settings and report how the wake
changes, closing the same loop offline.

Usage::

    python examples/phasta_tail.py [output_dir]
"""

import sys

import numpy as np

from repro.apps.phasta_proxy import PhastaSimulation, PhastaSliceRender
from repro.core import Bridge
from repro.mpi import run_spmd
from repro.render import decode_png

OUTPUT_DIR = sys.argv[1] if len(sys.argv) > 1 else "phasta_output"


def run_case(label, jet_freq, jet_amplitude):
    def program(comm):
        sim = PhastaSimulation(
            comm,
            global_cells=(24, 12, 12),
            jet_freq=jet_freq,
            jet_amplitude=jet_amplitude,
        )
        bridge = Bridge(comm, sim.make_data_adaptor())
        slicer = PhastaSliceRender(
            axis=1,
            coordinate=0.3,
            resolution=(400, 100),
            output_dir=f"{OUTPUT_DIR}/{label}",
        )
        bridge.add_analysis(slicer)
        bridge.initialize()
        sim.run(6, bridge)
        bridge.finalize()
        # Wake intensity: mean u behind the tail, reduced across ranks
        # (the wake region may live entirely on high-x ranks).
        from repro.mpi import SUM

        sel = (sim.x > 0.4) & (np.abs(sim.z - 0.5) < 0.2) & (np.abs(sim.y - 0.3) < 0.2)
        total = comm.allreduce(float((sim.vel_w[sel] ** 2).sum()), SUM)
        count = comm.allreduce(int(sel.sum()), SUM)
        if comm.rank == 0:
            return slicer.last_png, float(np.sqrt(total / max(count, 1)))
        return None

    return run_spmd(4, program)[0]


def main():
    print("PHASTA proxy: vertical tail with synthetic-jet flow control")
    print(f"slice images -> {OUTPUT_DIR}/<case>/\n")
    cases = [
        ("jet_off", 8.0, 0.0),
        ("jet_tuned", 8.0, 0.6),
    ]
    results = {}
    for label, freq, amp in cases:
        png, jet_rms = run_case(label, freq, amp)
        img = decode_png(png)
        results[label] = jet_rms
        print(
            f"  {label:<10} freq={freq:>4.1f} amp={amp:>4.2f}  "
            f"jet-region w_rms = {jet_rms:.4f}   image {img.shape[1]}x{img.shape[0]}"
        )
    gain = results["jet_tuned"] - results["jet_off"]
    print(
        f"\njet actuation raises the cross-flow RMS near separation by {gain:+.4f} "
        "-- inspect the slice PNGs to see its signature, as the paper's "
        "engineers did live."
    )


if __name__ == "__main__":
    main()
