#!/usr/bin/env python
"""Quickstart: instrument a simulation once, run multiple in situ analyses.

This is the SENSEI pattern from the paper in ~40 lines of user code:

1. run the oscillator miniapplication on a simulated 8-rank MPI world;
2. attach a SENSEI bridge with three analyses -- a histogram, a temporal
   autocorrelation, and a Catalyst-style slice render;
3. print the histogram and the autocorrelation top-k, and write a PNG.

Usage::

    python examples/quickstart.py [output_dir]
"""

import sys

from repro.analysis import AutocorrelationAnalysis, HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.core import Bridge
from repro.infrastructure import CatalystAdaptor
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd

OUTPUT_DIR = sys.argv[1] if len(sys.argv) > 1 else "quickstart_output"
DIMS = (32, 32, 32)
STEPS = 10


def program(comm):
    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.05)

    bridge = Bridge(comm, sim.make_data_adaptor())
    histogram = HistogramAnalysis(bins=24)
    autocorr = AutocorrelationAnalysis(window=4, k=3)
    catalyst = CatalystAdaptor(
        plane=SlicePlane(axis=2, index=DIMS[2] // 2),
        resolution=(320, 240),
        output_dir=OUTPUT_DIR,
    )
    for analysis in (histogram, autocorr, catalyst):
        bridge.add_analysis(analysis)

    bridge.initialize()
    sim.run(STEPS, bridge)
    results = bridge.finalize()
    return results if comm.rank == 0 else None


def main():
    results = run_spmd(8, program)[0]

    hist = results["HistogramAnalysis"][-1]
    print(f"final-step histogram over [{hist.vmin:.3f}, {hist.vmax:.3f}]:")
    bar_unit = max(hist.counts.max() // 40, 1)
    for lo, hi, count in zip(hist.edges, hist.edges[1:], hist.counts):
        print(f"  [{lo:+.3f}, {hi:+.3f})  {'#' * int(count // bar_unit)} {count}")

    ac = results["AutocorrelationAnalysis"]
    print("\ntop-3 autocorrelations per delay (value, flat cell index):")
    for delay, top in enumerate(ac.top):
        pretty = ", ".join(f"({v:.1f}, {i})" for v, i in top)
        print(f"  delay {delay}: {pretty}")

    print(f"\nwrote {STEPS} slice images to {OUTPUT_DIR}/")


if __name__ == "__main__":
    main()
