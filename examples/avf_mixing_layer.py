#!/usr/bin/env python
"""AVF-LESLIE temporal mixing layer with Libsim in situ (Sec. 4.2.2, Fig. 14).

Runs the compressible TML proxy with the paper's visualization session --
3 isosurfaces + 3 slice planes of vorticity magnitude, rendered every 5th
time step -- and prints the per-iteration SENSEI cost series showing the
Fig. 16 sawtooth (cheap steps punctuated by expensive Libsim invocations).

Usage::

    python examples/avf_mixing_layer.py [output_dir] [steps]
"""

import sys
import time

from repro.apps.avf_leslie_proxy import AVFLeslieSimulation
from repro.core import Bridge
from repro.infrastructure import LibsimAdaptor, write_session_file
from repro.mpi import run_spmd

OUTPUT_DIR = sys.argv[1] if len(sys.argv) > 1 else "avf_output"
STEPS = int(sys.argv[2]) if len(sys.argv) > 2 else 15


def program(comm):
    session = f"{OUTPUT_DIR}/session.json"
    if comm.rank == 0:
        import os

        os.makedirs(OUTPUT_DIR, exist_ok=True)
        write_session_file(
            session,
            [
                {"type": "isosurface", "isovalues": [1.0, 3.0, 6.0], "colormap": "viridis"},
                {"type": "pseudocolor_slice", "axis": 0, "index": 8, "colormap": "cool_warm"},
                {"type": "pseudocolor_slice", "axis": 1, "index": 8, "colormap": "cool_warm"},
                {"type": "pseudocolor_slice", "axis": 2, "index": 4, "colormap": "cool_warm"},
            ],
            resolution=(400, 400),
        )
    comm.barrier()

    sim = AVFLeslieSimulation(comm, global_dims=(24, 24, 12), mach=0.5)
    bridge = Bridge(comm, sim.make_data_adaptor(), timers=sim.timers)
    libsim = LibsimAdaptor(
        session_file=session, array="vorticity", frequency=5, output_dir=OUTPUT_DIR
    )
    bridge.add_analysis(libsim)
    bridge.initialize()

    per_iteration = []
    for _ in range(STEPS):
        sim.advance()
        t0 = time.perf_counter()
        bridge.execute(sim.time, sim.step)
        per_iteration.append(time.perf_counter() - t0)
    bridge.finalize()
    if comm.rank == 0:
        return per_iteration, libsim.images_written, sim.timers.total("avf_timestep") / STEPS
    return None


def main():
    per_iteration, images, solver_step = run_spmd(4, program)[0]
    print("AVF-LESLIE TML proxy: per-iteration SENSEI cost (Fig. 16 sawtooth)")
    print(f"solver ~{solver_step:.4f}s/step; Libsim every 5th step\n")
    peak = max(per_iteration)
    for step, cost in enumerate(per_iteration, start=1):
        bar = "#" * int(40 * cost / peak)
        marker = "  <- Libsim render" if step % 5 == 0 else ""
        print(f"  step {step:>3}  {cost:8.4f}s  {bar}{marker}")
    print(f"\nwrote {images} visualization frames to {OUTPUT_DIR}/")


if __name__ == "__main__":
    main()
