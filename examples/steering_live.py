#!/usr/bin/env python
"""Live computational steering (Secs. 2.2.3, 4.2.1).

The PHASTA study's headline capability: "SENSEI provides live,
reconfigurable data analytics from an ongoing simulation ... the frequency
and the amplitude of the flow control can be manipulated to interactively
determine the combination that ... provide[s] the most improvement."

Here the "engineer" is a controller thread running a simple optimization
loop against the live connection: it watches the published jet-response
metric, tries a sweep of jet amplitudes mid-run, and settles on the best --
while the simulation keeps running and publishing slice imagery.

Usage::

    python examples/steering_live.py [output_dir]
"""

import sys
import threading

import numpy as np

from repro.apps.phasta_proxy import PhastaSimulation, PhastaSliceRender
from repro.core import Bridge, LiveConnection, SteeringAnalysis
from repro.mpi import run_spmd

OUTPUT_DIR = sys.argv[1] if len(sys.argv) > 1 else "steering_output"
STEPS = 24
CANDIDATE_AMPLITUDES = [0.1, 0.3, 0.5, 0.8]

connection = LiveConnection()
log: list[str] = []


def controller() -> None:
    """The 'engineer': sweeps amplitudes, watching the live metric."""
    responses = {}
    for amp in CANDIDATE_AMPLITUDES:
        connection.submit_update(jet_amplitude=amp)
        # Wait for a few steps of metric under this setting.
        seen = len(connection.metrics())
        while len(connection.metrics()) < seen + 4:
            frame = connection.wait_for_frame(min_step=0, timeout=0.5)
            _ = frame  # live imagery available while waiting
        window = [v for _, _, v in connection.metrics()[-3:]]
        responses[amp] = float(np.mean(window))
        log.append(f"controller: amp={amp:.1f} -> response {responses[amp]:.4f}")
    best = max(responses, key=responses.get)
    log.append(f"controller: locking in amp={best:.1f}")
    connection.submit_update(jet_amplitude=best)


def simulation(comm):
    sim = PhastaSimulation(comm, (12, 8, 8), jet_amplitude=0.0)
    slicer = PhastaSliceRender(resolution=(160, 40), output_dir=OUTPUT_DIR)
    steering = SteeringAnalysis(
        connection,
        parameters={"jet_amplitude": lambda v: setattr(sim, "jet_amplitude", v)},
        metric=lambda data: float(np.abs(sim.vel_w).max()),
        frame_source=slicer,
    )
    bridge = Bridge(comm, sim.make_data_adaptor())
    bridge.add_analysis(slicer)
    bridge.add_analysis(steering)
    bridge.initialize()
    sim.run(STEPS, bridge)
    bridge.finalize()
    return sim.jet_amplitude if comm.rank == 0 else None


def main():
    ctrl = threading.Thread(target=controller, name="engineer")
    ctrl.start()
    final_amp = run_spmd(2, simulation)[0]
    connection.request_stop()
    ctrl.join(timeout=10)

    print("live steering session (controller thread vs running simulation):\n")
    for line in log:
        print(f"  {line}")
    print(f"\nsimulation finished with jet_amplitude = {final_amp:.1f}")
    print(f"live slice frames in {OUTPUT_DIR}/")
    metrics = connection.metrics()
    print(f"{len(metrics)} metric samples published during the run")


if __name__ == "__main__":
    main()
