#!/usr/bin/env python
"""Traced run: structured spans/counters, Perfetto export, model overlay.

The observability workflow from the paper's measurement methodology
(Sec. 4.1.1), end to end:

1. run the oscillator miniapp on a 4-rank simulated MPI world with a
   :class:`~repro.trace.TraceSession` attached -- every ``timed()`` phase
   becomes a per-rank span, every collective a byte counter;
2. export the measured timeline as Chrome trace JSON (drop the file on
   https://ui.perfetto.dev to browse it);
3. render the one-time / per-timestep phase breakdown, mean and max across
   ranks -- the paper's Fig. 5/6 table shape;
4. emit the *modeled* timeline for the same configuration from the
   calibrated performance model and diff it against the measurement (the
   SIM-SITU calibration loop).

Usage::

    python examples/traced_run.py [output_dir]
"""

import os
import sys

from repro.analysis import HistogramAnalysis
from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.perf.miniapp_model import MiniappConfig, MiniappModel
from repro.trace import (
    TraceSession,
    diff_reports,
    render_report,
    report_from_session,
    session_from_breakdown,
    validate_chrome_trace,
)

OUTPUT_DIR = sys.argv[1] if len(sys.argv) > 1 else "traced_run_output"
RANKS = 4
DIMS = (32, 32, 32)
STEPS = 8


def program(comm):
    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.05)
    bridge = Bridge(comm, sim.make_data_adaptor())
    bridge.add_analysis(HistogramAnalysis(bins=24))
    bridge.initialize()
    sim.run(STEPS, bridge)
    bridge.finalize()
    return sim.timers.as_dict()


def main():
    os.makedirs(OUTPUT_DIR, exist_ok=True)

    # 1. measured: the hooks attach themselves through the communicator.
    measured = TraceSession(name="measured")
    run_spmd(RANKS, program, trace=measured)

    # 2. export for Perfetto, and prove the file is schema-clean.
    trace_path = os.path.join(OUTPUT_DIR, "measured.json")
    measured.export(trace_path)
    problems = validate_chrome_trace(measured.to_chrome())
    assert not problems, problems
    print(f"wrote {trace_path} (load it at https://ui.perfetto.dev)\n")

    # 3. the Sec. 4.1.1 phase breakdown.
    report = report_from_session(measured)
    print(render_report(report))

    # 4. modeled spans in the same schema, diffed per phase.  The model is
    #    calibrated for Cori scales; a tiny laptop-size run will not match
    #    it -- which is exactly what the ratio column is for.
    config = MiniappConfig(cores=RANKS, points_per_core=DIMS[0] * DIMS[1] * DIMS[2] // RANKS)
    breakdown = MiniappModel(config).histogram()
    modeled = session_from_breakdown(breakdown, steps=STEPS, ranks=RANKS)
    modeled_path = os.path.join(OUTPUT_DIR, "modeled.json")
    modeled.export(modeled_path)
    print(f"\nwrote {modeled_path}")
    print()
    print(diff_reports(report, report_from_session(modeled)))


if __name__ == "__main__":
    main()
