#!/usr/bin/env python
"""N-body miniapp in situ: one particle workload, all four infrastructures.

The particle-mesh N-body miniapp (ragged per-rank particle counts,
migration every step) runs once behind a sanitized SENSEI bridge with:

- the three particle analyses (density projection PNGs, radially binned
  power spectrum, friends-of-friends halo counts), and
- all four infrastructure endpoints (Catalyst slice, libsim session,
  ADIOS BP, GLEAN aggregation) rendering/shipping the density grid.

Because mass deposits use exact fixed-point integers, re-running with a
different rank count or SPMD backend reproduces every artifact byte for
byte -- the example proves it by running at 1 and 2 ranks and comparing
the manifests.

Usage::

    python examples/nbody_insitu.py [output_dir]
"""

import sys

from repro.apps.nbody import run_nbody

OUTPUT_DIR = sys.argv[1] if len(sys.argv) > 1 else "nbody_output"
STEPS = 4
GRID = 16
PARTICLES = 400


def main():
    manifest = run_nbody(
        f"{OUTPUT_DIR}/r2",
        ranks=2,
        steps=STEPS,
        grid=GRID,
        n_particles=PARTICLES,
    )
    print(f"{STEPS} steps at 2 ranks:")
    print(f"  particles migrated: {manifest['migrated']}")
    print(f"  final per-rank counts: {manifest['final_counts']}")
    print(f"  density projection CRCs: {manifest['density_png_crcs']}")
    print(f"  halo counts per step: {manifest['halo_counts']}")

    solo = run_nbody(
        f"{OUTPUT_DIR}/r1",
        ranks=1,
        steps=STEPS,
        grid=GRID,
        n_particles=PARTICLES,
    )
    same = all(
        solo[k] == manifest[k]
        for k in (
            "density_png_crcs",
            "power_spectrum",
            "halo_counts",
            "catalyst_png_crc",
            "libsim_png_crc",
        )
    )
    print(f"\n1-rank rerun artifacts identical: {'yes' if same else 'NO'}")
    print(f"artifacts in {OUTPUT_DIR}/r2/ (manifest.json, PNGs, steps.bp)")


if __name__ == "__main__":
    main()
