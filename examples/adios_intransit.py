#!/usr/bin/env python
"""In transit analysis through the ADIOS/FlexPath staging path (Sec. 4.1.4).

Launches one SPMD job containing two "executables": 4 writer ranks running
the oscillator miniapp + SENSEI + the FlexPath writer adaptor, and 2
endpoint ranks hosting a histogram analysis.  Prints the writer's
``adios::advance`` / ``adios::analysis`` timings (Fig. 8) and the
endpoint's phase timings (Fig. 9).

Usage::

    python examples/adios_intransit.py
"""

from repro.analysis import HistogramAnalysis
from repro.core import Bridge
from repro.infrastructure.adios import run_flexpath_job
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import Communicator
from repro.util import TimerRegistry

DIMS = (24, 24, 24)
STEPS = 8


def writer_program(comm: Communicator, writer):
    timers = TimerRegistry()
    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.05, timers=timers)
    bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
    bridge.add_analysis(writer)
    bridge.initialize()
    sim.run(STEPS, bridge)
    bridge.finalize()
    return timers.as_dict()


def main():
    result = run_flexpath_job(
        n_writers=4,
        n_endpoints=2,
        writer_program=writer_program,
        analysis_factory=lambda comm: HistogramAnalysis(bins=24),
    )

    print("ADIOS FlexPath in transit: 4 writers -> 2 endpoints, histogram\n")
    print("writer-side per-step costs (Fig. 8):")
    t = result.writer_results[0]
    for phase in ("adios::advance", "adios::analysis", "simulation::advance"):
        row = t[phase]
        print(f"  {phase:<22} mean {row['mean'] * 1e3:8.3f} ms over {int(row['count'])} steps")

    print("\nendpoint-side costs (Fig. 9):")
    et = result.endpoint_results[0]["timers"]
    for phase in ("endpoint::initialize", "endpoint::receive", "endpoint::analysis", "endpoint::finalize"):
        row = et[phase]
        print(f"  {phase:<22} total {row['total'] * 1e3:8.3f} ms ({int(row['count'])} calls)")

    history = result.endpoint_results[0]["result"]
    final = history[-1]
    print(
        f"\nstaged histogram, final step: {final.total} values in "
        f"[{final.vmin:.3f}, {final.vmax:.3f}] across {final.bins} bins"
    )
    print("identical to what the inline (in situ) histogram produces --")
    print("the write-once, use-anywhere chain of the paper's Fig. 2.")


if __name__ == "__main__":
    main()
