#!/usr/bin/env python
"""Nyx-style cosmology with in situ analysis (Sec. 4.2.3, Figs. 17-18).

Runs the particle-mesh proxy under self-gravity, computing an in situ
density histogram every step and a Catalyst density slice every step --
versus the post hoc practice of dumping a plot file "every 100th time
step", which Fig. 18 shows is too coarse to track features.  We render a
slice at every step and at a sparse cadence, and report how much the field
changed between sparse snapshots.

Usage::

    python examples/nyx_lya.py [output_dir] [steps]
"""

import sys

import numpy as np

from repro.analysis import HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.apps.nyx_proxy import NyxSimulation
from repro.core import Bridge
from repro.infrastructure.catalyst import CatalystAdaptor
from repro.mpi import run_spmd

OUTPUT_DIR = sys.argv[1] if len(sys.argv) > 1 else "nyx_output"
STEPS = int(sys.argv[2]) if len(sys.argv) > 2 else 12
GRID = 24


def program(comm):
    sim = NyxSimulation(comm, grid=GRID, gravity=6.0, dt=0.08, seed=17)
    bridge = Bridge(comm, sim.make_data_adaptor())
    hist = HistogramAnalysis(bins=20, array="density")
    catalyst = CatalystAdaptor(
        plane=SlicePlane(axis=2, index=GRID // 2),
        array="density",
        resolution=(320, 320),
        output_dir=OUTPUT_DIR,
    )
    bridge.add_analysis(hist)
    bridge.add_analysis(catalyst)
    bridge.initialize()

    snapshots = {}
    for _ in range(STEPS):
        sim.advance()
        bridge.execute(sim.time, sim.step)
        if sim.step in (1, STEPS // 2, STEPS):
            snapshots[sim.step] = sim.density[1:-1].copy()
    bridge.finalize()
    if comm.rank == 0:
        return hist.history, snapshots
    return None


def main():
    history, snapshots = run_spmd(2, program)[0]
    print(f"Nyx proxy: {GRID}^3 PM gravity, {STEPS} steps, in situ histogram + slice")
    print(f"slice PNGs (every step) -> {OUTPUT_DIR}/\n")

    print("density-histogram evolution (structure formation = growing tail):")
    for step in (0, len(history) // 2, len(history) - 1):
        h = history[step]
        over = int(h.counts[len(h.counts) // 2 :].sum())
        print(
            f"  step {step + 1:>3}: max overdensity {h.vmax:7.2f}, "
            f"cells above median bin: {over}"
        )

    steps = sorted(snapshots)
    a, b = snapshots[steps[0]], snapshots[steps[-1]]
    change = float(np.abs(b - a).mean())
    print(
        f"\nfield change between sparse snapshots (steps {steps[0]} -> {steps[-1]}): "
        f"mean |delta| = {change:.3f} -- the Fig. 18 point: per-step in situ"
        " imagery tracks features that sparse plot files miss."
    )


if __name__ == "__main__":
    main()
