#!/usr/bin/env python
"""The miniapplication study of Sec. 4.1, at laptop scale.

Runs every in situ configuration the paper measures -- Original, Baseline,
Histogram, Autocorrelation, Catalyst-slice, Libsim-slice -- natively on the
thread-backed MPI runtime, and prints the one-time / per-timestep / memory
breakdown the paper charts in Figs. 5-7.

Usage::

    python examples/oscillator_insitu_study.py [nranks] [grid_edge] [steps]
"""

import sys
import tempfile

from repro.analysis import AutocorrelationAnalysis, HistogramAnalysis
from repro.analysis.autocorrelation import AutocorrelationState
from repro.analysis.slice_ import SlicePlane
from repro.core import Bridge
from repro.infrastructure import CatalystAdaptor, LibsimAdaptor, write_session_file
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.util import MemoryTracker, TimerRegistry

NRANKS = int(sys.argv[1]) if len(sys.argv) > 1 else 4
EDGE = int(sys.argv[2]) if len(sys.argv) > 2 else 24
STEPS = int(sys.argv[3]) if len(sys.argv) > 3 else 8
DIMS = (EDGE, EDGE, EDGE)


def run_configuration(name, make_analysis):
    """Run one configuration; returns aggregated timing/memory rows."""

    def program(comm):
        timers = TimerRegistry()
        memory = MemoryTracker(baseline_bytes=0)
        sim = OscillatorSimulation(
            comm, DIMS, default_oscillators(), dt=0.05, timers=timers, memory=memory
        )
        startup = memory.peak
        if name == "original":
            # Subroutine-coupled autocorrelation: no SENSEI interface.
            state = AutocorrelationState(
                4, sim.field.size, global_offset=0, memory=memory
            )
            for _ in range(STEPS):
                sim.advance()
                with timers.time("analysis::direct"):
                    state.update(sim.field)
            state.finalize(comm, k=3)
        else:
            bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers, memory=memory)
            analysis = make_analysis(comm)
            if analysis is not None:
                bridge.add_analysis(analysis)
            bridge.initialize()
            sim.run(STEPS, bridge)
            bridge.finalize()
        return {
            "sim_init": timers.total("simulation::initialize"),
            "analysis_init": timers.total("sensei::initialize"),
            "sim_step": timers.total("simulation::advance") / STEPS,
            "analysis_step": (
                timers.total("sensei::execute") + timers.total("analysis::direct")
            )
            / STEPS,
            "finalize": timers.total("sensei::finalize"),
            "startup_mb": startup / 1e6,
            "high_water_mb": memory.peak / 1e6,
        }

    rows = run_spmd(NRANKS, program)
    agg = {k: sum(r[k] for r in rows) / len(rows) for k in rows[0]}
    agg["high_water_mb"] = sum(r["high_water_mb"] for r in rows)
    agg["startup_mb"] = sum(r["startup_mb"] for r in rows)
    return agg


def main():
    tmp = tempfile.mkdtemp(prefix="insitu_study_")
    session = f"{tmp}/session.json"
    write_session_file(
        session, [{"type": "pseudocolor_slice", "axis": 2, "index": EDGE // 2}],
        resolution=(320, 320),
    )
    configurations = [
        ("original", lambda comm: None),
        ("baseline", lambda comm: None),
        ("histogram", lambda comm: HistogramAnalysis(bins=32)),
        ("autocorrelation", lambda comm: AutocorrelationAnalysis(window=4, k=3)),
        (
            "catalyst-slice",
            lambda comm: CatalystAdaptor(
                plane=SlicePlane(axis=2, index=EDGE // 2),
                resolution=(480, 270),
                output_dir=f"{tmp}/catalyst",
            ),
        ),
        (
            "libsim-slice",
            lambda comm: LibsimAdaptor(session_file=session, output_dir=f"{tmp}/libsim"),
        ),
    ]
    print(
        f"miniapp in situ study: {NRANKS} ranks, {DIMS} grid, {STEPS} steps"
        f" (images under {tmp})\n"
    )
    header = (
        f"{'configuration':<17}{'sim init':>9}{'ana init':>9}{'sim/step':>9}"
        f"{'ana/step':>9}{'finalize':>9}{'startupMB':>10}{'hiwaterMB':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, factory in configurations:
        row = run_configuration(name, factory)
        print(
            f"{name:<17}{row['sim_init']:>9.4f}{row['analysis_init']:>9.4f}"
            f"{row['sim_step']:>9.4f}{row['analysis_step']:>9.4f}"
            f"{row['finalize']:>9.4f}{row['startup_mb']:>10.1f}"
            f"{row['high_water_mb']:>10.1f}"
        )


if __name__ == "__main__":
    main()
